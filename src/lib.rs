//! # WYM — Why do You Match?
//!
//! Umbrella crate for the Rust reproduction of *"An Intrinsically
//! Interpretable Entity Matching System"* (EDBT 2023). It re-exports the
//! workspace crates under stable module names so downstream users need a
//! single dependency:
//!
//! ```
//! use wym::core::pipeline::WymConfig;
//! use wym::data::magellan;
//!
//! let dataset = magellan::generate_by_name("S-FZ", 42).expect("known dataset");
//! assert_eq!(dataset.name, "S-FZ");
//! let _config = WymConfig::default();
//! ```
//!
//! See the crate-level docs of each module for the component it implements:
//!
//! * [`core`] — decision units, stable-marriage pairing, relevance scorer,
//!   explainable matcher (the paper's contribution);
//! * [`artifact`] — versioned binary model artifacts (WYMA container,
//!   mmap loading, multi-model registry);
//! * [`data`] — dataset model and the synthetic Magellan benchmark;
//! * [`embed`] — the BERT/SBERT-substitute embedding stack;
//! * [`explain`] — post-hoc explainer baselines and explanation metrics;
//! * [`baselines`] — DeepMatcher+/AutoML/CorDEL/DITTO proxies;
//! * [`nn`], [`ml`], [`linalg`], [`strsim`], [`tokenize`] — substrates.

pub use wym_artifact as artifact;
pub use wym_baselines as baselines;
pub use wym_core as core;
pub use wym_data as data;
pub use wym_embed as embed;
pub use wym_explain as explain;
pub use wym_linalg as linalg;
pub use wym_ml as ml;
pub use wym_nn as nn;
pub use wym_par as par;
pub use wym_strsim as strsim;
pub use wym_tokenize as tokenize;
