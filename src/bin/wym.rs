//! `wym` — command-line interface to the WYM entity-matching system.
//!
//! ```text
//! wym generate --dataset S-FZ --out restaurants.csv [--seed 42] [--cap N]
//! wym eval     --data restaurants.csv [--epochs 15] [--seed 42]
//! wym explain  --data restaurants.csv --id 12 [--epochs 15]
//! wym match    --data restaurants.csv --left "a|b|c" --right "x|y|z"
//! wym train    --data restaurants.csv --model model.json
//! wym train    --data restaurants.csv --save-model model.wym
//! wym apply    --model model.json --data more.csv [--explain]
//! wym classify --load-model model.wym --data more.csv [--explain] [--mmap]
//! wym model inspect model.wym
//! wym model diff old.wym new.wym
//! wym datasets
//! ```
//!
//! `train --save-model` writes a binary WYMA artifact (see `wym-artifact`
//! and DESIGN.md §12): schema-versioned, checksummed, with the provenance
//! manifest embedded and tensors page-aligned for memory-mapped loading.
//! `classify` reloads such an artifact (`--mmap` maps instead of reading)
//! and reproduces the in-memory model's verdicts bit-for-bit.
//!
//! Every command additionally accepts `--trace` (print a per-stage span
//! tree and metric summary to stderr at exit), `--metrics-out FILE`
//! (write the machine-readable snapshot there; `--trace` alone defaults to
//! `results/OBS_run.json`), `--flame` (export folded-stack flamegraphs to
//! `results/FLAME_run_*.folded`; implies memory profiling so the alloc
//! weights are populated), and `--profile-mem` (attribute allocator
//! traffic to spans in the export). Exported metrics files carry a
//! `manifest` provenance header (schema version, git sha, config hash,
//! kernel dispatch, seed).
//!
//! CSV layout: `id,label,left_<attr>…,right_<attr>…` (see `wym::data::csv`).

use std::path::Path;
use std::process::ExitCode;
use wym::artifact;
use wym::core::pipeline::{SavedWymModel, WymConfig, WymModel, PIPELINE_STAGES};
use wym::data::split::paper_split;
use wym::data::{csv, magellan, DatasetType, EmDataset, Entity, RecordPair};
use wym::nn::TrainConfig;
use wym_obs::{JsonFileSink, Sink, StderrSink};

// Route every allocation through the tracking wrapper so `--profile-mem` /
// `--flame` can attribute it; with profiling off the wrapper is one relaxed
// atomic load per alloc (pinned by the `prof` bench group).
wym_obs::install_tracking_alloc!();

/// Flags that never take a value, so a following positional argument (or
/// file name) is not swallowed as their value.
const BOOL_FLAGS: &[&str] = &["explain", "trace", "help", "flame", "profile-mem", "mmap"];

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse() -> Self {
        let mut positional = Vec::new();
        let mut flags = std::collections::HashMap::new();
        let mut iter = std::env::args().skip(1).peekable();
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if BOOL_FLAGS.contains(&name) {
                    String::new()
                } else {
                    iter.peek()
                        .filter(|v| !v.starts_with("--"))
                        .cloned()
                        .inspect(|_| {
                            iter.next();
                        })
                        .unwrap_or_default() // presence-only flags store ""
                };
                flags.insert(name.to_string(), value);
            } else {
                positional.push(a);
            }
        }
        Self { positional, flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        match self.get(name) {
            None => Err(format!("missing required flag --{name}")),
            Some("") => Err(format!("flag --{name} needs a value")),
            Some(v) => Ok(v),
        }
    }

    /// Numeric flag with a default; a present-but-unparsable value is an
    /// error rather than a silent fallback.
    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("error: flag --{name} needs a number, got {v:?}");
                std::process::exit(2);
            }),
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  wym generate --dataset <NAME> --out <FILE> [--seed N] [--cap N]\n  \
     wym eval     --data <FILE> [--epochs N] [--seed N]\n  \
     wym explain  --data <FILE> --id <RECORD_ID> [--epochs N]\n  \
     wym match    --data <FILE> --left \"a|b|c\" --right \"x|y|z\"\n  \
     wym train    --data <FILE> --model <OUT.json> | --save-model <OUT.wym> [--epochs N]\n  \
     wym apply    --model <MODEL.json> --data <FILE> [--explain]\n  \
     wym classify --load-model <MODEL.wym> --data <FILE> [--explain] [--mmap]\n  \
     wym model    inspect <MODEL.wym>\n  \
     wym model    diff <A.wym> <B.wym>\n  \
     wym datasets\n\
     every command also accepts: --trace [--metrics-out <FILE>] --flame --profile-mem"
}

/// Turns recording on when `--trace`, `--metrics-out`, or `--flame` is
/// present (and memory profiling under `--profile-mem` / `--flame`);
/// registers the canonical pipeline stages either way so zero-span stages
/// are visible in the export.
fn obs_setup(args: &Args) -> bool {
    wym_obs::register_stages(PIPELINE_STAGES);
    let on = args.get("trace").is_some()
        || args.get("metrics-out").is_some()
        || args.get("flame").is_some();
    if on {
        wym_obs::set_enabled(true);
    }
    if args.get("profile-mem").is_some() || args.get("flame").is_some() {
        wym_obs::prof::set_enabled(true);
    }
    on
}

/// The run's provenance header for exported metrics: commit, a hash of
/// the full command line, the dispatched kernel, and the seed.
fn manifest(args: &Args) -> wym_obs::Manifest {
    let cmdline: Vec<String> = std::env::args().skip(1).collect();
    let data = args.get("data").or(args.get("dataset")).unwrap_or("");
    wym_obs::Manifest::new("wym")
        .with_kernel(wym::linalg::kernels::active_name())
        .with_seed(args.num("seed", 42u64))
        .with_config_bytes(cmdline.join(" ").as_bytes())
        .with_dataset_bytes(data.as_bytes())
}

/// Emits the recorded snapshot: span tree to stderr (under `--trace`),
/// the JSON export with its manifest to `--metrics-out` (default
/// `results/OBS_run.json`), and folded flamegraphs under `--flame`.
fn obs_flush(args: &Args) {
    let snap = wym_obs::snapshot();
    if args.get("trace").is_some() {
        let _ = StderrSink.emit(&snap);
    }
    let path = match args.get("metrics-out") {
        Some(p) if !p.is_empty() => p.to_string(),
        _ => "results/OBS_run.json".to_string(),
    };
    match JsonFileSink::new(&path).with_manifest(manifest(args)).emit(&snap) {
        Ok(()) => eprintln!("metrics written to {path}"),
        Err(e) => eprintln!("warning: cannot write metrics to {path}: {e}"),
    }
    if args.get("flame").is_some() {
        use wym_obs::flame::{write_folded, FlameWeight};
        for weight in [FlameWeight::WallNs, FlameWeight::AllocBytes] {
            let flame_path = format!("results/FLAME_run_{}.folded", weight.infix());
            match write_folded(&flame_path, &snap, weight) {
                Ok(lines) => eprintln!("flamegraph ({lines} stacks) written to {flame_path}"),
                Err(e) => eprintln!("warning: cannot write {flame_path}: {e}"),
            }
        }
    }
}

fn load(path: &str) -> Result<EmDataset, String> {
    csv::read_csv(Path::new(path), "user-data", DatasetType::Structured)
        .map_err(|e| format!("cannot read {path}: {e}"))
}

fn fit(dataset: &EmDataset, args: &Args) -> (WymModel, Vec<RecordPair>) {
    let seed = args.num("seed", 42u64);
    let split = paper_split(dataset, seed);
    let mut cfg = WymConfig::default().with_seed(seed);
    cfg.scorer.train = TrainConfig {
        epochs: args.num("epochs", 15usize),
        batch_size: 256,
        ..TrainConfig::default()
    };
    eprintln!(
        "fitting WYM on {} pairs ({} train / {} val)…",
        dataset.len(),
        split.train.len(),
        split.val.len()
    );
    let model = WymModel::fit(dataset, &split, cfg);
    let test = split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
    (model, test)
}

fn run(args: &Args) -> Result<(), String> {
    let command = args.positional.first().map(String::as_str).unwrap_or("");
    match command {
        "datasets" => {
            println!("{:<6} {:<20} {:>7} {:>8}  type", "name", "source", "size", "% match");
            for c in magellan::all_configs() {
                println!(
                    "{:<6} {:<20} {:>7} {:>8.2}  {}",
                    c.name,
                    c.full_name,
                    c.size,
                    c.match_pct,
                    c.dataset_type.as_str()
                );
            }
            Ok(())
        }
        "generate" => {
            let name = args.require("dataset")?;
            let out = args.require("out")?;
            let seed = args.num("seed", 42u64);
            let mut dataset = magellan::generate_by_name(name, seed)
                .ok_or_else(|| format!("unknown dataset {name}; see `wym datasets`"))?;
            if let Some(cap) = args.get("cap") {
                let cap: usize = cap.parse().map_err(|_| "--cap needs a number")?;
                dataset = dataset.subsample(cap, seed);
            }
            csv::write_csv(&dataset, Path::new(out)).map_err(|e| e.to_string())?;
            println!(
                "wrote {} pairs ({:.1}% matches) to {out}",
                dataset.len(),
                dataset.match_rate_pct()
            );
            Ok(())
        }
        "eval" => {
            let dataset = load(args.require("data")?)?;
            let (model, test) = fit(&dataset, args);
            println!("selected classifier: {:?}", model.classifier());
            println!("pool validation F1:");
            for (kind, f1) in model.matcher().pool_scores() {
                println!("  {:<4} {f1:.3}", kind.short_name());
            }
            println!("test F1: {:.3}", model.f1_on(&test));
            Ok(())
        }
        "explain" => {
            let dataset = load(args.require("data")?)?;
            let id: u32 = args
                .require("id")?
                .parse()
                .map_err(|_| "--id needs a record id".to_string())?;
            let pair = dataset
                .pairs
                .iter()
                .find(|p| p.id == id)
                .ok_or_else(|| format!("no record with id {id}"))?
                .clone();
            let (model, _) = fit(&dataset, args);
            println!("left : {}", pair.left.full_text());
            println!("right: {}", pair.right.full_text());
            println!("gold : {}", if pair.label { "match" } else { "non-match" });
            println!("{}", model.explain(&pair));
            Ok(())
        }
        "match" => {
            let dataset = load(args.require("data")?)?;
            let parse_entity = |s: &str| -> Entity {
                Entity { values: s.split('|').map(str::to_string).collect() }
            };
            let left = parse_entity(args.require("left")?);
            let right = parse_entity(args.require("right")?);
            if left.values.len() != dataset.schema.len()
                || right.values.len() != dataset.schema.len()
            {
                return Err(format!(
                    "entities need {} '|'-separated values (schema: {})",
                    dataset.schema.len(),
                    dataset.schema.attributes.join(", ")
                ));
            }
            let pair = RecordPair { id: u32::MAX, label: false, left, right };
            let (model, _) = fit(&dataset, args);
            println!("{}", model.explain(&pair));
            Ok(())
        }
        "train" => {
            let dataset = load(args.require("data")?)?;
            let json_out = args.get("model").filter(|v| !v.is_empty());
            let artifact_out = args.get("save-model").filter(|v| !v.is_empty());
            if json_out.is_none() && artifact_out.is_none() {
                return Err("train needs --model <OUT.json> and/or --save-model <OUT.wym>".into());
            }
            let (model, test) = fit(&dataset, args);
            println!("test F1: {:.3} ({:?})", model.f1_on(&test), model.classifier());
            if let Some(out) = json_out {
                let json = serde_json::to_vec(&model.to_saved())
                    .map_err(|e| format!("cannot serialize model: {e}"))?;
                std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
                println!("model saved to {out}");
            }
            if let Some(out) = artifact_out {
                let bytes = artifact::save_model(Path::new(out), &model, &manifest(args))
                    .map_err(|e| e.to_string())?;
                println!("model artifact saved to {out} ({bytes} bytes)");
            }
            Ok(())
        }
        "apply" => {
            let model_path = args.require("model")?;
            let bytes = std::fs::read(model_path)
                .map_err(|e| format!("cannot read {model_path}: {e}"))?;
            let saved: SavedWymModel = serde_json::from_slice(&bytes)
                .map_err(|e| format!("cannot parse model: {e}"))?;
            let model = WymModel::from_saved(saved);
            let dataset = load(args.require("data")?)?;
            let explain = args.get("explain").is_some();
            let mut predicted_matches = 0usize;
            for pair in &dataset.pairs {
                let p = model.predict(pair);
                if explain {
                    println!("{}", model.explain(pair));
                } else {
                    println!(
                        "{}\t{}\t{:.4}",
                        pair.id,
                        if p.label { "match" } else { "non-match" },
                        p.probability
                    );
                }
                predicted_matches += usize::from(p.label);
            }
            eprintln!(
                "{predicted_matches} predicted matches out of {} pairs",
                dataset.len()
            );
            Ok(())
        }
        "classify" => {
            let model_path = args.require("load-model")?;
            let mode = if args.get("mmap").is_some() {
                artifact::LoadMode::Mmap
            } else {
                artifact::LoadMode::Read
            };
            let loaded = artifact::load_model(Path::new(model_path), mode)
                .map_err(|e| e.to_string())?;
            eprintln!(
                "loaded {model_path} ({} bytes, {}; trained with kernel={} seed={} git={})",
                loaded.file_bytes,
                if loaded.mapped { "mmap" } else { "read" },
                loaded.manifest.kernel,
                loaded.manifest.seed,
                loaded.manifest.git_sha,
            );
            let model = loaded.model;
            let dataset = load(args.require("data")?)?;
            let explain = args.get("explain").is_some();
            let mut predicted_matches = 0usize;
            for pair in &dataset.pairs {
                let p = model.predict(pair);
                if explain {
                    println!("{}", model.explain(pair));
                } else {
                    println!(
                        "{}\t{}\t{:.4}",
                        pair.id,
                        if p.label { "match" } else { "non-match" },
                        p.probability
                    );
                }
                predicted_matches += usize::from(p.label);
            }
            eprintln!(
                "{predicted_matches} predicted matches out of {} pairs",
                dataset.len()
            );
            Ok(())
        }
        "model" => {
            let sub = args.positional.get(1).map(String::as_str).unwrap_or("");
            match sub {
                "inspect" => {
                    let path = args
                        .positional
                        .get(2)
                        .ok_or("usage: wym model inspect <MODEL.wym>")?;
                    let info = artifact::inspect(Path::new(path)).map_err(|e| e.to_string())?;
                    print!("{}", info.render());
                    Ok(())
                }
                "diff" => {
                    let (a, b) = match (args.positional.get(2), args.positional.get(3)) {
                        (Some(a), Some(b)) => (a, b),
                        _ => return Err("usage: wym model diff <A.wym> <B.wym>".into()),
                    };
                    let ia = artifact::inspect(Path::new(a)).map_err(|e| e.to_string())?;
                    let ib = artifact::inspect(Path::new(b)).map_err(|e| e.to_string())?;
                    let lines = artifact::diff(&ia, &ib);
                    if lines.is_empty() {
                        println!("artifacts are identical (same sections, shapes, checksums)");
                        Ok(())
                    } else {
                        for line in &lines {
                            println!("{line}");
                        }
                        Err(format!("{} difference(s)", lines.len()))
                    }
                }
                other => Err(format!("unknown model subcommand {other:?}\n{}", usage())),
            }
        }
        "" | "help" | "--help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other}\n{}", usage())),
    }
}

fn main() -> ExitCode {
    let args = Args::parse();
    let traced = obs_setup(&args);
    let result = run(&args);
    if traced {
        // Flush even on failure: a partial trace is exactly what you want
        // when diagnosing where a run died.
        obs_flush(&args);
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
