//! `wym` — command-line interface to the WYM entity-matching system.
//!
//! ```text
//! wym generate --dataset S-FZ --out restaurants.csv [--seed 42] [--cap N]
//! wym eval     --data restaurants.csv [--epochs 15] [--seed 42]
//! wym explain  --data restaurants.csv --id 12 [--epochs 15]
//! wym match    --data restaurants.csv --left "a|b|c" --right "x|y|z"
//! wym train    --data restaurants.csv --model model.json
//! wym train    --data restaurants.csv --save-model model.wym
//! wym apply    --model model.json --data more.csv [--explain]
//! wym classify --load-model model.wym --data more.csv [--explain] [--mmap]
//! wym model inspect model.wym
//! wym model diff old.wym new.wym
//! wym datasets
//! wym kernels
//! ```
//!
//! `train --save-model` writes a binary WYMA artifact (see `wym-artifact`
//! and DESIGN.md §12): schema-versioned, checksummed, with the provenance
//! manifest embedded and tensors page-aligned for memory-mapped loading.
//! `classify` reloads such an artifact (`--mmap` maps instead of reading)
//! and reproduces the in-memory model's verdicts bit-for-bit.
//!
//! Every command additionally accepts `--trace` (print a per-stage span
//! tree and metric summary to stderr at exit), `--metrics-out FILE`
//! (write the machine-readable snapshot there; `--trace` alone defaults to
//! `results/OBS_run.json`), `--flame` (export folded-stack flamegraphs to
//! `results/FLAME_run_*.folded`; implies memory profiling so the alloc
//! weights are populated), and `--profile-mem` (attribute allocator
//! traffic to spans in the export). Exported metrics files carry a
//! `manifest` provenance header (schema version, git sha, config hash,
//! kernel dispatch, seed).
//!
//! Independent of tracing, every run carries the always-on flight
//! recorder (DESIGN.md §15): per-thread event rings, a stall watchdog,
//! and a panic hook that dumps the recent event tail to
//! `results/FLIGHT_wym_*.{txt,trace.json}`. `--chrome-trace FILE` exports
//! the full-run event tail as Chrome trace-event JSON (load in
//! `chrome://tracing` or Perfetto); `wym obs flight <DUMP.trace.json>`
//! summarizes any dump from the terminal. `WYM_FLIGHT=off` disables the
//! recorder, `WYM_STALL_MS` tunes the watchdog threshold.
//!
//! CSV layout: `id,label,left_<attr>…,right_<attr>…` (see `wym::data::csv`).

use std::path::Path;
use std::process::ExitCode;
use wym::artifact;
use wym::core::pipeline::{SavedWymModel, WymConfig, WymModel, PIPELINE_STAGES};
use wym::data::split::paper_split;
use wym::data::{csv, magellan, DatasetType, EmDataset, Entity, RecordPair};
use wym::nn::TrainConfig;
use wym_obs::{JsonFileSink, Sink, StderrSink};

// Route every allocation through the tracking wrapper so `--profile-mem` /
// `--flame` can attribute it; with profiling off the wrapper is one relaxed
// atomic load per alloc (pinned by the `prof` bench group).
wym_obs::install_tracking_alloc!();

/// Flags that never take a value, so a following positional argument (or
/// file name) is not swallowed as their value.
const BOOL_FLAGS: &[&str] =
    &["explain", "trace", "help", "flame", "profile-mem", "mmap", "audit-cost", "shift"];

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse() -> Self {
        let mut positional = Vec::new();
        let mut flags = std::collections::HashMap::new();
        let mut iter = std::env::args().skip(1).peekable();
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if BOOL_FLAGS.contains(&name) {
                    String::new()
                } else {
                    iter.peek()
                        .filter(|v| !v.starts_with("--"))
                        .cloned()
                        .inspect(|_| {
                            iter.next();
                        })
                        .unwrap_or_default() // presence-only flags store ""
                };
                flags.insert(name.to_string(), value);
            } else {
                positional.push(a);
            }
        }
        Self { positional, flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        match self.get(name) {
            None => Err(format!("missing required flag --{name}")),
            Some("") => Err(format!("flag --{name} needs a value")),
            Some(v) => Ok(v),
        }
    }

    /// Numeric flag with a default; a present-but-unparsable value is an
    /// error rather than a silent fallback.
    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("error: flag --{name} needs a number, got {v:?}");
                std::process::exit(2);
            }),
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  wym generate --dataset <NAME> --out <FILE> [--seed N] [--cap N] [--shift]\n  \
     wym eval     --data <FILE> [--epochs N] [--seed N]\n  \
     wym explain  --data <FILE> --id <RECORD_ID> [--epochs N]\n  \
     wym match    --data <FILE> --left \"a|b|c\" --right \"x|y|z\"\n  \
     wym train    --data <FILE> --model <OUT.json> | --save-model <OUT.wym> [--epochs N]\n  \
     wym apply    --model <MODEL.json> --data <FILE> [--explain]\n  \
     wym classify --load-model <MODEL.wym> --data <FILE> [--explain] [--mmap] [--threads N]\n           \
     [--audit-log <FILE.jsonl>] [--audit-sample N] [--audit-cost]\n  \
     wym kernels\n  \
     wym model    inspect <MODEL.wym>\n  \
     wym model    diff <A.wym> <B.wym>\n  \
     wym obs      report --audit <FILE.jsonl>\n  \
     wym obs      export --metrics <OBS.json>\n  \
     wym obs      flight <DUMP.trace.json>\n  \
     wym datasets\n\
     every command also accepts: --trace [--metrics-out <FILE>] --flame --profile-mem\n\
     \x20                          --chrome-trace <FILE>  (flight-recorder trace export)"
}

/// Turns recording on when `--trace`, `--metrics-out`, or `--flame` is
/// present (and memory profiling under `--profile-mem` / `--flame`);
/// registers the canonical pipeline stages either way so zero-span stages
/// are visible in the export.
fn obs_setup(args: &Args) -> bool {
    wym_obs::register_stages(PIPELINE_STAGES);
    // The flight recorder is always on (WYM_FLIGHT=off opts out): event
    // rings cost nanoseconds per span and buy a post-mortem trail for
    // every panic or stall, traced or not.
    wym_obs::flight_install(wym_obs::FlightOptions::default());
    let on = args.get("trace").is_some()
        || args.get("metrics-out").is_some()
        || args.get("flame").is_some();
    if on {
        wym_obs::set_enabled(true);
    }
    if args.get("profile-mem").is_some() || args.get("flame").is_some() {
        wym_obs::prof::set_enabled(true);
    }
    on
}

/// The run's provenance header for exported metrics: commit, a hash of
/// the full command line, the dispatched kernel, and the seed.
fn manifest(args: &Args) -> wym_obs::Manifest {
    let cmdline: Vec<String> = std::env::args().skip(1).collect();
    let data = args.get("data").or(args.get("dataset")).unwrap_or("");
    wym_obs::Manifest::new("wym")
        .with_kernel(wym::linalg::kernels::active_name())
        .with_seed(args.num("seed", 42u64))
        .with_config_bytes(cmdline.join(" ").as_bytes())
        .with_dataset_bytes(data.as_bytes())
}

/// Emits the recorded snapshot: span tree to stderr (under `--trace`),
/// the JSON export with its manifest to `--metrics-out` (default
/// `results/OBS_run.json`), and folded flamegraphs under `--flame`.
fn obs_flush(args: &Args) {
    let snap = wym_obs::snapshot();
    if args.get("trace").is_some() {
        let _ = StderrSink.emit(&snap);
    }
    let path = match args.get("metrics-out") {
        Some(p) if !p.is_empty() => p.to_string(),
        _ => "results/OBS_run.json".to_string(),
    };
    match JsonFileSink::new(&path).with_manifest(manifest(args)).emit(&snap) {
        Ok(()) => eprintln!("metrics written to {path}"),
        Err(e) => eprintln!("warning: cannot write metrics to {path}: {e}"),
    }
    if args.get("flame").is_some() {
        use wym_obs::flame::{write_folded, FlameWeight};
        for weight in [FlameWeight::WallNs, FlameWeight::AllocBytes] {
            let flame_path = format!("results/FLAME_run_{}.folded", weight.infix());
            match write_folded(&flame_path, &snap, weight) {
                Ok(lines) => eprintln!("flamegraph ({lines} stacks) written to {flame_path}"),
                Err(e) => eprintln!("warning: cannot write {flame_path}: {e}"),
            }
        }
    }
}

fn load(path: &str) -> Result<EmDataset, String> {
    csv::read_csv(Path::new(path), "user-data", DatasetType::Structured)
        .map_err(|e| format!("cannot read {path}: {e}"))
}

fn fit(dataset: &EmDataset, args: &Args) -> (WymModel, Vec<RecordPair>) {
    let seed = args.num("seed", 42u64);
    let split = paper_split(dataset, seed);
    let mut cfg = WymConfig::default().with_seed(seed);
    cfg.scorer.train = TrainConfig {
        epochs: args.num("epochs", 15usize),
        batch_size: 256,
        ..TrainConfig::default()
    };
    eprintln!(
        "fitting WYM on {} pairs ({} train / {} val)…",
        dataset.len(),
        split.train.len(),
        split.val.len()
    );
    let model = WymModel::fit(dataset, &split, cfg);
    let test = split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
    (model, test)
}

/// `wym obs report` — summarize a decision audit log (JSONL, as written by
/// `classify --audit-log`): decision and verdict counts, margin spread,
/// the attributes that dominated explained decisions, and the model
/// fingerprints seen — the service-side "what has this model been doing"
/// view, built from the log alone.
fn obs_report(args: &Args) -> Result<(), String> {
    use wym_obs::Json;
    let path = args.require("audit")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let field = |obj: &[(String, Json)], name: &str| -> Option<Json> {
        obj.iter().find(|(k, _)| k == name).map(|(_, v)| v.clone())
    };
    let as_f64 = |v: &Json| -> Option<f64> {
        match v {
            Json::Num(n) => Some(*n),
            Json::UInt(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    };
    let mut total = 0u64;
    let mut matches = 0u64;
    let mut by_kind: std::collections::BTreeMap<String, u64> = Default::default();
    let mut fnvs: std::collections::BTreeSet<String> = Default::default();
    let mut impact_attrs: std::collections::BTreeMap<String, u64> = Default::default();
    let mut margin_min = f64::INFINITY;
    let mut margin_sum = 0.0f64;
    let mut close_calls = 0u64; // |margin| < 0.05: decisions one nudge from flipping
    let mut costed = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = wym_obs::json::parse(line)
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let Json::Obj(obj) = v else {
            return Err(format!("{path}:{}: decision record is not an object", lineno + 1));
        };
        total += 1;
        if field(&obj, "verdict") == Some(Json::Bool(true)) {
            matches += 1;
        }
        if let Some(Json::Str(kind)) = field(&obj, "kind") {
            *by_kind.entry(kind).or_insert(0) += 1;
        }
        if let Some(Json::Str(fnv)) = field(&obj, "model_fnv") {
            fnvs.insert(fnv);
        }
        if let Some(m) = field(&obj, "margin").as_ref().and_then(as_f64) {
            margin_min = margin_min.min(m.abs());
            margin_sum += m.abs();
            if m.abs() < 0.05 {
                close_calls += 1;
            }
        }
        if let Some(Json::Arr(impacts)) = field(&obj, "top_impacts") {
            if let Some(Json::Obj(top)) = impacts.first() {
                if let Some(Json::Str(attr)) = field(top, "attribute") {
                    *impact_attrs.entry(attr).or_insert(0) += 1;
                }
            }
        }
        costed += u64::from(field(&obj, "cost").is_some());
    }
    if total == 0 {
        return Err(format!("{path} holds no decision records"));
    }
    println!("{path}: {total} decisions");
    let kinds = by_kind
        .iter()
        .map(|(k, n)| format!("{k}={n}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("  kinds       : {kinds}");
    println!(
        "  verdicts    : {matches} match / {} non-match ({:.1}% match)",
        total - matches,
        100.0 * matches as f64 / total as f64
    );
    println!(
        "  margin      : mean |m|={:.3} min |m|={:.3}  close calls (<0.05): {close_calls}",
        margin_sum / total as f64,
        margin_min
    );
    if !impact_attrs.is_empty() {
        let mut ranked: Vec<_> = impact_attrs.iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        let top = ranked
            .iter()
            .take(5)
            .map(|(a, n)| format!("{a}×{n}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!("  top drivers : {top}");
    }
    println!("  models      : {}", fnvs.into_iter().collect::<Vec<_>>().join(", "));
    if costed > 0 {
        println!("  cost fields : {costed} record(s) carry wall/alloc cost");
    }
    Ok(())
}

/// Records per parallel scoring chunk in `classify`: small enough that the
/// windowed metrics rotate a few times per run, large enough to amortize
/// thread hand-off. Chunking never changes output bits (see `wym-par`).
const CLASSIFY_CHUNK: usize = 256;

/// `wym classify` — serve a WYMA artifact over a CSV of pairs, optionally
/// in parallel, with the full telemetry surface: sequence-pinned decision
/// audit log, windowed metrics, and the drift sentinel against the
/// artifact's frozen train-time sketch.
fn classify(args: &Args) -> Result<(), String> {
    let model_path = args.require("load-model")?;
    let mode = if args.get("mmap").is_some() {
        artifact::LoadMode::Mmap
    } else {
        artifact::LoadMode::Read
    };
    let loaded = artifact::load_model(Path::new(model_path), mode).map_err(|e| e.to_string())?;
    eprintln!(
        "loaded {model_path} ({} bytes, {}; trained with kernel={} seed={} git={})",
        loaded.file_bytes,
        if loaded.mapped { "mmap" } else { "read" },
        loaded.manifest.kernel,
        loaded.manifest.seed,
        loaded.manifest.git_sha,
    );
    let baseline = loaded.sketch;
    let model_fnv = loaded.content_fnv;
    let model = loaded.model;
    let dataset = load(args.require("data")?)?;
    let explain = args.get("explain").is_some();
    let threads = args.num("threads", 1usize);

    // The audit sink is installed globally so worker threads (which run
    // under the propagated obs context anyway) and the caller agree on it.
    let audit = match args.get("audit-log").filter(|p| !p.is_empty()) {
        Some(p) => {
            let log = std::sync::Arc::new(wym_obs::AuditLog::new(wym_obs::AuditOptions {
                sample_every: args.num("audit-sample", 1u64),
                include_cost: args.get("audit-cost").is_some(),
                model_fnv,
            }));
            wym_obs::audit::install_global(std::sync::Arc::clone(&log));
            Some((p.to_string(), log))
        }
        None => None,
    };
    // Windowed metrics: one logical tick per scoring chunk, so window
    // rotation depends on record count alone — never wall time.
    wym_obs::window_enable(8);

    let mut predicted_matches = 0usize;
    let mut live = wym_obs::ModelSketch::new();
    let mut offset = 0usize;
    for chunk in dataset.pairs.chunks(CLASSIFY_CHUNK) {
        let base = offset;
        let rows = wym::par::map_indexed(chunk, threads, |i, pair| {
            // Pin the audit sequence to the input position: records sort
            // identically whatever the worker interleaving was.
            let _seq = wym_obs::audit::scope_seq((base + i) as u64);
            let proc = model.process(pair);
            let (line, label, probability) = if explain {
                let ex = model.explain_processed(&proc);
                (ex.to_string(), ex.prediction, ex.probability)
            } else {
                let p = model.predict_processed(&proc);
                let line = format!(
                    "{}\t{}\t{:.4}",
                    pair.id,
                    if p.label { "match" } else { "non-match" },
                    p.probability
                );
                (line, p.label, p.probability)
            };
            let paired = proc.units.iter().filter(|u| u.is_paired()).count();
            let attrs: Vec<u32> = proc.units.iter().map(|u| u.attribute() as u32).collect();
            (line, label, probability, paired, attrs)
        });
        for (line, label, probability, paired, attrs) in rows {
            println!("{line}");
            predicted_matches += usize::from(label);
            if baseline.is_some() {
                let frac = if attrs.is_empty() {
                    0.0
                } else {
                    paired as f64 / attrs.len() as f64
                };
                live.observe(
                    probability,
                    frac,
                    attrs.iter().map(|&a| model.attr_names()[a as usize].as_str()),
                );
            }
        }
        offset += chunk.len();
        wym_obs::window_advance();
    }

    if let Some((path, log)) = &audit {
        wym_obs::audit::clear_global();
        let n = log
            .write_jsonl(Path::new(path))
            .map_err(|e| format!("cannot write audit log {path}: {e}"))?;
        eprintln!("audit: {n} decision(s) appended to {path} (checksum {:016x})", log.checksum());
    }
    match &baseline {
        Some(baseline) => {
            let report = baseline.compare(&live);
            report.publish();
            eprintln!("drift: {}", report.render());
        }
        None => eprintln!("drift: no baseline sketch in {model_path} (retrain to freeze one)"),
    }
    eprintln!("{predicted_matches} predicted matches out of {} pairs", dataset.len());
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    let command = args.positional.first().map(String::as_str).unwrap_or("");
    match command {
        "datasets" => {
            println!("{:<6} {:<20} {:>7} {:>8}  type", "name", "source", "size", "% match");
            for c in magellan::all_configs() {
                println!(
                    "{:<6} {:<20} {:>7} {:>8.2}  {}",
                    c.name,
                    c.full_name,
                    c.size,
                    c.match_pct,
                    c.dataset_type.as_str()
                );
            }
            Ok(())
        }
        "generate" => {
            let name = args.require("dataset")?;
            let out = args.require("out")?;
            let seed = args.num("seed", 42u64);
            let mut dataset = magellan::generate_by_name(name, seed)
                .ok_or_else(|| format!("unknown dataset {name}; see `wym datasets`"))?;
            if let Some(cap) = args.get("cap") {
                let cap: usize = cap.parse().map_err(|_| "--cap needs a number")?;
                dataset = dataset.subsample(cap, seed);
            }
            if args.get("shift").is_some() {
                // Deterministic distribution shift for drift-sentinel
                // exercises: rotate the right-hand entities by half the
                // dataset so pairs stop describing the same real-world
                // entity. Labels become non-matches by construction.
                let n = dataset.pairs.len();
                if n > 1 {
                    let rights: Vec<Entity> =
                        dataset.pairs.iter().map(|p| p.right.clone()).collect();
                    for (i, pair) in dataset.pairs.iter_mut().enumerate() {
                        pair.right = rights[(i + n / 2) % n].clone();
                        pair.label = false;
                    }
                }
                eprintln!("shifted: right entities rotated by {}, labels cleared", n / 2);
            }
            csv::write_csv(&dataset, Path::new(out)).map_err(|e| e.to_string())?;
            println!(
                "wrote {} pairs ({:.1}% matches) to {out}",
                dataset.len(),
                dataset.match_rate_pct()
            );
            Ok(())
        }
        "eval" => {
            let dataset = load(args.require("data")?)?;
            let (model, test) = fit(&dataset, args);
            println!("selected classifier: {:?}", model.classifier());
            println!("pool validation F1:");
            for (kind, f1) in model.matcher().pool_scores() {
                println!("  {:<4} {f1:.3}", kind.short_name());
            }
            println!("test F1: {:.3}", model.f1_on(&test));
            Ok(())
        }
        "explain" => {
            let dataset = load(args.require("data")?)?;
            let id: u32 = args
                .require("id")?
                .parse()
                .map_err(|_| "--id needs a record id".to_string())?;
            let pair = dataset
                .pairs
                .iter()
                .find(|p| p.id == id)
                .ok_or_else(|| format!("no record with id {id}"))?
                .clone();
            let (model, _) = fit(&dataset, args);
            println!("left : {}", pair.left.full_text());
            println!("right: {}", pair.right.full_text());
            println!("gold : {}", if pair.label { "match" } else { "non-match" });
            println!("{}", model.explain(&pair));
            Ok(())
        }
        "match" => {
            let dataset = load(args.require("data")?)?;
            let parse_entity = |s: &str| -> Entity {
                Entity { values: s.split('|').map(str::to_string).collect() }
            };
            let left = parse_entity(args.require("left")?);
            let right = parse_entity(args.require("right")?);
            if left.values.len() != dataset.schema.len()
                || right.values.len() != dataset.schema.len()
            {
                return Err(format!(
                    "entities need {} '|'-separated values (schema: {})",
                    dataset.schema.len(),
                    dataset.schema.attributes.join(", ")
                ));
            }
            let pair = RecordPair { id: u32::MAX, label: false, left, right };
            let (model, _) = fit(&dataset, args);
            println!("{}", model.explain(&pair));
            Ok(())
        }
        "train" => {
            let dataset = load(args.require("data")?)?;
            let json_out = args.get("model").filter(|v| !v.is_empty());
            let artifact_out = args.get("save-model").filter(|v| !v.is_empty());
            if json_out.is_none() && artifact_out.is_none() {
                return Err("train needs --model <OUT.json> and/or --save-model <OUT.wym>".into());
            }
            let (model, test) = fit(&dataset, args);
            println!("test F1: {:.3} ({:?})", model.f1_on(&test), model.classifier());
            if let Some(out) = json_out {
                let json = serde_json::to_vec(&model.to_saved())
                    .map_err(|e| format!("cannot serialize model: {e}"))?;
                std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
                println!("model saved to {out}");
            }
            if let Some(out) = artifact_out {
                // Freeze the train-time behaviour sketch into the artifact:
                // the drift baseline `classify` compares live traffic to.
                let split = paper_split(&dataset, args.num("seed", 42u64));
                let train_pairs: Vec<RecordPair> =
                    split.train.iter().map(|&i| dataset.pairs[i].clone()).collect();
                let sketch = model.sketch_on(&train_pairs);
                let bytes = artifact::save_model_with_sketch(
                    Path::new(out),
                    &model,
                    &manifest(args),
                    Some(&sketch),
                )
                .map_err(|e| e.to_string())?;
                println!(
                    "model artifact saved to {out} ({bytes} bytes, drift baseline over {} pairs)",
                    sketch.len()
                );
            }
            Ok(())
        }
        "apply" => {
            let model_path = args.require("model")?;
            let bytes = std::fs::read(model_path)
                .map_err(|e| format!("cannot read {model_path}: {e}"))?;
            let saved: SavedWymModel = serde_json::from_slice(&bytes)
                .map_err(|e| format!("cannot parse model: {e}"))?;
            let model = WymModel::from_saved(saved);
            let dataset = load(args.require("data")?)?;
            let explain = args.get("explain").is_some();
            let mut predicted_matches = 0usize;
            for pair in &dataset.pairs {
                let p = model.predict(pair);
                if explain {
                    println!("{}", model.explain(pair));
                } else {
                    println!(
                        "{}\t{}\t{:.4}",
                        pair.id,
                        if p.label { "match" } else { "non-match" },
                        p.probability
                    );
                }
                predicted_matches += usize::from(p.label);
            }
            eprintln!(
                "{predicted_matches} predicted matches out of {} pairs",
                dataset.len()
            );
            Ok(())
        }
        "classify" => classify(args),
        "kernels" => {
            // One implementation name per line, most-preferred first — the
            // smoke suite's kernel-matrix loop greps this to decide which
            // WYM_KERNEL values this host can actually exercise.
            for imp in wym::linalg::kernels::available() {
                println!("{}", imp.name());
            }
            eprintln!("active: {}", wym::linalg::kernels::active_name());
            Ok(())
        }
        "model" => {
            let sub = args.positional.get(1).map(String::as_str).unwrap_or("");
            match sub {
                "inspect" => {
                    let path = args
                        .positional
                        .get(2)
                        .ok_or("usage: wym model inspect <MODEL.wym>")?;
                    let info = artifact::inspect(Path::new(path)).map_err(|e| e.to_string())?;
                    print!("{}", info.render());
                    Ok(())
                }
                "diff" => {
                    let (a, b) = match (args.positional.get(2), args.positional.get(3)) {
                        (Some(a), Some(b)) => (a, b),
                        _ => return Err("usage: wym model diff <A.wym> <B.wym>".into()),
                    };
                    let ia = artifact::inspect(Path::new(a)).map_err(|e| e.to_string())?;
                    let ib = artifact::inspect(Path::new(b)).map_err(|e| e.to_string())?;
                    let lines = artifact::diff(&ia, &ib);
                    if lines.is_empty() {
                        println!("artifacts are identical (same sections, shapes, checksums)");
                        Ok(())
                    } else {
                        for line in &lines {
                            println!("{line}");
                        }
                        Err(format!("{} difference(s)", lines.len()))
                    }
                }
                other => Err(format!("unknown model subcommand {other:?}\n{}", usage())),
            }
        }
        "obs" => {
            let sub = args.positional.get(1).map(String::as_str).unwrap_or("");
            match sub {
                "report" => obs_report(args),
                "flight" => {
                    let path = args
                        .positional
                        .get(2)
                        .ok_or("usage: wym obs flight <DUMP.trace.json>")?;
                    let summary = wym_obs::chrome::summarize_file(Path::new(path))?;
                    print!("{summary}");
                    Ok(())
                }
                "export" => {
                    let path = args.require("metrics")?;
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?;
                    let json =
                        wym_obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
                    let snap = wym_obs::Snapshot::from_json(&json)
                        .map_err(|e| format!("{path}: {e}"))?;
                    print!("{}", wym_obs::prometheus_text(&snap));
                    Ok(())
                }
                other => Err(format!("unknown obs subcommand {other:?}\n{}", usage())),
            }
        }
        "" | "help" | "--help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other}\n{}", usage())),
    }
}

fn main() -> ExitCode {
    let args = Args::parse();
    let traced = obs_setup(&args);
    let result = run(&args);
    if traced {
        // Flush even on failure: a partial trace is exactly what you want
        // when diagnosing where a run died.
        obs_flush(&args);
    }
    // Chrome trace export is flight-recorder state, independent of the
    // aggregate tracing above — it works on plain untraced runs too.
    if let Some(path) = args.get("chrome-trace").filter(|p| !p.is_empty()) {
        match wym_obs::flight_write_chrome(path) {
            Ok(n) => eprintln!("chrome trace ({n} events) written to {path}"),
            Err(e) => eprintln!("warning: cannot write chrome trace to {path}: {e}"),
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
