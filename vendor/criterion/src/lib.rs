//! Offline stand-in for `criterion`.
//!
//! Implements the subset of criterion's API the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size` and `finish`), [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`BatchSize`], [`black_box`], and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! Measurement model: after a calibration pass picks an iteration count so
//! each sample lasts ≥ ~5 ms, it collects `sample_size` samples and reports
//! min / mean / max per-iteration wall-clock time. No plots, no statistics
//! beyond that — numbers print to stdout in a fixed-width table so before/
//! after comparisons are easy to quote.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(5);
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substr>` filters benchmarks by name, like real
        // criterion. Flag-style args (cargo passes `--bench`) are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, self.filter.as_deref(), DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark within the group (name is prefixed with the group's).
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.criterion.filter.as_deref(), self.sample_size, f);
        self
    }

    /// Ends the group (accepted for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// How batched inputs are sized in [`Bencher::iter_batched`].
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// One setup call per timed routine call.
    PerIteration,
    /// Treated like `PerIteration` in this stand-in.
    SmallInput,
    /// Treated like `PerIteration` in this stand-in.
    LargeInput,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the requested number of iterations.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh `setup()` inputs, excluding setup time.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark(
    name: &str,
    filter: Option<&str>,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    if let Some(filter) = filter {
        if !name.contains(filter) {
            return;
        }
    }

    // Calibrate: grow the per-sample iteration count until one sample takes
    // at least TARGET_SAMPLE_TIME (so cheap routines aren't all timer noise).
    let mut iters: u64 = 1;
    loop {
        let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut bencher);
        if bencher.elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 24 {
            break;
        }
        // Jump close to the target, conservatively.
        let per_iter = bencher.elapsed.as_secs_f64() / iters as f64;
        let needed = if per_iter > 0.0 {
            (TARGET_SAMPLE_TIME.as_secs_f64() / per_iter).ceil() as u64
        } else {
            iters * 8
        };
        iters = needed.clamp(iters + 1, iters * 16);
    }

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));

    let min = samples[0];
    let max = samples[samples.len() - 1];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<48} time: [{} {} {}]  ({} samples × {} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        samples.len(),
        iters,
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

/// Declares a bench group function running each target against a `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed bench groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("other".into()) };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(!ran);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut g_ran = 0;
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| {
                g_ran += 1;
                v.len()
            }, BatchSize::PerIteration)
        });
        group.finish();
        assert!(g_ran > 0);
    }
}
