//! Offline stand-in for `serde_json`.
//!
//! Serializes the vendored serde's [`Value`] tree to JSON text and parses
//! JSON text back into it. Supports exactly the entry points the workspace
//! uses: [`to_string`], [`to_string_pretty`], [`to_vec`], [`from_str`],
//! [`from_slice`].

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    let value = parser.parse_document()?;
    T::from_value(&value)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// --- printer --------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        // Like real serde_json, non-finite floats have no JSON form; we emit
        // null (read back as NaN by the vendored serde) instead of erroring.
        Value::F64(n) if !n.is_finite() => out.push_str("null"),
        Value::F64(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                // Keep a ".0" marker so the value round-trips as a float.
                out.push_str(&format!("{n:.1}"));
            } else {
                // Shortest representation that round-trips (Rust's Display
                // for floats is shortest-exact, like serde_json's Ryū).
                out.push_str(&n.to_string());
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), items.len(), indent, depth, |o, item, ind, d| {
            write_value(o, item, ind, d);
        }, '[', ']'),
        Value::Object(pairs) => write_seq(out, pairs.iter(), pairs.len(), indent, depth, |o, (k, val), ind, d| {
            write_string(o, k);
            o.push(':');
            if ind.is_some() {
                o.push(' ');
            }
            write_value(o, val, ind, d);
        }, '{', '}'),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I, T>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
    open: char,
    close: char,
) where
    I: Iterator<Item = T>,
{
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(&mut self) -> Result<Value, Error> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs (escaped non-BMP chars).
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full character.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let slice = self
                        .bytes
                        .get(start..self.pos)
                        .ok_or_else(|| self.err("truncated utf-8"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        let v: Vec<f64> = from_str("[1.5, -2.0, 3e2]").unwrap();
        assert_eq!(v, vec![1.5, -2.0, 300.0]);
        let n: u64 = from_str(&to_string(&u64::MAX).unwrap()).unwrap();
        assert_eq!(n, u64::MAX);
    }

    #[test]
    fn round_trips_strings_with_escapes() {
        let s = "quote \" backslash \\ newline \n tab \t unicode é 日本".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parses_escaped_unicode() {
        let s: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(s, "é😀");
    }

    #[test]
    fn non_finite_floats_print_as_null_and_read_as_nan() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn pretty_printer_indents() {
        let v = vec![(1u8, 2u8)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "));
        let back: Vec<(u8, u8)> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true x").is_err());
    }
}
