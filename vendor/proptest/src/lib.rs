//! Offline stand-in for `proptest`.
//!
//! Provides the subset of proptest's API this workspace uses — `Strategy`
//! with `prop_map`/`prop_flat_map`, ranges, tuples, `collection::vec`,
//! `sample::select`, `any::<T>()`, a character-class + `{m,n}` regex
//! subset for `&str` strategies, and the `proptest!`/`prop_assert!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports its inputs (via the case seed)
//!   but is not minimized.
//! - **Deterministic seeding.** Each test's RNG is seeded from a hash of the
//!   test name, so runs are reproducible by construction; set
//!   `PROPTEST_SEED=<u64>` to explore a different sequence.

use std::fmt;
use std::ops::Range;

// --- rng ------------------------------------------------------------------

/// Deterministic 64-bit RNG (splitmix64) used to drive strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from the test name (plus `PROPTEST_SEED` if set).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test stream.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        if let Ok(env) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = env.parse::<u64>() {
                seed ^= extra;
            }
        }
        TestRng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// --- core trait -----------------------------------------------------------

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains into a dependent strategy produced by `f`.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values passing `pred` (rejection sampling, bounded tries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred, whence }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.whence);
    }
}

// --- ranges ---------------------------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

// --- tuples ---------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// --- regex subset for &str ------------------------------------------------

enum Atom {
    /// Candidate characters from a `[...]` class or a literal.
    Class(Vec<char>),
}

struct Pattern {
    atoms: Vec<(Atom, usize, usize)>, // (atom, min repeats, max repeats)
}

fn parse_pattern(pat: &str) -> Pattern {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .expect("unclosed [ in pattern")
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    for c in lo..=hi {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            Atom::Class(set)
        } else {
            let c = chars[i];
            i += 1;
            Atom::Class(vec![c])
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed { in pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (lo.parse().unwrap(), hi.parse().unwrap()),
                None => {
                    let n: usize = body.parse().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, min, max));
    }
    Pattern { atoms }
}

/// String patterns: a character-class + `{m,n}` subset of regex.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = parse_pattern(self);
        let mut out = String::new();
        for (atom, min, max) in &pattern.atoms {
            let n = *min + rng.below((*max - *min + 1) as u64) as usize;
            let Atom::Class(set) = atom;
            assert!(!set.is_empty(), "empty character class in pattern");
            for _ in 0..n {
                out.push(set[rng.below(set.len() as u64) as usize]);
            }
        }
        out
    }
}

// --- any / Arbitrary ------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for `Self`.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy behind `any::<T>()` for primitives.
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )*};
}
impl_arbitrary_prim! {
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i8 => |rng| rng.next_u64() as i8,
    i16 => |rng| rng.next_u64() as i16,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
    isize => |rng| rng.next_u64() as isize,
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// --- collection / sample ---------------------------------------------------

/// Sizes accepted by [`collection::vec`]: a fixed `usize` or a `Range<usize>`.
pub trait IntoSizeRange {
    /// The `[min, max]` bounds (inclusive).
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

/// `Vec` strategies.
pub mod collection {
    use super::*;

    /// Strategy producing vectors of `inner`-generated elements.
    pub struct VecStrategy<S> {
        inner: S,
        min: usize,
        max: usize,
    }

    /// A vector of `size`-many elements drawn from `inner`.
    pub fn vec<S: Strategy>(inner: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { inner, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..n).map(|_| self.inner.generate(rng)).collect()
        }
    }
}

/// Choosing among fixed alternatives.
pub mod sample {
    use super::*;

    /// Strategy that picks one of a fixed set of values.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// A uniformly selected element of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

// --- config / errors / macros ---------------------------------------------

/// Per-block test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with a reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("case {}/{}: {}", __case + 1, __config.cases, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside `proptest!`, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside `proptest!`, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, Just, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Namespaced modules, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..200 {
            let v = crate::Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = crate::Strategy::generate(&(-1.0f32..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::TestRng::from_name("regex");
        for _ in 0..100 {
            let s = crate::Strategy::generate(&"[a-z0-9]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_wiring_works(
            v in prop::collection::vec(0u32..100, 1..8),
            flag in any::<bool>(),
        ) {
            prop_assert!(v.len() < 8);
            prop_assert_eq!(flag || !flag, true);
        }
    }
}
