//! Offline stand-in for `serde_derive`.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal serde data model (see `vendor/serde`): `Serialize` lowers a
//! value to a JSON-like `serde::Value` tree and `Deserialize` rebuilds it.
//! This proc-macro derives both traits with a hand-rolled token parser —
//! no `syn`/`quote` — covering exactly the shapes the workspace uses:
//!
//! * structs with named fields,
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde's default representation).
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported;
//! the derive panics with a clear message if it meets them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Body {
    /// Named struct fields.
    Struct(Vec<String>),
    /// Enum variants.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with this many fields.
    Tuple(usize),
    /// Struct variant with these named fields.
    Struct(Vec<String>),
}

/// Derives `serde::Serialize` (vendored data-model flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    let code = match body {
        Body::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__obj.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                             = ::std::vec::Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Object(__obj)\n\
                     }}\n\
                 }}"
            )
        }
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(vec![\
                             (\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let elems: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![\
                                 (\"{vn}\".to_string(), ::serde::Value::Array(vec![{elems}]))]),\n",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let elems: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), \
                                         ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 (\"{vn}\".to_string(), \
                                  ::serde::Value::Object(vec![{elems}]))]),\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derive(Serialize): generated code must parse")
}

/// Derives `serde::Deserialize` (vendored data-model flavor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    let code = match body {
        Body::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(__v.field(\"{f}\"))\
                         .map_err(|e| e.in_field(\"{name}.{f}\"))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner)\
                             .map_err(|e| e.in_field(\"{name}::{vn}\"))?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let elems: String = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(\
                                     __arr.get({i}).unwrap_or(&::serde::Value::Null))\
                                     .map_err(|e| e.in_field(\"{name}::{vn}.{i}\"))?,"
                                )
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __arr = __inner.as_array()?;\n\
                                 ::std::result::Result::Ok({name}::{vn}({elems}))\n\
                             }},\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     __inner.field(\"{f}\"))\
                                     .map_err(|e| e.in_field(\"{name}::{vn}.{f}\"))?,"
                                )
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok(\
                             {name}::{vn} {{ {inits} }}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                                 let __tag = __pairs[0].0.as_str();\n\
                                 let __inner = &__pairs[0].1;\n\
                                 match __tag {{\n\
                                     {payload_arms}\n\
                                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                                         format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                                 }}\n\
                             }},\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"invalid value for enum {name}: {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derive(Deserialize): generated code must parse")
}

/// Parses a `struct`/`enum` item down to its name and field/variant names.
fn parse_item(input: TokenStream) -> (String, Body) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
            id.to_string()
        }
        other => panic!("serde derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic type `{name}` is not supported");
        }
    }
    let group = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        _ => panic!(
            "serde derive (vendored): `{name}` must be a braced {kind} \
             (tuple/unit structs unsupported)"
        ),
    };
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    let body = if kind == "struct" {
        Body::Struct(parse_named_fields(&inner, &name))
    } else {
        Body::Enum(parse_variants(&inner, &name))
    };
    (name, body)
}

/// Advances past `#[...]` attributes (incl. doc comments) and visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field body; skips types, tracking `<>` depth so
/// commas inside generics don't split fields.
fn parse_named_fields(tokens: &[TokenTree], ctx: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name in {ctx}, found {other}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after {ctx}.{name}, found {other:?}"),
        }
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        names.push(name);
    }
    names
}

/// Variant list of an enum body.
fn parse_variants(tokens: &[TokenTree], ctx: &str) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected variant name in {ctx}, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Struct(parse_named_fields(&inner, &format!("{ctx}::{name}")))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Tuple(count_tuple_fields(&inner))
            }
            _ => VariantKind::Unit,
        };
        // Trailing comma between variants.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Number of fields in a tuple-variant payload (top-level comma count).
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle = 0i32;
    for (k, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            // Ignore a trailing comma.
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 && k + 1 < tokens.len() => {
                fields += 1
            }
            _ => {}
        }
    }
    fields
}
