//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal serialization substrate with serde's *names* but a much simpler
//! design: [`Serialize`] lowers a value to a JSON-like [`Value`] tree and
//! [`Deserialize`] rebuilds the value from one. `vendor/serde_json` prints
//! and parses that tree. The derive macros (re-exported from the sibling
//! `serde_derive` crate) cover named-field structs and unit/tuple/struct
//! enum variants — exactly the shapes this workspace serializes.
//!
//! Representation choices mirror real serde + serde_json where it matters:
//! structs become objects, unit enum variants become strings, and payload
//! variants become externally tagged single-entry objects.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;

/// The serialization data model: a JSON-compatible value tree.
///
/// Integers keep their signedness (`I64`/`U64`) so `u64` seeds above 2^53
/// round-trip exactly instead of being squeezed through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64`).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with preserved key order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Field of an object; `Null` when absent or not an object (the element
    /// deserializer then reports the type mismatch, or maps it to `None`
    /// for `Option` fields).
    pub fn field(&self, name: &str) -> &Value {
        match self {
            Value::Object(pairs) => {
                pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v).unwrap_or(&NULL)
            }
            _ => &NULL,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error::custom(format!("expected array, found {other:?}"))),
        }
    }

    fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::F64(v) => Ok(*v),
            Value::I64(v) => Ok(*v as f64),
            Value::U64(v) => Ok(*v as f64),
            // serde_json rejects NaN/∞; we print them as null and read null
            // back as NaN so model snapshots survive degenerate training.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected number, found {other:?}"))),
        }
    }

    fn as_i64(&self) -> Result<i64, Error> {
        match self {
            Value::I64(v) => Ok(*v),
            Value::U64(v) => i64::try_from(*v)
                .map_err(|_| Error::custom(format!("integer {v} out of i64 range"))),
            Value::F64(v) if v.fract() == 0.0 => Ok(*v as i64),
            other => Err(Error::custom(format!("expected integer, found {other:?}"))),
        }
    }

    fn as_u64(&self) -> Result<u64, Error> {
        match self {
            Value::U64(v) => Ok(*v),
            Value::I64(v) => u64::try_from(*v)
                .map_err(|_| Error::custom(format!("integer {v} out of u64 range"))),
            Value::F64(v) if v.fract() == 0.0 && *v >= 0.0 => Ok(*v as u64),
            other => Err(Error::custom(format!("expected unsigned integer, found {other:?}"))),
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// Wraps the error with the field that produced it (derive internals).
    pub fn in_field(self, field: &str) -> Self {
        Error(format!("{field}: {}", self.0))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Lowers a value into the [`Value`] data model.
pub trait Serialize {
    /// The value as a data-model tree.
    fn to_value(&self) -> Value;
}

/// Rebuilds a value from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses the value from a data-model tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitives -----------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64()?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 { Value::I64(wide as i64) } else { Value::U64(wide) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64()?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!("expected single-char string, found {other:?}"))),
        }
    }
}

// --- references and containers --------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array()?;
        if items.len() != N {
            return Err(Error::custom(format!("expected array of {N}, found {}", items.len())));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length mismatch".to_string()))
    }
}

impl<T: Serialize + Ord> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic snapshots regardless of hash order.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()?.iter().map(T::from_value).collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array()?;
                Ok(($($name::from_value(
                    items.get($idx).unwrap_or(&Value::Null))?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&(-42i64).to_value()).unwrap(), -42);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::I64(3)).unwrap(), Some(3));
        assert_eq!(None::<u32>.to_value(), Value::Null);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u8, "x".to_string(), 2.0f64);
        let back: (u8, String, f64) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
        let mut set = HashSet::new();
        set.insert("b".to_string());
        set.insert("a".to_string());
        assert_eq!(set.to_value(), Value::Array(vec![
            Value::Str("a".into()), Value::Str("b".into())
        ]));
        assert_eq!(HashSet::<String>::from_value(&set.to_value()).unwrap(), set);
    }

    #[test]
    fn missing_field_is_null() {
        let obj = Value::Object(vec![("a".into(), Value::Bool(true))]);
        assert_eq!(obj.field("a"), &Value::Bool(true));
        assert_eq!(obj.field("b"), &Value::Null);
    }
}
