//! Quickstart: fit WYM on a small benchmark dataset, predict, and print
//! decision-unit explanations — including the paper's Table 1 running
//! example.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wym::core::pipeline::{WymConfig, WymModel};
use wym::data::split::paper_split;
use wym::data::{magellan, Entity, RecordPair};
use wym::ml::ClassifierKind;
use wym::nn::TrainConfig;

fn main() {
    // 1. A benchmark dataset: the Fodors-Zagats restaurants data
    //    (regenerated synthetically — see DESIGN.md §2).
    let dataset = magellan::generate_by_name("S-FZ", 42).expect("known dataset");
    println!(
        "dataset {}: {} record pairs, {:.1}% matches",
        dataset.name,
        dataset.len(),
        dataset.match_rate_pct()
    );

    // 2. The paper's 60-20-20 split and a lightweight configuration.
    let split = paper_split(&dataset, 0);
    let mut config = WymConfig::default().with_seed(42);
    config.scorer.train = TrainConfig { epochs: 15, batch_size: 256, ..TrainConfig::default() };
    config.matcher.kinds = vec![
        ClassifierKind::LogisticRegression,
        ClassifierKind::GradientBoosting,
        ClassifierKind::RandomForest,
    ];

    // 3. Fit the full pipeline: embedder → decision units → relevance
    //    scorer → explainable matcher.
    let model = WymModel::fit(&dataset, &split, config);
    println!("fitted; selected classifier: {:?}", model.classifier());

    // 4. Evaluate on the held-out test pairs.
    let test: Vec<RecordPair> = split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
    println!("test F1 = {:.3}\n", model.f1_on(&test));

    // 5. Explain one test match and one test non-match.
    if let Some(m) = test.iter().find(|p| p.label) {
        println!("--- a matching record ---\n{}", model.explain(m));
    }
    if let Some(n) = test.iter().find(|p| !p.label) {
        println!("--- a non-matching record ---\n{}", model.explain(n));
    }

    // 6. The paper's Table 1 fragment, explained by the restaurant model's
    //    sibling trained on software products.
    let software =
        magellan::generate_by_name("S-AG", 42).expect("known dataset").subsample(1200, 0);
    let sw_split = paper_split(&software, 0);
    let mut sw_cfg = WymConfig::default().with_seed(42);
    sw_cfg.scorer.train = TrainConfig { epochs: 15, ..TrainConfig::default() };
    sw_cfg.matcher.kinds =
        vec![ClassifierKind::LogisticRegression, ClassifierKind::GradientBoosting];
    let sw_model = WymModel::fit(&software, &sw_split, sw_cfg);

    let table1_match = RecordPair {
        id: 9001,
        label: true,
        left: Entity::new(vec!["exch srvr external sa eng 39400416", "microsoft licenses", "42166"]),
        right: Entity::new(vec!["39400416 exch svr external l/sa", "microsoft licenses", "22575"]),
    };
    println!("--- Table 1, row 1 (matching software licenses) ---");
    println!("{}", sw_model.explain(&table1_match));
}
