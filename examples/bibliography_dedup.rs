//! Bibliographic record linkage — DBLP-vs-Scholar style citations, the
//! paper's largest benchmark family, including the dirty variant where
//! attribute values migrate into the title.
//!
//! Run with:
//! ```sh
//! cargo run --release --example bibliography_dedup
//! ```

use wym::core::pipeline::{WymConfig, WymModel};
use wym::data::split::paper_split;
use wym::data::{magellan, RecordPair};
use wym::ml::ClassifierKind;
use wym::nn::TrainConfig;

fn config() -> WymConfig {
    let mut cfg = WymConfig::default().with_seed(3);
    cfg.scorer.train = TrainConfig { epochs: 15, batch_size: 256, ..TrainConfig::default() };
    cfg.matcher.kinds = vec![
        ClassifierKind::LogisticRegression,
        ClassifierKind::GradientBoosting,
        ClassifierKind::RandomForest,
    ];
    cfg
}

fn run(name: &str) -> f32 {
    let dataset = magellan::generate_by_name(name, 3).expect("known dataset").subsample(1200, 0);
    let split = paper_split(&dataset, 0);
    let test: Vec<RecordPair> = split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
    let model = WymModel::fit(&dataset, &split, config());
    let f1 = model.f1_on(&test);
    println!("\n=== {name}: test F1 {f1:.3} (classifier {:?}) ===", model.classifier());

    // Explain a citation match: paired decision units should carry the
    // title words, with the venue/year units contributing less.
    if let Some(m) = test.iter().find(|p| p.label) {
        println!("left : {}", m.left.full_text());
        println!("right: {}", m.right.full_text());
        let ex = model.explain(m);
        println!("top-5 decision units by |impact|:");
        for u in ex.top_units(5) {
            println!(
                "  {:<34} [{}] impact {:+.4} relevance {:+.3}",
                u.display_pair(),
                u.attribute,
                u.impact,
                u.relevance
            );
        }
    }
    f1
}

fn main() {
    let clean = run("S-DA"); // DBLP-ACM, clean
    let dirty = run("D-DA"); // DBLP-ACM, dirty (values moved into the title)
    println!(
        "\nclean {clean:.3} vs dirty {dirty:.3} — the inter-attribute search space \
         (threshold η) is what keeps the dirty variant close to the clean one"
    );
}
