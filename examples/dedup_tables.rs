//! End-to-end deduplication of two raw entity tables: blocking → WYM
//! matching → explained match report.
//!
//! The paper's benchmarks start from pre-blocked pairs; this example shows
//! the full workflow a practitioner runs on raw tables: generate candidate
//! pairs with token-overlap blocking, score them with a fitted WYM model,
//! and inspect the explanations of the accepted matches.
//!
//! Run with:
//! ```sh
//! cargo run --release --example dedup_tables
//! ```

use wym::core::pipeline::{WymConfig, WymModel};
use wym::data::blocking::{block_candidates, blocking_recall, BlockingConfig};
use wym::data::split::paper_split;
use wym::data::{magellan, Entity, RecordPair};
use wym::ml::ClassifierKind;
use wym::nn::TrainConfig;

fn main() {
    // 1. Train WYM on labeled pairs (the supervised step).
    let train_data =
        magellan::generate_by_name("S-FZ", 11).expect("known dataset").subsample(500, 0);
    let split = paper_split(&train_data, 0);
    let mut cfg = WymConfig::default().with_seed(11);
    cfg.scorer.train = TrainConfig { epochs: 12, batch_size: 256, ..TrainConfig::default() };
    cfg.matcher.kinds =
        vec![ClassifierKind::LogisticRegression, ClassifierKind::GradientBoosting];
    let model = WymModel::fit(&train_data, &split, cfg);
    println!("trained on {} labeled pairs", split.train.len() + split.val.len());

    // 2. Build two raw "tables" from a fresh slice of the same domain:
    //    left/right catalog dumps with gold alignment by construction.
    let fresh = magellan::generate_by_name("S-FZ", 99).expect("known dataset").subsample(150, 0);
    let left_table: Vec<Entity> = fresh.pairs.iter().map(|p| p.left.clone()).collect();
    let right_table: Vec<Entity> = fresh.pairs.iter().map(|p| p.right.clone()).collect();
    let gold: Vec<(usize, usize)> = fresh
        .pairs
        .iter()
        .enumerate()
        .filter(|(_, p)| p.label)
        .map(|(i, _)| (i, i))
        .collect();

    // 3. Blocking: candidate pairs via token overlap.
    let blocking = BlockingConfig { min_shared_tokens: 2, ..BlockingConfig::default() };
    let candidates = block_candidates(&left_table, &right_table, &blocking);
    let recall = blocking_recall(&candidates, &gold);
    println!(
        "blocking: {} candidates out of {} possible pairs ({:.1}% reduction), gold recall {:.2}",
        candidates.len(),
        left_table.len() * right_table.len(),
        100.0 * (1.0 - candidates.len() as f64 / (left_table.len() * right_table.len()) as f64),
        recall
    );

    // 4. Match the candidates and report.
    let mut accepted = Vec::new();
    for (id, &(i, j)) in candidates.iter().enumerate() {
        let pair = RecordPair {
            id: id as u32,
            label: false, // unknown at inference time
            left: left_table[i].clone(),
            right: right_table[j].clone(),
        };
        let p = model.predict(&pair);
        if p.label {
            accepted.push((i, j, p.probability, pair));
        }
    }
    let correct = accepted.iter().filter(|(i, j, _, _)| gold.contains(&(*i, *j))).count();
    println!(
        "matcher accepted {} candidates; {} / {} gold matches found",
        accepted.len(),
        correct,
        gold.len()
    );

    // 5. Explain the most and least confident accepted matches.
    accepted.sort_by(|a, b| b.2.total_cmp(&a.2));
    if let Some((_, _, _, pair)) = accepted.first() {
        println!("\n--- most confident match ---\n{}", model.explain(pair));
    }
    if let Some((_, _, _, pair)) = accepted.last() {
        println!("--- least confident match ---\n{}", model.explain(pair));
    }
}
