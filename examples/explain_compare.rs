//! Comparing WYM's intrinsic explanations against post-hoc explainers
//! (LIME, Landmark, LEMON) on the same record — the qualitative side of the
//! paper's Figures 7 and 9.
//!
//! Run with:
//! ```sh
//! cargo run --release --example explain_compare
//! ```

use wym::core::pipeline::{EmPredictor, WymConfig, WymModel};
use wym::data::split::paper_split;
use wym::data::{magellan, RecordPair};
use wym::explain::{LemonLite, LimeText, Landmark};
use wym::linalg::stats::pearson;
use wym::ml::ClassifierKind;
use wym::nn::TrainConfig;

fn main() {
    let dataset = magellan::generate_by_name("S-BR", 5).expect("known dataset");
    let split = paper_split(&dataset, 0);
    let mut cfg = WymConfig::default().with_seed(5);
    cfg.scorer.train = TrainConfig { epochs: 15, ..TrainConfig::default() };
    cfg.matcher.kinds =
        vec![ClassifierKind::LogisticRegression, ClassifierKind::GradientBoosting];
    let model = WymModel::fit(&dataset, &split, cfg);

    let test: Vec<RecordPair> = split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
    let pair = test.iter().find(|p| p.label).expect("a test match");
    println!("record: {}  <=>  {}", pair.left.full_text(), pair.right.full_text());
    println!("WYM prediction: p(match) = {:.3}\n", model.proba(pair));

    // Intrinsic explanation — free, exact, unit granularity.
    let ex = model.explain(pair);
    println!("WYM decision units (intrinsic):");
    for u in ex.top_units(6) {
        println!("  {:<30} impact {:+.4}", u.display_pair(), u.impact);
    }

    // Post-hoc explainers — hundreds of model calls each, token granularity.
    let lime = LimeText { n_samples: 150, ..LimeText::default() };
    let landmark = Landmark { n_perturbations: 60, ..Landmark::default() };
    let lemon = LemonLite { n_samples: 100, ..LemonLite::default() };
    for (name, atts) in [
        ("LIME", lime.explain(&model, pair)),
        ("Landmark", landmark.explain(&model, pair)),
        ("LEMON", lemon.explain(&model, pair)),
    ] {
        let mut sorted = atts.clone();
        sorted.sort_by(|a, b| b.weight.abs().total_cmp(&a.weight.abs()));
        println!("\n{name} top tokens (post-hoc):");
        for a in sorted.iter().take(6) {
            println!(
                "  {:<20} side {} weight {:+.4}",
                a.token,
                if a.loc.side == 0 { "L" } else { "R" },
                a.weight
            );
        }
        // Agreement with the intrinsic impacts at unit granularity.
        let weights: Vec<_> = atts.iter().map(|a| (a.loc, a.weight)).collect();
        let proc = model.process(pair);
        let impacts = model.matcher().impacts(&proc.units, &proc.relevances);
        let merged = wym::explain::rebuild::token_weights_to_units(&proc, &weights);
        if let Some(r) = pearson(&impacts, &merged) {
            println!("  Pearson correlation with WYM impacts: {r:+.3}");
        }
    }
}
