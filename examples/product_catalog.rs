//! Product-catalog deduplication — the scenario from the paper's
//! introduction (two electronics catalogs, dirty values, product codes).
//!
//! Shows the §5.1.1 domain-knowledge extension: product codes may only pair
//! when they are exactly equal, which the paper reports lifting T-AB from
//! 0.645 to 0.754.
//!
//! Run with:
//! ```sh
//! cargo run --release --example product_catalog
//! ```

use wym::core::pipeline::{WymConfig, WymModel};
use wym::data::split::paper_split;
use wym::data::{magellan, RecordPair};
use wym::ml::ClassifierKind;
use wym::nn::TrainConfig;

fn config(code_heuristic: bool) -> WymConfig {
    let mut cfg = WymConfig::default().with_seed(7);
    cfg.discovery.code_heuristic = code_heuristic;
    cfg.scorer.train = TrainConfig { epochs: 15, batch_size: 256, ..TrainConfig::default() };
    cfg.matcher.kinds = vec![
        ClassifierKind::LogisticRegression,
        ClassifierKind::GradientBoosting,
        ClassifierKind::RandomForest,
    ];
    cfg
}

fn main() {
    // Walmart-Amazon-style electronics with hard same-brand negatives.
    let dataset =
        magellan::generate_by_name("S-WA", 7).expect("known dataset").subsample(1200, 0);
    let split = paper_split(&dataset, 0);
    let test: Vec<RecordPair> = split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();

    println!("== plain WYM ==");
    let plain = WymModel::fit(&dataset, &split, config(false));
    let f1_plain = plain.f1_on(&test);
    println!("test F1 without the code heuristic: {f1_plain:.3}");

    println!("\n== WYM + product-code domain knowledge (§5.1.1 extension) ==");
    let guarded = WymModel::fit(&dataset, &split, config(true));
    let f1_guarded = guarded.f1_on(&test);
    println!("test F1 with the code heuristic:    {f1_guarded:.3}");

    // Find a hard negative — same brand, different model number — and show
    // how each model explains it.
    let hard_negative = test.iter().find(|p| {
        !p.label
            && p.left.values.get(2) == p.right.values.get(2) // same brand
            && p.left.values.get(3) != p.right.values.get(3) // different model
    });
    if let Some(pair) = hard_negative {
        println!("\n--- hard negative: same brand, different model ---");
        println!("left : {}", pair.left.full_text());
        println!("right: {}", pair.right.full_text());
        println!("\nwithout heuristic:\n{}", plain.explain(pair));
        println!("with heuristic:\n{}", guarded.explain(pair));
    }

    // Catalog-scale scan: rank the most confident matches in the test set.
    println!("--- top predicted matches in the test slice ---");
    let mut scored: Vec<(f32, &RecordPair)> =
        test.iter().map(|p| (guarded.predict(p).probability, p)).collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    for (proba, pair) in scored.iter().take(5) {
        println!(
            "p={proba:.3} [{}] {} <=> {}",
            if pair.label { "gold match" } else { "gold non-match" },
            pair.left.values[0],
            pair.right.values[0]
        );
    }
}
