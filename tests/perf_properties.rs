//! Property-based equivalence tests for this round of performance work:
//! the cached similarity matrix, the blocked GEMM kernels, the
//! runtime-dispatched SIMD kernel layer, the batched scorer, and the
//! work-stealing parallel pipeline must all reproduce the straightforward
//! implementations they replaced.

use std::sync::OnceLock;

use proptest::prelude::*;
use wym::core::algorithm1::{
    discover_units, discover_units_cached, discover_units_reference, DiscoveryConfig,
};
use wym::core::pairing::{
    get_sm_pairs, get_sm_pairs_cached, is_stable, is_stable_cached, PairingSim, SimMatrix,
};
use wym::core::pipeline::{WymConfig, WymModel};
use wym::core::record::TokenizedRecord;
use wym::data::split::paper_split;
use wym::data::{magellan, Entity, RecordPair};
use wym::embed::{Embedder, EmbedderKind};
use wym::linalg::{Matrix, Rng64};
use wym::ml::ClassifierKind;
use wym::nn::TrainConfig;

/// Strategy: a small vocabulary word (mix of prose and code-like tokens so
/// both sides of the code heuristic get exercised).
fn word() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "camera", "digital", "sony", "nikon", "lens", "kit", "case", "zoom", "39400416",
        "dslra200w", "exch", "server", "license", "price", "router",
    ])
    .prop_map(str::to_string)
}

/// Strategy: an entity value of 0..6 words.
fn value() -> impl Strategy<Value = String> {
    prop::collection::vec(word(), 0..6).prop_map(|w| w.join(" "))
}

/// Strategy: a record pair over a 2-attribute schema.
fn record_pair() -> impl Strategy<Value = RecordPair> {
    (value(), value(), value(), value(), any::<bool>()).prop_map(|(a, b, c, d, label)| {
        RecordPair {
            id: 0,
            label,
            left: Entity::new(vec![a, b]),
            right: Entity::new(vec![c, d]),
        }
    })
}

fn tokenized(pair: &RecordPair) -> TokenizedRecord {
    let tok = wym::tokenize::Tokenizer::default();
    let emb = Embedder::new_static(32, 0);
    TokenizedRecord::from_pair(pair, &tok, &emb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cached similarity matrix reproduces the per-lookup reference
    /// path *bit for bit*: same pairs, same similarity values (`==` on
    /// f32), for both similarity backends, both code-heuristic settings,
    /// and across the three phase thresholds.
    #[test]
    fn cached_sm_pairs_bit_identical_to_reference(
        pair in record_pair(),
        threshold in 0.1f32..0.95,
    ) {
        let rec = tokenized(&pair);
        let left = rec.left.all_refs();
        let right = rec.right.all_refs();
        for sim in [PairingSim::Embedding, PairingSim::JaroWinkler] {
            let matrix = SimMatrix::build(&rec, sim);
            for code_heuristic in [false, true] {
                let reference = get_sm_pairs(&rec, &left, &right, threshold, sim, code_heuristic);
                let cached =
                    get_sm_pairs_cached(&matrix, &left, &right, threshold, code_heuristic);
                prop_assert_eq!(&reference, &cached, "sim {:?}", sim);
                prop_assert!(
                    is_stable(&rec, &left, &right, &reference, threshold, sim)
                        == is_stable_cached(&matrix, &left, &right, &cached, threshold),
                    "stability verdict diverged"
                );
            }
        }
    }

    /// Full three-phase discovery equals the uncached per-lookup reference
    /// implementation exactly, and a prebuilt matrix equals the public
    /// entry point (which builds its own).
    #[test]
    fn cached_discovery_bit_identical(pair in record_pair()) {
        let rec = tokenized(&pair);
        for sim in [PairingSim::Embedding, PairingSim::JaroWinkler] {
            for code_heuristic in [false, true] {
                let config = DiscoveryConfig { sim, code_heuristic, ..Default::default() };
                let cached = discover_units(&rec, &config);
                prop_assert_eq!(&cached, &discover_units_reference(&rec, &config));
                let matrix = SimMatrix::build(&rec, config.sim);
                prop_assert_eq!(&cached, &discover_units_cached(&rec, &matrix, &config));
            }
        }
    }
}

/// In-order reference product: `acc += a[i][p] * b[p][j]` with `p`
/// ascending, exactly the pre-blocking loop order.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for p in 0..a.cols() {
                acc += a[(i, p)] * b[(p, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

/// The blocked kernels fuse four products per accumulator update, which
/// reorders the float additions, so results are *not* bit-identical to the
/// naive loop. Both orderings are within `k * eps` of the exact sum, so
/// their mutual distance is bounded by ~`2 * k * eps * Σ|a_ip * b_pj|`;
/// with k ≤ 300 and f32 eps ≈ 1.2e-7 a relative tolerance of 1e-6 per unit
/// of absolute-product mass holds with a wide margin in practice.
fn assert_close_to_naive(fast: &Matrix, a: &Matrix, b: &Matrix) {
    let slow = naive_matmul(a, b);
    for i in 0..slow.rows() {
        for j in 0..slow.cols() {
            let mass: f32 = (0..a.cols()).map(|p| (a[(i, p)] * b[(p, j)]).abs()).sum();
            let tol = 1e-6 * mass.max(1.0);
            let (x, y) = (fast[(i, j)], slow[(i, j)]);
            assert!((x - y).abs() <= tol, "({i},{j}): {x} vs {y}, tol {tol}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Blocked `matmul`, `t_matmul`, and `matmul_t` all agree with the
    /// in-order triple loop to the tolerance justified above. Dimensions
    /// straddle the 4-step unroll and (via 140) the 128-wide panel.
    #[test]
    fn blocked_gemm_matches_naive(
        m in 1usize..12,
        k in 1usize..140,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng64::new(seed);
        let a = Matrix::randn(m, k, 1.0, &mut rng);
        let b = Matrix::randn(k, n, 1.0, &mut rng);
        assert_close_to_naive(&a.matmul(&b), &a, &b);

        let at = a.transpose();
        assert_close_to_naive(&at.t_matmul(&b), &a, &b);

        let bt = b.transpose();
        assert_close_to_naive(&a.matmul_t(&bt), &a, &b);
    }
}

/// Strategy: a magnitude scale spanning `±1e±6` so the kernel identities
/// are checked on tiny, unit, and huge values (and their mixtures).
fn scale() -> impl Strategy<Value = f32> {
    prop::sample::select(vec![1e-6f32, 1e-3, 1.0, 1e3, 1e6])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The determinism contract of the kernel layer: **every** supported
    /// implementation on this host (AVX-512, AVX2+FMA, NEON — whatever the
    /// CPU exposes) returns **bit-identical** f32 to the portable scalar
    /// path, for every kernel, across lengths 0..=64 (every 8- and 16-lane
    /// remainder) and magnitudes from 1e-6 to 1e6. `available()` ignores
    /// `WYM_KERNEL`, so this pins each genuinely distinct code path the
    /// host can run.
    #[test]
    fn kernels_bit_identical_across_dispatch(
        pairs in prop::collection::vec((-1.0f32..1.0, -1.0f32..1.0), 0..65),
        sa in scale(),
        sb in scale(),
        alpha in -2.0f32..2.0,
    ) {
        use wym::linalg::kernels::{
            available, axpy_with, cosine_with, dist_sq_with, dot_with, KernelImpl,
        };
        let a: Vec<f32> = pairs.iter().map(|(x, _)| x * sa).collect();
        let b: Vec<f32> = pairs.iter().map(|(_, y)| y * sb).collect();
        let scalar = KernelImpl::Scalar;
        for imp in available() {
            prop_assert_eq!(
                dot_with(imp, &a, &b).to_bits(),
                dot_with(scalar, &a, &b).to_bits(),
                "dot diverged for {:?} at len {}", imp, a.len()
            );
            prop_assert_eq!(
                dist_sq_with(imp, &a, &b).to_bits(),
                dist_sq_with(scalar, &a, &b).to_bits(),
                "dist_sq diverged for {:?} at len {}", imp, a.len()
            );
            prop_assert_eq!(
                cosine_with(imp, &a, &b).to_bits(),
                cosine_with(scalar, &a, &b).to_bits(),
                "cosine diverged for {:?} at len {}", imp, a.len()
            );
            let mut y_imp = b.clone();
            let mut y_scalar = b.clone();
            axpy_with(imp, alpha, &a, &mut y_imp);
            axpy_with(scalar, alpha, &a, &mut y_scalar);
            for (i, (x, y)) in y_imp.iter().zip(&y_scalar).enumerate() {
                prop_assert_eq!(
                    x.to_bits(), y.to_bits(),
                    "axpy diverged for {:?} at element {}", imp, i
                );
            }
        }
    }

    /// The int8 kernels are exact integer arithmetic, so every supported
    /// implementation must agree with scalar to the last bit (`==` on i32)
    /// on arbitrary i8 contents and every vector-width remainder.
    #[test]
    fn i8_kernels_exact_across_dispatch(
        pairs in prop::collection::vec((any::<i8>(), any::<i8>()), 0..65),
    ) {
        use wym::linalg::kernels::{available, dist_sq_i8_with, dot_i8_with, KernelImpl};
        let a: Vec<i8> = pairs.iter().map(|(x, _)| *x).collect();
        let b: Vec<i8> = pairs.iter().map(|(_, y)| *y).collect();
        for imp in available() {
            prop_assert_eq!(
                dot_i8_with(imp, &a, &b),
                dot_i8_with(KernelImpl::Scalar, &a, &b),
                "dot_i8 diverged for {:?} at len {}", imp, a.len()
            );
            prop_assert_eq!(
                dist_sq_i8_with(imp, &a, &b),
                dist_sq_i8_with(KernelImpl::Scalar, &a, &b),
                "dist_sq_i8 diverged for {:?} at len {}", imp, a.len()
            );
        }
    }

    /// The quantization kernels under every supported implementation:
    /// `max_abs` is an exact max-reduce (order-free), and `quantize_i8`
    /// rounds each element independently with ties-to-even (the SIMD
    /// convert rounding mode), so both must match scalar to the last bit
    /// on finite inputs at every vector-width remainder.
    #[test]
    fn quantize_kernels_exact_across_dispatch(
        vals in prop::collection::vec(-1.0f32..1.0, 0..65),
        s in scale(),
        inv in 0.1f32..300.0,
    ) {
        use wym::linalg::kernels::{available, max_abs_with, quantize_i8_with, KernelImpl};
        let v: Vec<f32> = vals.iter().map(|x| x * s).collect();
        for imp in available() {
            prop_assert_eq!(
                max_abs_with(imp, &v).to_bits(),
                max_abs_with(KernelImpl::Scalar, &v).to_bits(),
                "max_abs diverged for {:?} at len {}", imp, v.len()
            );
            let mut q_imp = vec![0i8; v.len()];
            let mut q_scalar = vec![0i8; v.len()];
            quantize_i8_with(imp, &v, inv, &mut q_imp);
            quantize_i8_with(KernelImpl::Scalar, &v, inv, &mut q_scalar);
            prop_assert_eq!(
                &q_imp, &q_scalar,
                "quantize_i8 diverged for {:?} at len {} inv {}", imp, v.len(), inv
            );
        }
    }

    /// The batched int8 row-block dot under every supported implementation
    /// equals per-row scalar `dot_i8` exactly — integer arithmetic is
    /// associative, so blocking, masked tails, and the odd-row fallback may
    /// not change a single result. Row counts straddle the 2-row blocking
    /// and dims straddle the 64-byte chunking.
    #[test]
    fn dot_i8_batch_exact_across_dispatch(
        a in prop::collection::vec(any::<i8>(), 1..70),
        rows_data in prop::collection::vec(any::<i8>(), 0..700),
    ) {
        use wym::linalg::kernels::{available, dot_i8_batch_with, dot_i8_with, KernelImpl};
        let d = a.len();
        let n = rows_data.len() / d;
        let rows = &rows_data[..n * d];
        let expected: Vec<i32> = rows
            .chunks_exact(d)
            .map(|row| dot_i8_with(KernelImpl::Scalar, &a, row))
            .collect();
        for imp in available() {
            let mut out = vec![0i32; n];
            dot_i8_batch_with(imp, &a, rows, &mut out);
            prop_assert_eq!(
                &out, &expected,
                "dot_i8_batch diverged for {:?} at d {} n {}", imp, d, n
            );
            // Empty-query degenerate case: every dot is an empty sum.
            let mut zout = vec![1i32; n];
            dot_i8_batch_with(imp, &[], &[], &mut zout);
            prop_assert!(zout.iter().all(|&z| z == 0), "empty-a fill for {:?}", imp);
        }
    }

    /// The GEMM inner update under every supported implementation, same
    /// contract.
    #[test]
    fn gemm_update4_bit_identical_across_dispatch(
        rows in prop::collection::vec(
            (-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0),
            0..65,
        ),
        coef in (-2.0f32..2.0, -2.0f32..2.0, -2.0f32..2.0, -2.0f32..2.0),
        s in scale(),
    ) {
        use wym::linalg::kernels::{available, gemm_update4_with, KernelImpl};
        let col = |f: fn(&(f32, f32, f32, f32, f32)) -> f32| -> Vec<f32> {
            rows.iter().map(|r| f(r) * s).collect()
        };
        let (b0, b1) = (col(|r| r.0), col(|r| r.1));
        let (b2, b3) = (col(|r| r.2), col(|r| r.3));
        let o0 = col(|r| r.4);
        let coef = [coef.0, coef.1, coef.2, coef.3];
        for imp in available() {
            let mut o_imp = o0.clone();
            let mut o_scalar = o0.clone();
            gemm_update4_with(imp, coef, &b0, &b1, &b2, &b3, &mut o_imp);
            gemm_update4_with(KernelImpl::Scalar, coef, &b0, &b1, &b2, &b3, &mut o_scalar);
            for (i, (x, y)) in o_imp.iter().zip(&o_scalar).enumerate() {
                prop_assert_eq!(
                    x.to_bits(), y.to_bits(),
                    "gemm_update4 diverged for {:?} at element {}", imp, i
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The int8-screened similarity matrix ([`SimMatrix::build_tuned`] with
    /// a floor) accepts **exactly** the same stable-marriage pair set as the
    /// pure-f32 build at every threshold at or above the floor — same
    /// pairs, bit-identical similarities — on random records whose token
    /// similarities straddle the floor. Also pins the fused tokenize→embed
    /// path transitively: both matrices come from `from_pair`, which embeds
    /// through the arena.
    #[test]
    fn i8_screened_pairing_accepts_same_pair_set(
        pair in record_pair(),
        floor in 0.2f32..0.8,
        bump in 0.0f32..0.19,
    ) {
        let rec = tokenized(&pair);
        let left = rec.left.all_refs();
        let right = rec.right.all_refs();
        let plain = SimMatrix::build(&rec, PairingSim::Embedding);
        let tuned =
            SimMatrix::build_tuned(&rec, PairingSim::Embedding, true, Some(floor), 1);
        let threshold = floor + bump;
        for code_heuristic in [false, true] {
            let expected =
                get_sm_pairs_cached(&plain, &left, &right, threshold, code_heuristic);
            let got = get_sm_pairs_cached(&tuned, &left, &right, threshold, code_heuristic);
            prop_assert_eq!(
                &expected, &got,
                "pair sets diverged at floor {} threshold {}", floor, threshold
            );
        }
        // Stability verdicts agree too (is_stable reads every entry but
        // filters below the threshold, so screened entries are invisible).
        let pairs_ref = get_sm_pairs_cached(&plain, &left, &right, threshold, false);
        prop_assert_eq!(
            is_stable_cached(&plain, &left, &right, &pairs_ref, threshold),
            is_stable_cached(&tuned, &left, &right, &pairs_ref, threshold)
        );
    }
}

/// One shared fitted model for the parallel-equivalence property — fitting
/// is the expensive part and its determinism is covered by the end-to-end
/// suite, so fit once and probe `process_many_parallel` against it.
fn shared_model() -> &'static (WymModel, Vec<RecordPair>) {
    static MODEL: OnceLock<(WymModel, Vec<RecordPair>)> = OnceLock::new();
    MODEL.get_or_init(|| {
        let dataset = magellan::generate_by_name("S-FZ", 31).unwrap().subsample(160, 0);
        let split = paper_split(&dataset, 0);
        let mut cfg = WymConfig::default().with_seed(31);
        cfg.embed_dim = 32;
        cfg.embedder_kind = EmbedderKind::Static;
        cfg.scorer.train =
            TrainConfig { epochs: 4, batch_size: 128, lr: 2e-3, ..TrainConfig::default() };
        cfg.matcher.kinds = vec![ClassifierKind::LogisticRegression];
        let model = WymModel::fit(&dataset, &split, cfg);
        let test: Vec<RecordPair> =
            split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
        (model, test)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Work-stealing `process_many_parallel` returns exactly what the
    /// sequential `process_many` returns — same order, same units, same
    /// relevances — for every thread count 1..=8 (0 = auto is the
    /// n-cores special case of the same code path).
    #[test]
    fn parallel_processing_matches_sequential(n_threads in 1usize..9) {
        let (model, test) = shared_model();
        let sequential = model.process_many(test);
        let parallel = model.process_many_parallel(test, n_threads);
        prop_assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            prop_assert_eq!(&s.units, &p.units);
            prop_assert_eq!(&s.relevances, &p.relevances);
        }
    }

    /// Batched scorer inference is bit-identical to per-record scoring:
    /// `score_batch` over a random prefix of the test set returns exactly
    /// the per-record `score_units` results (GEMM output rows depend only
    /// on their own input row), and the batched process path reproduces the
    /// sequential reference records end to end.
    #[test]
    fn batched_scoring_matches_per_unit(n_records in 1usize..24) {
        let (model, test) = shared_model();
        let take = n_records.min(test.len());
        let pairs = &test[..take];

        let batched = model.process_many_batched(pairs);
        let sequential = model.process_many(pairs);
        prop_assert_eq!(batched.len(), sequential.len());
        for (b, s) in batched.iter().zip(&sequential) {
            prop_assert_eq!(&b.units, &s.units);
            prop_assert_eq!(&b.relevances, &s.relevances);
        }

        // And directly at the scorer: one multi-record forward pass vs one
        // call per record.
        let batch: Vec<_> =
            batched.iter().map(|p| (&p.record, p.units.as_slice())).collect();
        let stacked = model.scorer().score_batch(&batch);
        for ((rec, units), scores) in batch.iter().zip(&stacked) {
            prop_assert_eq!(scores, &model.scorer().score_units(rec, units));
        }
    }
}
