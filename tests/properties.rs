//! Property-based tests over the core data structures and invariants,
//! using proptest with random token soups and random score vectors.

use proptest::prelude::*;
use wym::core::algorithm1::{check_constraints, discover_units, DiscoveryConfig};
use wym::core::features::{
    contributions, evaluate, featurize, full_specs, simplified_specs, FeatureSpec, Scope, Stat,
};
use wym::core::pairing::{get_sm_pairs, is_stable, PairingSim};
use wym::core::record::{Side, TokenRef, TokenizedRecord};
use wym::core::scorer::{eq2_target, unit_features};
use wym::core::units::DecisionUnit;
use wym::data::{Entity, RecordPair};
use wym::embed::Embedder;
use wym::strsim::{jaro_winkler, levenshtein};
use wym::tokenize::Tokenizer;

/// Strategy: a small vocabulary word.
fn word() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "camera", "digital", "sony", "nikon", "lens", "kit", "case", "zoom", "39400416",
        "dslra200w", "exch", "server", "license", "price", "router",
    ])
    .prop_map(str::to_string)
}

/// Strategy: an entity value of 0..6 words.
fn value() -> impl Strategy<Value = String> {
    prop::collection::vec(word(), 0..6).prop_map(|w| w.join(" "))
}

/// Strategy: a record pair over a 2-attribute schema.
fn record_pair() -> impl Strategy<Value = RecordPair> {
    (value(), value(), value(), value(), any::<bool>()).prop_map(|(a, b, c, d, label)| {
        RecordPair {
            id: 0,
            label,
            left: Entity::new(vec![a, b]),
            right: Entity::new(vec![c, d]),
        }
    })
}

fn tokenize(pair: &RecordPair) -> TokenizedRecord {
    TokenizedRecord::from_pair(pair, &Tokenizer::default(), &Embedder::new_static(32, 0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// §3.1.1 constraints hold for every input: every token in ≥1 unit,
    /// no token both paired and unpaired.
    #[test]
    fn discovery_constraints_always_hold(pair in record_pair()) {
        let rec = tokenize(&pair);
        let units = discover_units(&rec, &DiscoveryConfig::default());
        prop_assert!(check_constraints(&rec, &units).is_ok());
    }

    /// The stable-marriage output never contains a blocking pair.
    #[test]
    fn stable_marriage_is_stable(pair in record_pair(), threshold in 0.1f32..0.95) {
        let rec = tokenize(&pair);
        let left = rec.left.all_refs();
        let right = rec.right.all_refs();
        let pairs = get_sm_pairs(&rec, &left, &right, threshold, PairingSim::Embedding, false);
        prop_assert!(is_stable(&rec, &left, &right, &pairs, threshold, PairingSim::Embedding));
        // Every emitted similarity respects the threshold.
        for (_, _, s) in &pairs {
            prop_assert!(*s >= threshold);
        }
        // One-to-one within the call.
        let mut lefts: Vec<_> = pairs.iter().map(|(l, _, _)| *l).collect();
        lefts.sort_by_key(|t| (t.attr, t.pos));
        let n = lefts.len();
        lefts.dedup();
        prop_assert_eq!(lefts.len(), n);
    }

    /// Unit features are symmetric in the two sides (challenge R3).
    #[test]
    fn scorer_features_are_side_symmetric(a in word(), b in word()) {
        let p1 = RecordPair {
            id: 0, label: true,
            left: Entity::new(vec![a.clone()]),
            right: Entity::new(vec![b.clone()]),
        };
        let p2 = RecordPair {
            id: 0, label: true,
            left: Entity::new(vec![b]),
            right: Entity::new(vec![a]),
        };
        let r1 = tokenize(&p1);
        let r2 = tokenize(&p2);
        let u = DecisionUnit::Paired {
            left: TokenRef::new(0, 0),
            right: TokenRef::new(0, 0),
            similarity: 0.5,
        };
        let f1 = unit_features(&r1, &u);
        let f2 = unit_features(&r2, &u);
        for (x, y) in f1.iter().zip(&f2) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    /// Eq. 2 targets are always in {-1, 0, 1} and obey the sign discipline:
    /// matches never produce -1, non-matches never produce +1.
    #[test]
    fn eq2_targets_are_well_formed(sim in -1.0f32..1.0, label in any::<bool>(),
                                   alpha in 0.3f32..0.9, beta in 0.1f32..0.8) {
        let unit = DecisionUnit::Paired {
            left: TokenRef::new(0, 0),
            right: TokenRef::new(0, 0),
            similarity: sim,
        };
        let t = eq2_target(&unit, label, alpha, beta);
        prop_assert!(t == -1.0 || t == 0.0 || t == 1.0);
        if label { prop_assert!(t >= 0.0); } else { prop_assert!(t <= 0.0); }
    }

    /// Inverse feature engineering conserves mass for the linear stats:
    /// Σᵢ wᵢ·scoreᵢ equals the feature value for Sum and Mean.
    #[test]
    fn contribution_mass_conservation(
        scores in prop::collection::vec(-1.0f32..1.0, 1..12),
        paired_mask in prop::collection::vec(any::<bool>(), 1..12),
    ) {
        let n = scores.len().min(paired_mask.len());
        let units: Vec<DecisionUnit> = (0..n)
            .map(|i| if paired_mask[i] {
                DecisionUnit::Paired {
                    left: TokenRef::new(0, i),
                    right: TokenRef::new(0, i),
                    similarity: 0.5,
                }
            } else {
                DecisionUnit::Unpaired { token: TokenRef::new(0, i), side: Side::Left }
            })
            .collect();
        let scores = &scores[..n];
        for stat in [Stat::Sum, Stat::Mean] {
            let spec = FeatureSpec {
                scope: Scope::Record { polarity: wym::core::features::Polarity::All },
                stat,
            };
            let value = evaluate(&spec, &units, scores);
            let recon: f32 = contributions(&spec, &units, scores)
                .iter()
                .map(|(i, w)| w * scores[*i])
                .sum();
            prop_assert!((recon - value).abs() < 1e-4,
                "{stat:?}: reconstructed {recon} vs {value}");
        }
    }

    /// Featurization has fixed arity regardless of the units, and empty
    /// unit lists produce the all-zero vector.
    #[test]
    fn featurize_fixed_arity(scores in prop::collection::vec(-1.0f32..1.0, 0..10)) {
        let units: Vec<DecisionUnit> = (0..scores.len())
            .map(|i| DecisionUnit::Unpaired { token: TokenRef::new(0, i), side: Side::Right })
            .collect();
        for specs in [full_specs(3), simplified_specs()] {
            let v = featurize(&specs, &units, &scores);
            prop_assert_eq!(v.len(), specs.len());
            if units.is_empty() {
                prop_assert!(v.iter().all(|x| *x == 0.0));
            }
            prop_assert!(v.iter().all(|x| x.is_finite()));
        }
    }

    /// String similarities are symmetric and bounded.
    #[test]
    fn strsim_symmetry_and_bounds(a in "[a-z0-9]{0,12}", b in "[a-z0-9]{0,12}") {
        let jw1 = jaro_winkler(&a, &b);
        let jw2 = jaro_winkler(&b, &a);
        prop_assert!((jw1 - jw2).abs() < 1e-6);
        prop_assert!((0.0..=1.0).contains(&jw1));
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }

    /// The tokenizer never produces empty tokens and is idempotent on its
    /// own output.
    #[test]
    fn tokenizer_idempotent(text in "[a-zA-Z0-9 ,.$/-]{0,60}") {
        let t = Tokenizer::default();
        let once = t.tokenize(&text);
        prop_assert!(once.iter().all(|tok| !tok.is_empty()));
        let again = t.tokenize(&once.join(" "));
        prop_assert_eq!(once, again);
    }
}
