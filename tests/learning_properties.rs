//! Property-based tests over the learning substrates: numeric stability of
//! the neural network under arbitrary data, and structural invariants of
//! the tree learners.

use proptest::prelude::*;
use wym::linalg::{Matrix, Rng64};
use wym::ml::tree::{Tree, TreeParams};
use wym::ml::{ClassifierKind, StandardScaler};
use wym::nn::{Activation, Loss, Mlp, MlpConfig, TrainConfig};

/// Strategy: a small random regression dataset.
fn dataset(max_rows: usize) -> impl Strategy<Value = (Vec<Vec<f32>>, Vec<f32>)> {
    (2..max_rows).prop_flat_map(|n| {
        (
            prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 3), n),
            prop::collection::vec(-1.0f32..1.0, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Training an MLP on arbitrary bounded data never produces NaN or
    /// infinite weights, and predictions stay finite.
    #[test]
    fn mlp_training_is_numerically_stable((rows, targets) in dataset(24)) {
        let x = Matrix::from_row_vecs(rows.clone());
        let y = Matrix::from_vec(targets.len(), 1, targets.clone());
        let mut mlp = Mlp::new(&MlpConfig {
            layer_sizes: vec![3, 8, 1],
            hidden: Activation::Relu,
            output: Activation::Tanh,
            loss: Loss::Mse,
            seed: 1,
        });
        let report = wym::nn::train::fit(
            &mut mlp,
            &x,
            &y,
            &TrainConfig { epochs: 5, batch_size: 8, lr: 1e-2, ..TrainConfig::default() },
        );
        prop_assert!(report.final_loss.is_finite());
        for p in mlp.predict(&x) {
            prop_assert!(p.is_finite());
            prop_assert!((-1.0..=1.0).contains(&p), "tanh output out of range: {p}");
        }
        for layer in mlp.layers() {
            prop_assert!(!layer.w.has_non_finite());
        }
    }

    /// A regression tree's predictions never leave the range of its
    /// training targets.
    #[test]
    fn tree_predictions_bounded_by_targets((rows, targets) in dataset(24)) {
        let x = Matrix::from_row_vecs(rows);
        let idx: Vec<usize> = (0..targets.len()).collect();
        let tree = Tree::fit(&x, &targets, &idx, &TreeParams::default(), &mut Rng64::new(0));
        let lo = targets.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = targets.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for p in tree.predict(&x) {
            prop_assert!(p >= lo - 1e-5 && p <= hi + 1e-5, "{p} outside [{lo}, {hi}]");
        }
    }

    /// Every pool classifier's probabilities are valid on arbitrary data,
    /// even with degenerate (single-class or constant-feature) inputs.
    #[test]
    fn classifier_probabilities_always_valid(
        (rows, raw_targets) in dataset(16),
        all_same in any::<bool>(),
    ) {
        let x = Matrix::from_row_vecs(rows);
        let y: Vec<u8> = raw_targets
            .iter()
            .map(|&t| if all_same { 1 } else { u8::from(t > 0.0) })
            .collect();
        // A cheap, representative subset of the pool (the full pool is
        // covered by unit tests; proptest multiplies the cost by 24 cases).
        for kind in [
            ClassifierKind::LogisticRegression,
            ClassifierKind::NaiveBayes,
            ClassifierKind::DecisionTree,
            ClassifierKind::Knn,
        ] {
            let mut model = kind.build(0);
            model.fit(&x, &y);
            for p in model.predict_proba(&x) {
                prop_assert!(p.is_finite(), "{}: {p}", kind.short_name());
                prop_assert!((0.0..=1.0).contains(&p), "{}: {p}", kind.short_name());
            }
        }
    }

    /// The scaler transform is invertible information-wise: transformed
    /// data has finite values and applying the stored statistics recovers
    /// the original column means.
    #[test]
    fn scaler_is_stable_and_centered((rows, _) in dataset(20)) {
        let x = Matrix::from_row_vecs(rows);
        let (scaler, scaled) = StandardScaler::fit_transform(&x);
        prop_assert!(!scaled.has_non_finite());
        for m in scaled.col_mean() {
            prop_assert!(m.abs() < 1e-3, "column mean {m}");
        }
        // Reconstruct: x = scaled * σ + μ.
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                let recon = scaled[(i, j)] * scaler.scales()[j] + scaler.means()[j];
                prop_assert!((recon - x[(i, j)]).abs() < 1e-3);
            }
        }
    }
}
