//! Fitted-model persistence: a WYM model serialized to JSON and rehydrated
//! must reproduce its predictions and explanations exactly.

use wym::core::pipeline::{SavedWymModel, WymConfig, WymModel};
use wym::data::split::paper_split;
use wym::data::magellan;
use wym::embed::EmbedderKind;
use wym::ml::ClassifierKind;
use wym::nn::TrainConfig;

fn fitted() -> (WymModel, Vec<wym::data::RecordPair>) {
    let dataset = magellan::generate_by_name("S-BR", 21).unwrap().subsample(200, 0);
    let split = paper_split(&dataset, 0);
    let mut cfg = WymConfig::default().with_seed(3);
    cfg.embed_dim = 32;
    cfg.embedder_kind = EmbedderKind::Siamese; // include a trained projection
    cfg.scorer.train =
        TrainConfig { epochs: 6, batch_size: 128, lr: 2e-3, ..TrainConfig::default() };
    cfg.matcher.kinds = ClassifierKind::ALL.to_vec(); // any kind may win
    let model = WymModel::fit(&dataset, &split, cfg);
    let test = split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
    (model, test)
}

#[test]
fn json_roundtrip_reproduces_predictions_and_explanations() {
    let (model, test) = fitted();
    let json = serde_json::to_string(&model.to_saved()).expect("serialize model");
    let saved: SavedWymModel = serde_json::from_str(&json).expect("deserialize model");
    let restored = WymModel::from_saved(saved);

    assert_eq!(model.classifier(), restored.classifier());
    for pair in test.iter().take(20) {
        let a = model.predict(pair);
        let b = restored.predict(pair);
        assert_eq!(a.probability, b.probability, "record {}", pair.id);
        let ea = model.explain(pair);
        let eb = restored.explain(pair);
        assert_eq!(ea.units.len(), eb.units.len());
        for (ua, ub) in ea.units.iter().zip(&eb.units) {
            assert_eq!(ua.impact, ub.impact);
            assert_eq!(ua.relevance, ub.relevance);
        }
    }
}

#[test]
fn saved_model_file_roundtrip() {
    let (model, test) = fitted();
    let path = std::env::temp_dir().join("wym_model_roundtrip.json");
    std::fs::write(&path, serde_json::to_vec(&model.to_saved()).unwrap()).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let restored = WymModel::from_saved(serde_json::from_slice(&bytes).unwrap());
    assert_eq!(
        model.predict(&test[0]).probability,
        restored.predict(&test[0]).probability
    );
    let _ = std::fs::remove_file(&path);
}
