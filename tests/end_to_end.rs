//! Cross-crate integration tests: the full WYM pipeline driven through the
//! umbrella crate's public API, the way a downstream user would.

use wym::core::pipeline::{EmPredictor, WymConfig, WymModel};
use wym::core::scorer::ScorerKind;
use wym::data::split::paper_split;
use wym::data::{magellan, Entity, RecordPair};
use wym::embed::EmbedderKind;
use wym::ml::ClassifierKind;
use wym::nn::TrainConfig;

fn fast_config(seed: u64) -> WymConfig {
    let mut cfg = WymConfig::default().with_seed(seed);
    cfg.embed_dim = 32;
    cfg.embedder_kind = EmbedderKind::Static;
    cfg.scorer.train =
        TrainConfig { epochs: 8, batch_size: 128, lr: 2e-3, ..TrainConfig::default() };
    cfg.matcher.kinds =
        vec![ClassifierKind::LogisticRegression, ClassifierKind::GradientBoosting];
    cfg
}

#[test]
fn full_pipeline_on_three_dataset_families() {
    // Structured, textual and dirty families all flow through the same API.
    for (name, min_f1) in [("S-FZ", 0.8), ("S-IA", 0.6), ("D-IA", 0.5)] {
        let dataset = magellan::generate_by_name(name, 1).unwrap().subsample(250, 0);
        let split = paper_split(&dataset, 0);
        let model = WymModel::fit(&dataset, &split, fast_config(1));
        let test: Vec<RecordPair> =
            split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
        let f1 = model.f1_on(&test);
        assert!(f1 >= min_f1, "{name}: F1 {f1} below {min_f1}");
    }
}

#[test]
fn explanation_is_complete_and_consistent_with_prediction() {
    let dataset = magellan::generate_by_name("S-BR", 2).unwrap().subsample(250, 0);
    let split = paper_split(&dataset, 0);
    let model = WymModel::fit(&dataset, &split, fast_config(2));
    for &i in split.test.iter().take(20) {
        let pair = &dataset.pairs[i];
        let proc = model.process(pair);
        let prediction = model.predict_processed(&proc);
        let ex = model.explain_processed(&proc);
        // One explained unit per decision unit, same prediction.
        assert_eq!(ex.units.len(), proc.units.len());
        assert_eq!(ex.prediction, prediction.label);
        assert!((ex.probability - prediction.probability).abs() < 1e-6);
        // Sorted by |impact|.
        for w in ex.units.windows(2) {
            assert!(w[0].impact.abs() >= w[1].impact.abs());
        }
        // EmPredictor trait agrees with the typed API.
        assert!((model.proba(pair) - prediction.probability).abs() < 1e-6);
    }
}

#[test]
fn every_token_is_covered_by_exactly_one_unit_side() {
    use wym::core::algorithm1::check_constraints;
    let dataset = magellan::generate_by_name("D-WA", 3).unwrap().subsample(150, 0);
    let split = paper_split(&dataset, 0);
    let model = WymModel::fit(&dataset, &split, fast_config(3));
    for &i in split.test.iter().take(30) {
        let proc = model.process(&dataset.pairs[i]);
        check_constraints(&proc.record, &proc.units)
            .unwrap_or_else(|e| panic!("record {i}: {e}"));
    }
}

#[test]
fn relevance_scores_live_in_unit_interval_for_all_scorers() {
    let dataset = magellan::generate_by_name("S-FZ", 4).unwrap().subsample(200, 0);
    let split = paper_split(&dataset, 0);
    for kind in [ScorerKind::Neural, ScorerKind::Binary, ScorerKind::CosineSim] {
        let mut cfg = fast_config(4);
        cfg.scorer.kind = kind;
        let model = WymModel::fit(&dataset, &split, cfg);
        for &i in split.test.iter().take(10) {
            let proc = model.process(&dataset.pairs[i]);
            for &r in &proc.relevances {
                assert!((-1.0..=1.0).contains(&r), "{kind:?}: relevance {r}");
            }
        }
    }
}

#[test]
fn model_handles_degenerate_inputs() {
    let dataset = magellan::generate_by_name("S-FZ", 5).unwrap().subsample(200, 0);
    let split = paper_split(&dataset, 0);
    let model = WymModel::fit(&dataset, &split, fast_config(5));
    // Fully empty record.
    let empty = RecordPair {
        id: 0,
        label: false,
        left: Entity::new(vec!["", "", "", "", ""]),
        right: Entity::new(vec!["", "", "", "", ""]),
    };
    let p = model.predict(&empty);
    assert!(p.probability.is_finite());
    let ex = model.explain(&empty);
    assert!(ex.units.is_empty());
    // One-sided record.
    let one_sided = RecordPair {
        id: 1,
        label: false,
        left: Entity::new(vec!["golden dragon", "12 main st", "boston", "555-123-4567", "thai"]),
        right: Entity::new(vec!["", "", "", "", ""]),
    };
    let ex = model.explain(&one_sided);
    assert!(!ex.units.is_empty());
    assert!(ex.units.iter().all(|u| !u.paired));
}

#[test]
fn seeds_reproduce_models_exactly() {
    let dataset = magellan::generate_by_name("S-BR", 6).unwrap().subsample(200, 0);
    let split = paper_split(&dataset, 0);
    let m1 = WymModel::fit(&dataset, &split, fast_config(9));
    let m2 = WymModel::fit(&dataset, &split, fast_config(9));
    for &i in split.test.iter().take(15) {
        let p1 = m1.predict(&dataset.pairs[i]);
        let p2 = m2.predict(&dataset.pairs[i]);
        assert_eq!(p1.probability, p2.probability, "record {i}");
    }
}

#[test]
fn csv_roundtrip_preserves_model_inputs() {
    let dataset = magellan::generate_by_name("S-IA", 7).unwrap().subsample(100, 0);
    let text = wym::data::csv::to_csv_string(&dataset);
    let back =
        wym::data::csv::from_csv_string(&text, &dataset.name, dataset.dataset_type).unwrap();
    assert_eq!(dataset.pairs, back.pairs);
    assert_eq!(dataset.schema, back.schema);
}

#[test]
fn parallel_processing_matches_serial() {
    let dataset = magellan::generate_by_name("S-FZ", 8).unwrap().subsample(120, 0);
    let split = paper_split(&dataset, 0);
    let model = WymModel::fit(&dataset, &split, fast_config(8));
    let pairs: Vec<RecordPair> = split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
    let serial = model.process_many(&pairs);
    let parallel = model.process_many_parallel(&pairs, 4);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.units, b.units);
        assert_eq!(a.relevances, b.relevances);
    }
}

#[test]
fn unit_rules_adjust_relevances_in_the_pipeline() {
    use wym::core::UnitRule;
    let dataset = magellan::generate_by_name("S-WA", 9).unwrap().subsample(200, 0);
    let split = paper_split(&dataset, 0);
    let mut cfg = fast_config(10);
    cfg.rules = vec![
        UnitRule::EqualCodesAreMatches { score: 1.0 },
        UnitRule::UnpairedCodesAreNonMatches { score: -1.0 },
    ];
    let ruled = WymModel::fit(&dataset, &split, cfg);
    let plain = WymModel::fit(&dataset, &split, fast_config(10));

    // Find a record with an equal-code paired unit and verify the rule
    // pinned its relevance to exactly 1.0 in the ruled model.
    let mut checked = false;
    for &i in split.test.iter() {
        let proc = ruled.process(&dataset.pairs[i]);
        for (u, &r) in proc.units.iter().zip(&proc.relevances) {
            let (l, rtext) = u.texts(&proc.record);
            if u.is_paired() && l == rtext && wym::strsim::looks_like_code(l) {
                assert_eq!(r, 1.0, "rule must pin equal-code relevance");
                checked = true;
            }
        }
        if checked {
            break;
        }
    }
    assert!(checked, "expected at least one equal-code unit in the test split");

    // Both models still work end to end.
    let test: Vec<RecordPair> = split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
    assert!(ruled.f1_on(&test) > 0.5);
    assert!(plain.f1_on(&test) > 0.5);
}
