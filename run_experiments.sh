#!/bin/bash
# Regenerates every table and figure of the paper. Default scale (cap 800)
# keeps the full suite under ~1.5 h on a laptop; pass --full for paper scale.
#
# --smoke: instead of the full suite, run one tiny traced dataset through
# the timing binary twice — once with the dispatched kernels (WYM_KERNEL=auto)
# and once pinned to the scalar reference (WYM_KERNEL=scalar) — and fail if
# (a) any registered pipeline stage recorded zero spans, (b) either run did
# not record a kernel.dispatch.* counter, (c) the two runs' deterministic
# relevance-score checksums differ, which would break the kernel layer's
# bit-identity guarantee (see DESIGN.md §8–9), (d) `cargo clippy --workspace
# -- -D warnings` reports anything, or (e) the obs_diff regression sentinel
# finds either kernel variant's snapshot drifting from its committed
# baseline (results/OBS_baseline_smoke*.json; wall times ignored — only the
# deterministic structure, counters, gauges, and histograms gate; see
# DESIGN.md §10), or (f) the blocking pipeline's candidate-set checksum
# differs between kernel variants or its scalar snapshot drifts from
# results/OBS_baseline_blocking.json (DESIGN.md §11), or (g)
# `RUSTDOCFLAGS="-D warnings" cargo doc --no-deps` reports anything, or
# (h) the model-artifact round trip (train→save→load→classify, DESIGN.md
# §12) is not bit-identical to the in-memory model under either kernel
# variant, or the two kernels serialize different model bytes, or (i) the
# telemetry gate (DESIGN.md §13) fails: `wym classify --audit-log` must
# write byte-identical decision JSONL across WYM_KERNEL=scalar|auto and
# thread counts 1 and 4, the artifact's frozen drift baseline must stay
# quiet ("drift: OK") on in-distribution data and trip ("drift: ALERT")
# on a synthetically shifted stream, `wym obs report` must summarize the
# log, and the traced classify snapshot (windowed metrics + drift gauges)
# must match results/OBS_baseline_decisions.json, or (j) any explicitly
# requestable kernel backend this host supports (per `wym kernels`:
# avx512, neon) produces a different score checksum than the scalar
# reference — unsupported backends are reported as "SKIP (unsupported)",
# never failed — or (k) the criterion benches no longer compile
# (`cargo bench --no-run`), or (l) the flight recorder (DESIGN.md §15)
# fails its post-mortem drill: a run with an injected panic must leave a
# parseable Chrome-trace dump naming the panicking span, a run with an
# injected stall must trip the watchdog's stall warning and dump, and
# `--chrome-trace` plus `wym obs flight` must round-trip a healthy run's
# event tail. The `bench_diff` timing sentinel also runs, in warn mode:
# flagged stages print WARNING lines against their ledger-learned
# per-stage thresholds, but timings are machine-dependent so it never
# fails the smoke.
set -u
cd "$(dirname "$0")"
mkdir -p results

if [ "${1:-}" = "--smoke" ]; then
  shift
  OBS_AUTO=results/OBS_smoke.json
  OBS_SCALAR=results/OBS_smoke_scalar.json
  rm -f "$OBS_AUTO" "$OBS_SCALAR"
  echo "=== smoke: clippy (workspace, -D warnings) ==="
  if ! cargo clippy --workspace -- -D warnings; then
    echo "SMOKE FAILED: clippy warnings" >&2
    exit 1
  fi
  echo "=== smoke: rustdoc (workspace, -D warnings) ==="
  if ! RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q; then
    echo "SMOKE FAILED: rustdoc warnings (RUSTDOCFLAGS=-D warnings cargo doc --no-deps)" >&2
    exit 1
  fi
  echo "=== smoke: benches compile (cargo bench --no-run) ==="
  if ! cargo bench --no-run -q; then
    echo "SMOKE FAILED: criterion benches do not compile (cargo bench --no-run)" >&2
    exit 1
  fi
  # --threads 1 pins the worker count so the exported snapshots (and the
  # committed baselines they diff against) are machine-independent.
  echo "=== smoke: traced tiny run (WYM_KERNEL=auto) ==="
  WYM_KERNEL=auto ./target/release/timing --quick --cap 40 --datasets S-FZ \
    --threads 1 --trace --metrics-out "$OBS_AUTO" "$@" 2>&1 | tee results/smoke.log
  echo "=== smoke: pinned scalar kernels (WYM_KERNEL=scalar) ==="
  WYM_KERNEL=scalar ./target/release/timing --quick --cap 40 --datasets S-FZ \
    --threads 1 --trace --metrics-out "$OBS_SCALAR" "$@" 2>&1 | tee results/smoke_scalar.log
  for f in "$OBS_AUTO" "$OBS_SCALAR"; do
    if [ ! -f "$f" ]; then
      echo "SMOKE FAILED: no metrics snapshot at $f" >&2
      exit 1
    fi
  done
  # The exported "stages" object maps each registered stage to its span
  # count; a `"stage": 0` entry means the stage never ran under tracing.
  DEAD=$(sed -n '/"stages"/,/}/p' "$OBS_AUTO" | grep -E '"[a-z_]+": 0(,|$)' || true)
  if [ -n "$DEAD" ]; then
    echo "SMOKE FAILED: stages with zero recorded spans:" >&2
    echo "$DEAD" >&2
    exit 1
  fi
  # Every run must record which kernel implementation it resolved to.
  for f in "$OBS_AUTO" "$OBS_SCALAR"; do
    HIT=$(grep -E '"kernel\.dispatch\.[a-z0-9_]+": *[1-9]' "$f" || true)
    if [ -z "$HIT" ]; then
      echo "SMOKE FAILED: no nonzero kernel.dispatch.* counter in $f" >&2
      exit 1
    fi
  done
  if ! grep -q '"kernel\.dispatch\.scalar"' "$OBS_SCALAR"; then
    echo "SMOKE FAILED: WYM_KERNEL=scalar run did not dispatch to scalar" >&2
    exit 1
  fi
  # Bit-identity gate: the dispatched and scalar runs must produce the
  # exact same relevance scores, down to the serialized f64 checksum.
  CK_AUTO=$(grep -o '"scorer\.score_checksum": *[-0-9.eE+]*' "$OBS_AUTO" | head -1 | sed 's/.*: *//')
  CK_SCALAR=$(grep -o '"scorer\.score_checksum": *[-0-9.eE+]*' "$OBS_SCALAR" | head -1 | sed 's/.*: *//')
  if [ -z "$CK_AUTO" ] || [ -z "$CK_SCALAR" ]; then
    echo "SMOKE FAILED: scorer.score_checksum gauge missing from a snapshot" >&2
    exit 1
  fi
  if [ "$CK_AUTO" != "$CK_SCALAR" ]; then
    echo "SMOKE FAILED: kernel dispatch changed scores: auto=$CK_AUTO scalar=$CK_SCALAR" >&2
    exit 1
  fi
  # Kernel matrix: every explicitly requestable ISA backend this host
  # supports (per `wym kernels`) must reproduce the scalar score checksum
  # bit-for-bit. Backends the host cannot run (e.g. neon on x86) are
  # skipped, not failed — the dispatch layer's scalar fallback covers them.
  SUPPORTED_KERNELS=$(./target/release/wym kernels 2>/dev/null)
  for K in avx512 neon; do
    if ! echo "$SUPPORTED_KERNELS" | grep -qx "$K"; then
      echo "=== smoke: kernel matrix WYM_KERNEL=$K — SKIP (unsupported) ==="
      continue
    fi
    OBS_K="results/OBS_smoke_${K}.json"
    rm -f "$OBS_K"
    echo "=== smoke: kernel matrix (WYM_KERNEL=$K) ==="
    WYM_KERNEL=$K ./target/release/timing --quick --cap 40 --datasets S-FZ \
      --threads 1 --trace --metrics-out "$OBS_K" "$@" 2>&1 | tee "results/smoke_${K}.log"
    if [ ! -f "$OBS_K" ]; then
      echo "SMOKE FAILED: no metrics snapshot at $OBS_K" >&2
      exit 1
    fi
    if ! grep -q "\"kernel\.dispatch\.${K}\"" "$OBS_K"; then
      echo "SMOKE FAILED: WYM_KERNEL=$K run did not dispatch to $K" >&2
      exit 1
    fi
    CK_K=$(grep -o '"scorer\.score_checksum": *[-0-9.eE+]*' "$OBS_K" | head -1 | sed 's/.*: *//')
    if [ "$CK_K" != "$CK_SCALAR" ]; then
      echo "SMOKE FAILED: WYM_KERNEL=$K changed scores: $K=$CK_K scalar=$CK_SCALAR" >&2
      exit 1
    fi
  done
  # Timing sentinel, warn mode: compare this run's per-stage wall times
  # against the BENCH_history.jsonl ledger, flagging stages over their
  # ledger-learned thresholds with prominent WARNING lines. Never fatal —
  # timings depend on the machine and its load (gate mode exists for
  # boxes stable enough to enforce; see the bench_diff docs).
  echo "=== smoke: bench_diff timing sentinel (warn mode) ==="
  ./target/release/bench_diff --mode warn || echo "SMOKE WARNING: bench_diff could not compare (non-fatal)" >&2
  # Regression sentinel. A snapshot diffed against itself must always pass
  # (sentinel sanity), then both kernel variants diff against their
  # committed baselines. Wall times are machine-dependent, so --ignore-wall;
  # everything else in these snapshots — span structure and counts,
  # counters, gauges (incl. the score checksum), histogram buckets — is
  # deterministic and gates exactly.
  echo "=== smoke: obs_diff regression sentinel ==="
  if ! ./target/release/obs_diff "$OBS_AUTO" "$OBS_AUTO"; then
    echo "SMOKE FAILED: obs_diff self-diff did not pass" >&2
    exit 1
  fi
  for pair in "results/OBS_baseline_smoke.json:$OBS_AUTO" \
              "results/OBS_baseline_smoke_scalar.json:$OBS_SCALAR"; do
    BASE="${pair%%:*}"
    CAND="${pair##*:}"
    if [ ! -f "$BASE" ]; then
      echo "SMOKE WARNING: no committed baseline $BASE; skipping diff" >&2
      continue
    fi
    if ! ./target/release/obs_diff --ignore-wall "$BASE" "$CAND"; then
      echo "SMOKE FAILED: $CAND regressed against $BASE" >&2
      exit 1
    fi
  done
  # Blocking gate: the candidate-generation pipeline (wym-block) runs its
  # own tiny table under both kernel variants. The `block.checksum` counter
  # is an FNV-1a over the final candidate pair set, so equal checksums mean
  # the candidate sets are bit-identical — the DESIGN.md §11 guarantee.
  # The scalar snapshot (kernel-independent by that same guarantee, and
  # with a machine-independent kernel.dispatch.scalar counter) then diffs
  # against its committed baseline.
  BLOCK_AUTO=results/OBS_blocking_smoke.json
  BLOCK_SCALAR=results/OBS_blocking_smoke_scalar.json
  rm -f "$BLOCK_AUTO" "$BLOCK_SCALAR"
  echo "=== smoke: blocking at scale (WYM_KERNEL=auto) ==="
  WYM_KERNEL=auto ./target/release/blocking_scale --smoke --threads 1 \
    --metrics-out "$BLOCK_AUTO" 2>&1 | tee results/smoke_blocking.log
  echo "=== smoke: blocking at scale (WYM_KERNEL=scalar) ==="
  WYM_KERNEL=scalar ./target/release/blocking_scale --smoke --threads 1 \
    --metrics-out "$BLOCK_SCALAR" 2>&1 | tee results/smoke_blocking_scalar.log
  for f in "$BLOCK_AUTO" "$BLOCK_SCALAR"; do
    if [ ! -f "$f" ]; then
      echo "SMOKE FAILED: no blocking metrics snapshot at $f" >&2
      exit 1
    fi
  done
  BCK_AUTO=$(grep -o '"block\.checksum": *[0-9]*' "$BLOCK_AUTO" | head -1 | sed 's/.*: *//')
  BCK_SCALAR=$(grep -o '"block\.checksum": *[0-9]*' "$BLOCK_SCALAR" | head -1 | sed 's/.*: *//')
  if [ -z "$BCK_AUTO" ] || [ -z "$BCK_SCALAR" ]; then
    echo "SMOKE FAILED: block.checksum counter missing from a blocking snapshot" >&2
    exit 1
  fi
  if [ "$BCK_AUTO" != "$BCK_SCALAR" ]; then
    echo "SMOKE FAILED: kernel dispatch changed the candidate set: auto=$BCK_AUTO scalar=$BCK_SCALAR" >&2
    exit 1
  fi
  if [ -f results/OBS_baseline_blocking.json ]; then
    if ! ./target/release/obs_diff --ignore-wall results/OBS_baseline_blocking.json "$BLOCK_SCALAR"; then
      echo "SMOKE FAILED: $BLOCK_SCALAR regressed against results/OBS_baseline_blocking.json" >&2
      exit 1
    fi
  else
    echo "SMOKE WARNING: no committed baseline results/OBS_baseline_blocking.json; skipping diff" >&2
  fi
  # Artifact gate (DESIGN.md §12): the round-trip binary trains a tiny
  # model, saves it, reloads it under both LoadMode::Read and ::Mmap, and
  # exits nonzero unless verdicts, impact scores, and score_checksum are
  # bit-identical to the in-memory model. Run once per kernel variant, then
  # compare the printed "artifact model fnv" — a fold of every section
  # checksum except the provenance manifest — so both kernels must also
  # have serialized the exact same model bytes. --threads is pinned because
  # the saved head embeds the config's n_threads knob (see the binary's
  # docs); thread-count invariance of the *outputs* is covered by the
  # round trip itself at whatever thread count the run uses.
  rm -f results/BENCH_artifact.json
  echo "=== smoke: artifact round trip (WYM_KERNEL=auto) ==="
  WYM_KERNEL=auto ./target/release/artifact_roundtrip --quick --cap 40 \
    --datasets S-FZ --threads 1 2>&1 | tee results/smoke_artifact.log
  if [ "${PIPESTATUS[0]}" -ne 0 ]; then
    echo "SMOKE FAILED: artifact round trip diverged under WYM_KERNEL=auto" >&2
    exit 1
  fi
  echo "=== smoke: artifact round trip (WYM_KERNEL=scalar) ==="
  WYM_KERNEL=scalar ./target/release/artifact_roundtrip --quick --cap 40 \
    --datasets S-FZ --threads 1 2>&1 | tee results/smoke_artifact_scalar.log
  if [ "${PIPESTATUS[0]}" -ne 0 ]; then
    echo "SMOKE FAILED: artifact round trip diverged under WYM_KERNEL=scalar" >&2
    exit 1
  fi
  AFNV_AUTO=$(grep -o 'artifact model fnv: [0-9a-f]*' results/smoke_artifact.log | head -1 | sed 's/.*: //')
  AFNV_SCALAR=$(grep -o 'artifact model fnv: [0-9a-f]*' results/smoke_artifact_scalar.log | head -1 | sed 's/.*: //')
  if [ -z "$AFNV_AUTO" ] || [ -z "$AFNV_SCALAR" ]; then
    echo "SMOKE FAILED: artifact model fnv missing from a round-trip log" >&2
    exit 1
  fi
  if [ "$AFNV_AUTO" != "$AFNV_SCALAR" ]; then
    echo "SMOKE FAILED: kernel dispatch changed the saved model: auto=$AFNV_AUTO scalar=$AFNV_SCALAR" >&2
    exit 1
  fi
  if [ ! -f results/BENCH_artifact.json ]; then
    echo "SMOKE FAILED: artifact round trip wrote no results/BENCH_artifact.json" >&2
    exit 1
  fi
  # Telemetry gate (DESIGN.md §13). Train a tiny model through the CLI —
  # which freezes a drift-baseline sketch of the training stream into the
  # artifact — then serve the same stream back through `classify` under
  # three (kernel, threads) variants. The decision audit log is the gate:
  # its JSONL must be byte-identical across all three (sequence numbers are
  # pinned to input order, so worker interleaving cannot leak in). The
  # drift sentinel must stay quiet on the in-distribution stream and trip
  # on a shifted one, and `wym obs report` must read the log back.
  SMOKE_DATA=results/smoke_pairs.csv
  SMOKE_SHIFTED=results/smoke_pairs_shifted.csv
  SMOKE_MODEL=results/model_smoke_cli.wyma
  OBS_DECISIONS=results/OBS_smoke_decisions.json
  echo "=== smoke: telemetry — generate data + train (freezes drift baseline) ==="
  if ! ./target/release/wym generate --dataset S-FZ --out "$SMOKE_DATA" --cap 200 --seed 42; then
    echo "SMOKE FAILED: wym generate" >&2
    exit 1
  fi
  if ! ./target/release/wym generate --dataset S-FZ --out "$SMOKE_SHIFTED" --cap 200 --seed 42 --shift; then
    echo "SMOKE FAILED: wym generate --shift" >&2
    exit 1
  fi
  rm -f "$SMOKE_MODEL"
  ./target/release/wym train --data "$SMOKE_DATA" --save-model "$SMOKE_MODEL" --epochs 4 \
    2>&1 | tee results/smoke_train.log
  if [ "${PIPESTATUS[0]}" -ne 0 ]; then
    echo "SMOKE FAILED: wym train --save-model" >&2
    exit 1
  fi
  AUDIT_REF=""
  AUDIT_REF_CK=""
  for variant in scalar:1 auto:1 auto:4; do
    K="${variant%%:*}"
    T="${variant##*:}"
    AUDIT="results/smoke_audit_${K}_t${T}.jsonl"
    # The sink appends by design (it is a service log); the gate wants
    # exactly this run's decisions, so start from an empty file.
    rm -f "$AUDIT"
    echo "=== smoke: classify --audit-log (WYM_KERNEL=$K, --threads $T) ==="
    WYM_KERNEL=$K ./target/release/wym classify --load-model "$SMOKE_MODEL" \
      --data "$SMOKE_DATA" --threads "$T" --audit-log "$AUDIT" \
      > "results/smoke_classify_${K}_t${T}.out" 2> "results/smoke_classify_${K}_t${T}.log"
    if [ $? -ne 0 ] || [ ! -f "$AUDIT" ]; then
      echo "SMOKE FAILED: classify (kernel=$K threads=$T) wrote no audit log" >&2
      cat "results/smoke_classify_${K}_t${T}.log" >&2
      exit 1
    fi
    CK=$(cksum "$AUDIT" | awk '{print $1 ":" $2}')
    if [ -z "$AUDIT_REF_CK" ]; then
      AUDIT_REF="$AUDIT"
      AUDIT_REF_CK="$CK"
    elif [ "$CK" != "$AUDIT_REF_CK" ]; then
      echo "SMOKE FAILED: audit log not byte-identical: $AUDIT ($CK) vs $AUDIT_REF ($AUDIT_REF_CK)" >&2
      exit 1
    fi
    if ! grep -q "drift: OK" "results/smoke_classify_${K}_t${T}.log"; then
      echo "SMOKE FAILED: drift sentinel not quiet on in-distribution stream (kernel=$K threads=$T):" >&2
      grep "drift:" "results/smoke_classify_${K}_t${T}.log" >&2
      exit 1
    fi
  done
  echo "=== smoke: drift sentinel on a shifted stream ==="
  ./target/release/wym classify --load-model "$SMOKE_MODEL" --data "$SMOKE_SHIFTED" \
    --threads 1 > /dev/null 2> results/smoke_classify_shifted.log
  if ! grep -q "drift: ALERT" results/smoke_classify_shifted.log; then
    echo "SMOKE FAILED: shifted stream did not trip the drift sentinel:" >&2
    grep "drift:" results/smoke_classify_shifted.log >&2
    exit 1
  fi
  echo "=== smoke: wym obs report ==="
  ./target/release/wym obs report --audit "$AUDIT_REF" | tee results/smoke_obs_report.log
  if [ "${PIPESTATUS[0]}" -ne 0 ]; then
    echo "SMOKE FAILED: wym obs report could not read $AUDIT_REF" >&2
    exit 1
  fi
  if ! grep -q "decisions" results/smoke_obs_report.log; then
    echo "SMOKE FAILED: wym obs report printed no decision summary" >&2
    exit 1
  fi
  # Traced classify snapshot — windowed metrics and drift gauges included —
  # against its committed baseline. --threads 1 for machine independence,
  # --ignore-wall as everywhere; obs.drift.* PSI gauges compare under the
  # sentinel's own tight relative tolerance (obs_diff --drift-rel, default
  # 1e-6).
  echo "=== smoke: obs_diff on the decision-telemetry snapshot ==="
  rm -f "$OBS_DECISIONS"
  ./target/release/wym classify --load-model "$SMOKE_MODEL" --data "$SMOKE_DATA" \
    --threads 1 --trace --metrics-out "$OBS_DECISIONS" \
    > /dev/null 2> results/smoke_classify_traced.log
  if [ ! -f "$OBS_DECISIONS" ]; then
    echo "SMOKE FAILED: traced classify wrote no $OBS_DECISIONS" >&2
    exit 1
  fi
  if ! ./target/release/obs_diff "$OBS_DECISIONS" "$OBS_DECISIONS"; then
    echo "SMOKE FAILED: obs_diff self-diff did not pass on $OBS_DECISIONS" >&2
    exit 1
  fi
  if [ -f results/OBS_baseline_decisions.json ]; then
    if ! ./target/release/obs_diff --ignore-wall results/OBS_baseline_decisions.json "$OBS_DECISIONS"; then
      echo "SMOKE FAILED: $OBS_DECISIONS regressed against results/OBS_baseline_decisions.json" >&2
      exit 1
    fi
  else
    echo "SMOKE WARNING: no committed baseline results/OBS_baseline_decisions.json; skipping diff" >&2
  fi
  # Flight-recorder gate (DESIGN.md §15). Three drills: (1) a run with an
  # injected panic in score_train must die nonzero AND leave a post-mortem
  # dump pair whose Chrome trace parses via `wym obs flight` and names the
  # panicking span; (2) a run with an injected stall must trip the
  # watchdog's stall warning, dump, and still finish cleanly; (3) a
  # healthy run must export its full event tail with --chrome-trace.
  # Injected runs never append to the BENCH history ledger (the harness
  # checks the injection latch), so these drills cannot pollute the
  # thresholds bench_diff learns from.
  FLIGHT_PANIC=results/FLIGHT_timing_panic.trace.json
  FLIGHT_STALL=results/FLIGHT_timing_stall.trace.json
  FLIGHT_EXPORT=results/smoke_flight.trace.json
  rm -f "$FLIGHT_PANIC" results/FLIGHT_timing_panic.txt \
        "$FLIGHT_STALL" results/FLIGHT_timing_stall.txt "$FLIGHT_EXPORT"
  echo "=== smoke: flight recorder — injected panic in score_train ==="
  WYM_STALL_MS=0 ./target/release/timing --quick --cap 40 --datasets S-FZ \
    --threads 1 --inject-panic score_train 2>&1 | tee results/smoke_flight_panic.log
  if [ "${PIPESTATUS[0]}" -eq 0 ]; then
    echo "SMOKE FAILED: injected-panic run exited zero" >&2
    exit 1
  fi
  if [ ! -f "$FLIGHT_PANIC" ]; then
    echo "SMOKE FAILED: injected panic left no dump at $FLIGHT_PANIC" >&2
    exit 1
  fi
  ./target/release/wym obs flight "$FLIGHT_PANIC" | tee results/smoke_flight_panic_summary.log
  if [ "${PIPESTATUS[0]}" -ne 0 ]; then
    echo "SMOKE FAILED: wym obs flight could not summarize $FLIGHT_PANIC" >&2
    exit 1
  fi
  if ! grep -q "score_train" results/smoke_flight_panic_summary.log; then
    echo "SMOKE FAILED: panic dump summary does not name the panicking span score_train" >&2
    exit 1
  fi
  echo "=== smoke: flight recorder — injected stall in score_train ==="
  WYM_STALL_MS=500 ./target/release/timing --quick --cap 40 --datasets S-FZ \
    --threads 1 --inject-stall score_train,2000 2>&1 | tee results/smoke_flight_stall.log
  if [ "${PIPESTATUS[0]}" -ne 0 ]; then
    echo "SMOKE FAILED: injected-stall run did not finish cleanly" >&2
    exit 1
  fi
  if ! grep -q "stall watchdog" results/smoke_flight_stall.log; then
    echo "SMOKE FAILED: watchdog printed no stall warning for the injected stall" >&2
    exit 1
  fi
  if [ ! -f "$FLIGHT_STALL" ]; then
    echo "SMOKE FAILED: stall watchdog left no dump at $FLIGHT_STALL" >&2
    exit 1
  fi
  ./target/release/wym obs flight "$FLIGHT_STALL" | tee results/smoke_flight_stall_summary.log
  if [ "${PIPESTATUS[0]}" -ne 0 ] || \
     ! grep -q "score_train" results/smoke_flight_stall_summary.log; then
    echo "SMOKE FAILED: stall dump does not summarize or misses score_train" >&2
    exit 1
  fi
  echo "=== smoke: flight recorder — full-run --chrome-trace export ==="
  ./target/release/wym classify --load-model "$SMOKE_MODEL" --data "$SMOKE_DATA" \
    --threads 1 --chrome-trace "$FLIGHT_EXPORT" > /dev/null 2> results/smoke_flight_export.log
  if [ ! -f "$FLIGHT_EXPORT" ]; then
    echo "SMOKE FAILED: --chrome-trace wrote no $FLIGHT_EXPORT" >&2
    cat results/smoke_flight_export.log >&2
    exit 1
  fi
  ./target/release/wym obs flight "$FLIGHT_EXPORT" | tee results/smoke_flight_export_summary.log
  if [ "${PIPESTATUS[0]}" -ne 0 ] || \
     ! grep -q "score" results/smoke_flight_export_summary.log; then
    echo "SMOKE FAILED: --chrome-trace export does not summarize or holds no scoring spans" >&2
    exit 1
  fi
  DISPATCHED=$(grep -oE '"kernel\.dispatch\.[a-z0-9_]+"' "$OBS_AUTO" | head -1)
  echo "SMOKE OK: all stages traced, $DISPATCHED == scalar checksum $CK_AUTO, blocking checksum $BCK_AUTO, artifact fnv $AFNV_AUTO, audit cksum $AUDIT_REF_CK, obs_diff clean ($OBS_AUTO, $OBS_SCALAR, $BLOCK_SCALAR, $OBS_DECISIONS), flight drills clean (panic, stall, chrome export)"
  exit 0
fi

ARGS="${@:-}"
for exp in table2 figure4 table3 table5 figure6 figure8 figure9 timing user_study_proxy threshold_sweep hybrid_units error_analysis table4 figure5 figure7; do
  echo "=== $exp ==="
  ./target/release/$exp $ARGS 2>&1 | tee results/$exp.log
done
echo "ALL EXPERIMENTS DONE"
