#!/bin/bash
# Regenerates every table and figure of the paper. Default scale (cap 800)
# keeps the full suite under ~1.5 h on a laptop; pass --full for paper scale.
set -u
cd "$(dirname "$0")"
ARGS="${@:-}"
mkdir -p results
for exp in table2 figure4 table3 table5 figure6 figure8 figure9 timing user_study_proxy threshold_sweep hybrid_units error_analysis table4 figure5 figure7; do
  echo "=== $exp ==="
  ./target/release/$exp $ARGS 2>&1 | tee results/$exp.log
done
echo "ALL EXPERIMENTS DONE"
