#!/bin/bash
# Regenerates every table and figure of the paper. Default scale (cap 800)
# keeps the full suite under ~1.5 h on a laptop; pass --full for paper scale.
#
# --smoke: instead of the full suite, run one tiny traced dataset through
# the timing binary twice — once with the dispatched kernels (WYM_KERNEL=auto)
# and once pinned to the scalar reference (WYM_KERNEL=scalar) — and fail if
# (a) any registered pipeline stage recorded zero spans, (b) either run did
# not record a kernel.dispatch.* counter, (c) the two runs' deterministic
# relevance-score checksums differ, which would break the kernel layer's
# bit-identity guarantee (see DESIGN.md §8–9), (d) `cargo clippy --workspace
# -- -D warnings` reports anything, or (e) the obs_diff regression sentinel
# finds either kernel variant's snapshot drifting from its committed
# baseline (results/OBS_baseline_smoke*.json; wall times ignored — only the
# deterministic structure, counters, gauges, and histograms gate; see
# DESIGN.md §10), or (f) the blocking pipeline's candidate-set checksum
# differs between kernel variants or its scalar snapshot drifts from
# results/OBS_baseline_blocking.json (DESIGN.md §11), or (g)
# `RUSTDOCFLAGS="-D warnings" cargo doc --no-deps` reports anything, or
# (h) the model-artifact round trip (train→save→load→classify, DESIGN.md
# §12) is not bit-identical to the in-memory model under either kernel
# variant, or the two kernels serialize different model bytes.
set -u
cd "$(dirname "$0")"
mkdir -p results

if [ "${1:-}" = "--smoke" ]; then
  shift
  OBS_AUTO=results/OBS_smoke.json
  OBS_SCALAR=results/OBS_smoke_scalar.json
  rm -f "$OBS_AUTO" "$OBS_SCALAR"
  echo "=== smoke: clippy (workspace, -D warnings) ==="
  if ! cargo clippy --workspace -- -D warnings; then
    echo "SMOKE FAILED: clippy warnings" >&2
    exit 1
  fi
  echo "=== smoke: rustdoc (workspace, -D warnings) ==="
  if ! RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q; then
    echo "SMOKE FAILED: rustdoc warnings (RUSTDOCFLAGS=-D warnings cargo doc --no-deps)" >&2
    exit 1
  fi
  # --threads 1 pins the worker count so the exported snapshots (and the
  # committed baselines they diff against) are machine-independent.
  echo "=== smoke: traced tiny run (WYM_KERNEL=auto) ==="
  WYM_KERNEL=auto ./target/release/timing --quick --cap 40 --datasets S-FZ \
    --threads 1 --trace --metrics-out "$OBS_AUTO" "$@" 2>&1 | tee results/smoke.log
  echo "=== smoke: pinned scalar kernels (WYM_KERNEL=scalar) ==="
  WYM_KERNEL=scalar ./target/release/timing --quick --cap 40 --datasets S-FZ \
    --threads 1 --trace --metrics-out "$OBS_SCALAR" "$@" 2>&1 | tee results/smoke_scalar.log
  for f in "$OBS_AUTO" "$OBS_SCALAR"; do
    if [ ! -f "$f" ]; then
      echo "SMOKE FAILED: no metrics snapshot at $f" >&2
      exit 1
    fi
  done
  # The exported "stages" object maps each registered stage to its span
  # count; a `"stage": 0` entry means the stage never ran under tracing.
  DEAD=$(sed -n '/"stages"/,/}/p' "$OBS_AUTO" | grep -E '"[a-z_]+": 0(,|$)' || true)
  if [ -n "$DEAD" ]; then
    echo "SMOKE FAILED: stages with zero recorded spans:" >&2
    echo "$DEAD" >&2
    exit 1
  fi
  # Every run must record which kernel implementation it resolved to.
  for f in "$OBS_AUTO" "$OBS_SCALAR"; do
    HIT=$(grep -E '"kernel\.dispatch\.[a-z0-9_]+": *[1-9]' "$f" || true)
    if [ -z "$HIT" ]; then
      echo "SMOKE FAILED: no nonzero kernel.dispatch.* counter in $f" >&2
      exit 1
    fi
  done
  if ! grep -q '"kernel\.dispatch\.scalar"' "$OBS_SCALAR"; then
    echo "SMOKE FAILED: WYM_KERNEL=scalar run did not dispatch to scalar" >&2
    exit 1
  fi
  # Bit-identity gate: the dispatched and scalar runs must produce the
  # exact same relevance scores, down to the serialized f64 checksum.
  CK_AUTO=$(grep -o '"scorer\.score_checksum": *[-0-9.eE+]*' "$OBS_AUTO" | head -1 | sed 's/.*: *//')
  CK_SCALAR=$(grep -o '"scorer\.score_checksum": *[-0-9.eE+]*' "$OBS_SCALAR" | head -1 | sed 's/.*: *//')
  if [ -z "$CK_AUTO" ] || [ -z "$CK_SCALAR" ]; then
    echo "SMOKE FAILED: scorer.score_checksum gauge missing from a snapshot" >&2
    exit 1
  fi
  if [ "$CK_AUTO" != "$CK_SCALAR" ]; then
    echo "SMOKE FAILED: kernel dispatch changed scores: auto=$CK_AUTO scalar=$CK_SCALAR" >&2
    exit 1
  fi
  # Regression sentinel. A snapshot diffed against itself must always pass
  # (sentinel sanity), then both kernel variants diff against their
  # committed baselines. Wall times are machine-dependent, so --ignore-wall;
  # everything else in these snapshots — span structure and counts,
  # counters, gauges (incl. the score checksum), histogram buckets — is
  # deterministic and gates exactly.
  echo "=== smoke: obs_diff regression sentinel ==="
  if ! ./target/release/obs_diff "$OBS_AUTO" "$OBS_AUTO"; then
    echo "SMOKE FAILED: obs_diff self-diff did not pass" >&2
    exit 1
  fi
  for pair in "results/OBS_baseline_smoke.json:$OBS_AUTO" \
              "results/OBS_baseline_smoke_scalar.json:$OBS_SCALAR"; do
    BASE="${pair%%:*}"
    CAND="${pair##*:}"
    if [ ! -f "$BASE" ]; then
      echo "SMOKE WARNING: no committed baseline $BASE; skipping diff" >&2
      continue
    fi
    if ! ./target/release/obs_diff --ignore-wall "$BASE" "$CAND"; then
      echo "SMOKE FAILED: $CAND regressed against $BASE" >&2
      exit 1
    fi
  done
  # Blocking gate: the candidate-generation pipeline (wym-block) runs its
  # own tiny table under both kernel variants. The `block.checksum` counter
  # is an FNV-1a over the final candidate pair set, so equal checksums mean
  # the candidate sets are bit-identical — the DESIGN.md §11 guarantee.
  # The scalar snapshot (kernel-independent by that same guarantee, and
  # with a machine-independent kernel.dispatch.scalar counter) then diffs
  # against its committed baseline.
  BLOCK_AUTO=results/OBS_blocking_smoke.json
  BLOCK_SCALAR=results/OBS_blocking_smoke_scalar.json
  rm -f "$BLOCK_AUTO" "$BLOCK_SCALAR"
  echo "=== smoke: blocking at scale (WYM_KERNEL=auto) ==="
  WYM_KERNEL=auto ./target/release/blocking_scale --smoke --threads 1 \
    --metrics-out "$BLOCK_AUTO" 2>&1 | tee results/smoke_blocking.log
  echo "=== smoke: blocking at scale (WYM_KERNEL=scalar) ==="
  WYM_KERNEL=scalar ./target/release/blocking_scale --smoke --threads 1 \
    --metrics-out "$BLOCK_SCALAR" 2>&1 | tee results/smoke_blocking_scalar.log
  for f in "$BLOCK_AUTO" "$BLOCK_SCALAR"; do
    if [ ! -f "$f" ]; then
      echo "SMOKE FAILED: no blocking metrics snapshot at $f" >&2
      exit 1
    fi
  done
  BCK_AUTO=$(grep -o '"block\.checksum": *[0-9]*' "$BLOCK_AUTO" | head -1 | sed 's/.*: *//')
  BCK_SCALAR=$(grep -o '"block\.checksum": *[0-9]*' "$BLOCK_SCALAR" | head -1 | sed 's/.*: *//')
  if [ -z "$BCK_AUTO" ] || [ -z "$BCK_SCALAR" ]; then
    echo "SMOKE FAILED: block.checksum counter missing from a blocking snapshot" >&2
    exit 1
  fi
  if [ "$BCK_AUTO" != "$BCK_SCALAR" ]; then
    echo "SMOKE FAILED: kernel dispatch changed the candidate set: auto=$BCK_AUTO scalar=$BCK_SCALAR" >&2
    exit 1
  fi
  if [ -f results/OBS_baseline_blocking.json ]; then
    if ! ./target/release/obs_diff --ignore-wall results/OBS_baseline_blocking.json "$BLOCK_SCALAR"; then
      echo "SMOKE FAILED: $BLOCK_SCALAR regressed against results/OBS_baseline_blocking.json" >&2
      exit 1
    fi
  else
    echo "SMOKE WARNING: no committed baseline results/OBS_baseline_blocking.json; skipping diff" >&2
  fi
  # Artifact gate (DESIGN.md §12): the round-trip binary trains a tiny
  # model, saves it, reloads it under both LoadMode::Read and ::Mmap, and
  # exits nonzero unless verdicts, impact scores, and score_checksum are
  # bit-identical to the in-memory model. Run once per kernel variant, then
  # compare the printed "artifact model fnv" — a fold of every section
  # checksum except the provenance manifest — so both kernels must also
  # have serialized the exact same model bytes. --threads is pinned because
  # the saved head embeds the config's n_threads knob (see the binary's
  # docs); thread-count invariance of the *outputs* is covered by the
  # round trip itself at whatever thread count the run uses.
  rm -f results/BENCH_artifact.json
  echo "=== smoke: artifact round trip (WYM_KERNEL=auto) ==="
  WYM_KERNEL=auto ./target/release/artifact_roundtrip --quick --cap 40 \
    --datasets S-FZ --threads 1 2>&1 | tee results/smoke_artifact.log
  if [ "${PIPESTATUS[0]}" -ne 0 ]; then
    echo "SMOKE FAILED: artifact round trip diverged under WYM_KERNEL=auto" >&2
    exit 1
  fi
  echo "=== smoke: artifact round trip (WYM_KERNEL=scalar) ==="
  WYM_KERNEL=scalar ./target/release/artifact_roundtrip --quick --cap 40 \
    --datasets S-FZ --threads 1 2>&1 | tee results/smoke_artifact_scalar.log
  if [ "${PIPESTATUS[0]}" -ne 0 ]; then
    echo "SMOKE FAILED: artifact round trip diverged under WYM_KERNEL=scalar" >&2
    exit 1
  fi
  AFNV_AUTO=$(grep -o 'artifact model fnv: [0-9a-f]*' results/smoke_artifact.log | head -1 | sed 's/.*: //')
  AFNV_SCALAR=$(grep -o 'artifact model fnv: [0-9a-f]*' results/smoke_artifact_scalar.log | head -1 | sed 's/.*: //')
  if [ -z "$AFNV_AUTO" ] || [ -z "$AFNV_SCALAR" ]; then
    echo "SMOKE FAILED: artifact model fnv missing from a round-trip log" >&2
    exit 1
  fi
  if [ "$AFNV_AUTO" != "$AFNV_SCALAR" ]; then
    echo "SMOKE FAILED: kernel dispatch changed the saved model: auto=$AFNV_AUTO scalar=$AFNV_SCALAR" >&2
    exit 1
  fi
  if [ ! -f results/BENCH_artifact.json ]; then
    echo "SMOKE FAILED: artifact round trip wrote no results/BENCH_artifact.json" >&2
    exit 1
  fi
  DISPATCHED=$(grep -oE '"kernel\.dispatch\.[a-z0-9_]+"' "$OBS_AUTO" | head -1)
  echo "SMOKE OK: all stages traced, $DISPATCHED == scalar checksum $CK_AUTO, blocking checksum $BCK_AUTO, artifact fnv $AFNV_AUTO, obs_diff clean ($OBS_AUTO, $OBS_SCALAR, $BLOCK_SCALAR)"
  exit 0
fi

ARGS="${@:-}"
for exp in table2 figure4 table3 table5 figure6 figure8 figure9 timing user_study_proxy threshold_sweep hybrid_units error_analysis table4 figure5 figure7; do
  echo "=== $exp ==="
  ./target/release/$exp $ARGS 2>&1 | tee results/$exp.log
done
echo "ALL EXPERIMENTS DONE"
