#!/bin/bash
# Regenerates every table and figure of the paper. Default scale (cap 800)
# keeps the full suite under ~1.5 h on a laptop; pass --full for paper scale.
#
# --smoke: instead of the full suite, run one tiny traced dataset through
# the timing binary and fail if any registered pipeline stage recorded zero
# spans — a fast end-to-end check that the instrumentation covers every
# stage (wired into CI-style gating; see DESIGN.md §8).
set -u
cd "$(dirname "$0")"
mkdir -p results

if [ "${1:-}" = "--smoke" ]; then
  shift
  OBS_JSON=results/OBS_smoke.json
  rm -f "$OBS_JSON"
  echo "=== smoke: traced tiny run ==="
  ./target/release/timing --quick --cap 40 --datasets S-FZ \
    --trace --metrics-out "$OBS_JSON" "$@" 2>&1 | tee results/smoke.log
  if [ ! -f "$OBS_JSON" ]; then
    echo "SMOKE FAILED: no metrics snapshot at $OBS_JSON" >&2
    exit 1
  fi
  # The exported "stages" object maps each registered stage to its span
  # count; a `"stage": 0` entry means the stage never ran under tracing.
  DEAD=$(sed -n '/"stages"/,/}/p' "$OBS_JSON" | grep -E '"[a-z_]+": 0(,|$)' || true)
  if [ -n "$DEAD" ]; then
    echo "SMOKE FAILED: stages with zero recorded spans:" >&2
    echo "$DEAD" >&2
    exit 1
  fi
  echo "SMOKE OK: all registered stages recorded spans ($OBS_JSON)"
  exit 0
fi

ARGS="${@:-}"
for exp in table2 figure4 table3 table5 figure6 figure8 figure9 timing user_study_proxy threshold_sweep hybrid_units error_analysis table4 figure5 figure7; do
  echo "=== $exp ==="
  ./target/release/$exp $ARGS 2>&1 | tee results/$exp.log
done
echo "ALL EXPERIMENTS DONE"
