//! Interop with the DITTO serialization format.
//!
//! The DITTO reference implementation (and several EM benchmark dumps)
//! stores record pairs as TSV lines:
//!
//! ```text
//! COL title VAL sony camera COL price VAL 37.63 \t COL title VAL sony cam COL price VAL 36 \t 1
//! ```
//!
//! Supporting this format lets WYM run directly on existing benchmark
//! files, which is how a practitioner would compare against published
//! numbers.

use crate::model::{DatasetType, EmDataset, Entity, RecordPair, Schema};

/// Errors while parsing DITTO-format text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DittoParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DittoParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DittoParseError {}

/// Parses one `COL a VAL x COL b VAL y` entity serialization into
/// `(attributes, values)` pairs, in order of appearance.
fn parse_entity(s: &str) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = Vec::new();
    let tokens: Vec<&str> = s.split_whitespace().collect();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i] == "COL" && i + 1 < tokens.len() {
            let attr = tokens[i + 1].to_string();
            i += 2;
            // Expect VAL; tolerate a missing one by treating the rest as value.
            if tokens.get(i) == Some(&"VAL") {
                i += 1;
            }
            let mut value = Vec::new();
            while i < tokens.len() && tokens[i] != "COL" {
                value.push(tokens[i]);
                i += 1;
            }
            out.push((attr, value.join(" ")));
        } else {
            i += 1;
        }
    }
    out
}

/// Parses DITTO-format text into a dataset.
///
/// The schema is the union of attribute names in order of first
/// appearance; entities missing an attribute get an empty value.
pub fn from_ditto_string(
    text: &str,
    name: &str,
    dataset_type: DatasetType,
) -> Result<EmDataset, DittoParseError> {
    // One entity as parsed from the line: (attribute, value) in order.
    type RawEntity = Vec<(String, String)>;
    let mut attributes: Vec<String> = Vec::new();
    let mut raw: Vec<(RawEntity, RawEntity, bool)> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split('\t').collect();
        if parts.len() != 3 {
            return Err(DittoParseError {
                line: ln + 1,
                message: format!("expected 3 tab-separated fields, got {}", parts.len()),
            });
        }
        let label = match parts[2].trim() {
            "1" => true,
            "0" => false,
            other => {
                return Err(DittoParseError {
                    line: ln + 1,
                    message: format!("label must be 0 or 1, got {other:?}"),
                })
            }
        };
        let left = parse_entity(parts[0]);
        let right = parse_entity(parts[1]);
        if left.is_empty() && right.is_empty() {
            return Err(DittoParseError {
                line: ln + 1,
                message: "no COL/VAL structure found".to_string(),
            });
        }
        for (attr, _) in left.iter().chain(&right) {
            if !attributes.contains(attr) {
                attributes.push(attr.clone());
            }
        }
        raw.push((left, right, label));
    }

    let align = |kv: &[(String, String)]| -> Entity {
        Entity {
            values: attributes
                .iter()
                .map(|a| {
                    kv.iter()
                        .find(|(k, _)| k == a)
                        .map(|(_, v)| v.clone())
                        .unwrap_or_default()
                })
                .collect(),
        }
    };
    let pairs = raw
        .into_iter()
        .enumerate()
        .map(|(id, (l, r, label))| RecordPair {
            id: id as u32,
            label,
            left: align(&l),
            right: align(&r),
        })
        .collect();
    Ok(EmDataset {
        name: name.to_string(),
        dataset_type,
        schema: Schema { attributes },
        pairs,
    })
}

/// Serializes a dataset to DITTO-format text.
pub fn to_ditto_string(dataset: &EmDataset) -> String {
    let mut out = String::new();
    let serialize = |entity: &Entity| -> String {
        dataset
            .schema
            .attributes
            .iter()
            .zip(&entity.values)
            .map(|(a, v)| format!("COL {a} VAL {v}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    for pair in &dataset.pairs {
        out.push_str(&serialize(&pair.left));
        out.push('\t');
        out.push_str(&serialize(&pair.right));
        out.push('\t');
        out.push(if pair.label { '1' } else { '0' });
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::magellan;

    #[test]
    fn parses_the_canonical_example() {
        let text = "COL title VAL sony camera COL price VAL 37.63\t\
                    COL title VAL sony cam COL price VAL 36\t1\n";
        let d = from_ditto_string(text, "t", DatasetType::Structured).unwrap();
        assert_eq!(d.schema.attributes, vec!["title", "price"]);
        assert_eq!(d.pairs.len(), 1);
        assert!(d.pairs[0].label);
        assert_eq!(d.pairs[0].left.values, vec!["sony camera", "37.63"]);
        assert_eq!(d.pairs[0].right.values, vec!["sony cam", "36"]);
    }

    #[test]
    fn roundtrip_via_ditto_format() {
        let original = magellan::generate_by_name("S-FZ", 1).unwrap().subsample(40, 0);
        let text = to_ditto_string(&original);
        let back = from_ditto_string(&text, "S-FZ", DatasetType::Structured).unwrap();
        assert_eq!(back.len(), original.len());
        assert_eq!(back.schema, original.schema);
        for (a, b) in original.pairs.iter().zip(&back.pairs) {
            assert_eq!(a.label, b.label);
            // Values survive modulo whitespace normalization.
            for (va, vb) in a.left.values.iter().zip(&b.left.values) {
                assert_eq!(va.split_whitespace().collect::<Vec<_>>().join(" "), *vb);
            }
        }
    }

    #[test]
    fn missing_attributes_become_empty_values() {
        let text = "COL a VAL x COL b VAL y\tCOL a VAL z\t0\n";
        let d = from_ditto_string(text, "t", DatasetType::Structured).unwrap();
        assert_eq!(d.pairs[0].right.values, vec!["z", ""]);
    }

    #[test]
    fn rejects_bad_label_and_bad_shape() {
        let bad_label = "COL a VAL x\tCOL a VAL y\tmaybe\n";
        assert!(from_ditto_string(bad_label, "t", DatasetType::Structured).is_err());
        let bad_fields = "COL a VAL x\t1\n";
        let err = from_ditto_string(bad_fields, "t", DatasetType::Structured).unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn skips_blank_lines() {
        let text = "\nCOL a VAL x\tCOL a VAL y\t1\n\n";
        let d = from_ditto_string(text, "t", DatasetType::Structured).unwrap();
        assert_eq!(d.len(), 1);
    }
}
