//! Stratified train/validation/test splitting.
//!
//! "Each dataset is divided into training, validation, and test set which
//! were created with 60-20-20 proportions" (§5). Stratification on the label
//! keeps the match rate of each split equal to the dataset's, which matters
//! for the tiny datasets (S-BR has 450 pairs).

use crate::model::EmDataset;
use serde::{Deserialize, Serialize};
use wym_linalg::Rng64;

/// Index sets of a three-way split.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitIndices {
    /// Training indices.
    pub train: Vec<usize>,
    /// Validation indices.
    pub val: Vec<usize>,
    /// Test indices.
    pub test: Vec<usize>,
}

impl SplitIndices {
    /// Total number of indices across the three parts.
    pub fn total(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }
}

/// Label-stratified split with the given fractions (the remainder goes to
/// the test set). Deterministic for a given seed.
///
/// # Panics
/// Panics if `train_frac + val_frac > 1`.
pub fn stratified_split(
    dataset: &EmDataset,
    train_frac: f64,
    val_frac: f64,
    seed: u64,
) -> SplitIndices {
    assert!(
        train_frac + val_frac <= 1.0 + 1e-9,
        "train {train_frac} + val {val_frac} exceed 1.0"
    );
    let mut rng = Rng64::new(seed);
    let mut split = SplitIndices { train: Vec::new(), val: Vec::new(), test: Vec::new() };
    for class in [true, false] {
        let mut idx: Vec<usize> = dataset
            .pairs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.label == class)
            .map(|(i, _)| i)
            .collect();
        rng.shuffle(&mut idx);
        let n = idx.len();
        let n_train = (n as f64 * train_frac).round() as usize;
        let n_val = (n as f64 * val_frac).round() as usize;
        let n_val = n_val.min(n - n_train);
        split.train.extend(&idx[..n_train]);
        split.val.extend(&idx[n_train..n_train + n_val]);
        split.test.extend(&idx[n_train + n_val..]);
    }
    split.train.sort_unstable();
    split.val.sort_unstable();
    split.test.sort_unstable();
    split
}

/// The paper's 60-20-20 split.
pub fn paper_split(dataset: &EmDataset, seed: u64) -> SplitIndices {
    stratified_split(dataset, 0.6, 0.2, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DatasetType, Entity, RecordPair, Schema};

    fn dataset(n: usize, match_every: usize) -> EmDataset {
        let pairs = (0..n)
            .map(|i| RecordPair {
                id: i as u32,
                left: Entity::new(vec![format!("l{i}")]),
                right: Entity::new(vec![format!("r{i}")]),
                label: i % match_every == 0,
            })
            .collect();
        EmDataset {
            name: "t".into(),
            dataset_type: DatasetType::Structured,
            schema: Schema::new(vec!["a"]),
            pairs,
        }
    }

    #[test]
    fn partitions_are_disjoint_and_cover() {
        let d = dataset(100, 5);
        let s = paper_split(&d, 1);
        assert_eq!(s.total(), 100);
        let mut all: Vec<usize> =
            s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 100, "overlapping splits");
    }

    #[test]
    fn proportions_are_60_20_20() {
        let d = dataset(1000, 5);
        let s = paper_split(&d, 2);
        assert!((s.train.len() as f64 - 600.0).abs() <= 2.0, "train {}", s.train.len());
        assert!((s.val.len() as f64 - 200.0).abs() <= 2.0, "val {}", s.val.len());
        assert!((s.test.len() as f64 - 200.0).abs() <= 2.0, "test {}", s.test.len());
    }

    #[test]
    fn stratification_preserves_match_rate() {
        let d = dataset(1000, 5); // 20% matches
        let s = paper_split(&d, 3);
        for part in [&s.train, &s.val, &s.test] {
            let rate = part.iter().filter(|&&i| d.pairs[i].label).count() as f64
                / part.len() as f64;
            assert!((rate - 0.2).abs() < 0.02, "rate {rate}");
        }
    }

    #[test]
    fn deterministic_per_seed_and_varies_across_seeds() {
        let d = dataset(200, 4);
        assert_eq!(paper_split(&d, 7), paper_split(&d, 7));
        assert_ne!(paper_split(&d, 7), paper_split(&d, 8));
    }

    #[test]
    fn tiny_dataset_keeps_all_rows() {
        let d = dataset(5, 2);
        let s = paper_split(&d, 4);
        assert_eq!(s.total(), 5);
    }

    #[test]
    #[should_panic(expected = "exceed 1.0")]
    fn rejects_overfull_fractions() {
        let d = dataset(10, 2);
        let _ = stratified_split(&d, 0.8, 0.5, 0);
    }
}
