//! Minimal CSV serialization of EM datasets.
//!
//! Layout matches the Magellan convention: `id,label,left_<attr>…,right_<attr>…`.
//! Quoting follows RFC 4180 (fields containing `,`, `"` or newlines are
//! quoted; embedded quotes double).

use crate::model::{DatasetType, EmDataset, Entity, RecordPair, Schema};
use std::fmt::Write as _;
use std::io::{self, BufRead};
use std::path::Path;

/// Errors arising while parsing a dataset CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Structural problem with the file contents.
    Malformed(String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Malformed(m) => write!(f, "malformed csv: {m}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Splits CSV text into records, honoring quotes (a newline inside a quoted
/// field does not end the record) and stripping CR from CRLF endings.
fn split_records(text: &str) -> Vec<String> {
    let mut records = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for c in text.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes; // doubled quotes toggle twice: net zero
                cur.push(c);
            }
            '\r' if !in_quotes => {} // CRLF / stray CR outside quotes
            '\n' if !in_quotes => {
                records.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.is_empty() {
        records.push(cur);
    }
    records
}

/// Splits one CSV record into fields.
fn split_fields(line: &str) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::Malformed("unterminated quote".into()));
    }
    fields.push(cur);
    Ok(fields)
}

/// Serializes a dataset to CSV text.
pub fn to_csv_string(dataset: &EmDataset) -> String {
    let mut out = String::new();
    out.push_str("id,label");
    for side in ["left", "right"] {
        for attr in &dataset.schema.attributes {
            let _ = write!(out, ",{side}_{}", quote(attr));
        }
    }
    out.push('\n');
    for pair in &dataset.pairs {
        let _ = write!(out, "{},{}", pair.id, u8::from(pair.label));
        for entity in [&pair.left, &pair.right] {
            for v in &entity.values {
                out.push(',');
                out.push_str(&quote(v));
            }
        }
        out.push('\n');
    }
    out
}

/// Writes a dataset to a CSV file.
pub fn write_csv(dataset: &EmDataset, path: &Path) -> io::Result<()> {
    std::fs::write(path, to_csv_string(dataset))
}

/// Parses a dataset from CSV text produced by [`to_csv_string`].
pub fn from_csv_string(
    text: &str,
    name: &str,
    dataset_type: DatasetType,
) -> Result<EmDataset, CsvError> {
    let records = split_records(text);
    let mut lines = records.iter().map(String::as_str);
    let header = lines.next().ok_or_else(|| CsvError::Malformed("empty file".into()))?;
    let cols = split_fields(header)?;
    if cols.len() < 2 || cols[0] != "id" || cols[1] != "label" {
        return Err(CsvError::Malformed("header must start with id,label".into()));
    }
    let n_attr_cols = cols.len() - 2;
    if n_attr_cols % 2 != 0 {
        return Err(CsvError::Malformed("left/right attribute columns unbalanced".into()));
    }
    let m = n_attr_cols / 2;
    let attributes: Vec<String> = cols[2..2 + m]
        .iter()
        .map(|c| {
            c.strip_prefix("left_")
                .map(str::to_string)
                .ok_or_else(|| CsvError::Malformed(format!("bad column name {c}")))
        })
        .collect::<Result<_, _>>()?;

    let mut pairs = Vec::new();
    for (ln, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields = split_fields(line)?;
        if fields.len() != cols.len() {
            return Err(CsvError::Malformed(format!(
                "row {}: {} fields, expected {}",
                ln + 2,
                fields.len(),
                cols.len()
            )));
        }
        let id: u32 = fields[0]
            .parse()
            .map_err(|_| CsvError::Malformed(format!("row {}: bad id", ln + 2)))?;
        let label = match fields[1].as_str() {
            "1" => true,
            "0" => false,
            other => {
                return Err(CsvError::Malformed(format!("row {}: bad label {other}", ln + 2)))
            }
        };
        pairs.push(RecordPair {
            id,
            label,
            left: Entity { values: fields[2..2 + m].to_vec() },
            right: Entity { values: fields[2 + m..].to_vec() },
        });
    }
    Ok(EmDataset { name: name.to_string(), dataset_type, schema: Schema { attributes }, pairs })
}

/// Reads a dataset from a CSV file.
pub fn read_csv(path: &Path, name: &str, dataset_type: DatasetType) -> Result<EmDataset, CsvError> {
    let file = std::fs::File::open(path)?;
    let mut text = String::new();
    let mut reader = io::BufReader::new(file);
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        text.push_str(&line);
    }
    from_csv_string(&text, name, dataset_type)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> EmDataset {
        EmDataset {
            name: "toy".into(),
            dataset_type: DatasetType::Structured,
            schema: Schema::new(vec!["name", "price"]),
            pairs: vec![
                RecordPair {
                    id: 0,
                    label: true,
                    left: Entity::new(vec!["sony, camera".to_string(), "37.63".into()]),
                    right: Entity::new(vec!["sony \"dslr\"".to_string(), "36".into()]),
                },
                RecordPair {
                    id: 1,
                    label: false,
                    left: Entity::new(vec!["a".to_string(), "".into()]),
                    right: Entity::new(vec!["b".to_string(), "1".into()]),
                },
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let d = toy();
        let text = to_csv_string(&d);
        let back = from_csv_string(&text, "toy", DatasetType::Structured).unwrap();
        assert_eq!(d.schema, back.schema);
        assert_eq!(d.pairs, back.pairs);
    }

    #[test]
    fn quoting_commas_and_quotes() {
        let text = to_csv_string(&toy());
        assert!(text.contains("\"sony, camera\""));
        assert!(text.contains("\"sony \"\"dslr\"\"\""));
    }

    #[test]
    fn rejects_bad_header() {
        let err = from_csv_string("foo,bar\n", "x", DatasetType::Structured);
        assert!(matches!(err, Err(CsvError::Malformed(_))));
    }

    #[test]
    fn rejects_ragged_rows() {
        let text = "id,label,left_a,right_a\n0,1,x\n";
        let err = from_csv_string(text, "x", DatasetType::Structured);
        assert!(matches!(err, Err(CsvError::Malformed(_))));
    }

    #[test]
    fn rejects_unbalanced_sides() {
        let text = "id,label,left_a,left_b,right_a\n";
        let err = from_csv_string(text, "x", DatasetType::Structured);
        assert!(matches!(err, Err(CsvError::Malformed(_))));
    }

    #[test]
    fn file_roundtrip() {
        let d = toy();
        let path = std::env::temp_dir().join("wym_csv_test.csv");
        write_csv(&d, &path).unwrap();
        let back = read_csv(&path, "toy", DatasetType::Structured).unwrap();
        assert_eq!(d.pairs, back.pairs);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn quoted_newline_roundtrips() {
        let mut d = toy();
        d.pairs[0].left.values[0] = "line one\nline two".to_string();
        let text = to_csv_string(&d);
        let back = from_csv_string(&text, "toy", DatasetType::Structured).unwrap();
        assert_eq!(back.pairs[0].left.values[0], "line one\nline two");
    }

    #[test]
    fn crlf_endings_are_stripped() {
        let text = "id,label,left_a,right_a\r\n0,1,x,y\r\n";
        let d = from_csv_string(text, "t", DatasetType::Structured).unwrap();
        assert_eq!(d.pairs[0].right.values[0], "y");
    }

    #[test]
    fn empty_field_survives() {
        let d = toy();
        let back =
            from_csv_string(&to_csv_string(&d), "toy", DatasetType::Structured).unwrap();
        assert_eq!(back.pairs[1].left.values[1], "");
    }
}
