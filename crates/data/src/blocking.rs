//! Blocking — candidate-pair generation from two entity tables.
//!
//! The paper (like most EM work) evaluates on pre-blocked labeled pairs,
//! but a deployable matcher needs the step before: given two tables of
//! entities, produce the candidate pairs worth scoring. This module
//! implements standard token-overlap blocking with an inverted index:
//! entities sharing at least `min_shared_tokens` (rare-ish) tokens become
//! candidates, capped per left entity by descending overlap.

use crate::model::Entity;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wym_tokenize::Tokenizer;

/// Blocking configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockingConfig {
    /// Minimum shared tokens for a candidate.
    pub min_shared_tokens: usize,
    /// Maximum candidates kept per left entity (best-overlap first).
    pub max_candidates_per_entity: usize,
    /// Tokens appearing in more than this fraction of right entities are
    /// ignored as blocking keys (stop-token suppression).
    pub max_token_frequency: f32,
}

impl Default for BlockingConfig {
    fn default() -> Self {
        Self {
            min_shared_tokens: 1,
            max_candidates_per_entity: 10,
            max_token_frequency: 0.1,
        }
    }
}

/// Generates candidate `(left_index, right_index)` pairs between two entity
/// tables via token-overlap blocking.
pub fn block_candidates(
    left: &[Entity],
    right: &[Entity],
    config: &BlockingConfig,
) -> Vec<(usize, usize)> {
    let tokenizer = Tokenizer::default();
    // Inverted index over the right table.
    let mut index: HashMap<String, Vec<usize>> = HashMap::new();
    for (j, entity) in right.iter().enumerate() {
        let mut tokens = tokenizer.tokenize(&entity.full_text());
        tokens.sort();
        tokens.dedup();
        for t in tokens {
            index.entry(t).or_default().push(j);
        }
    }
    // Drop high-frequency tokens: they produce quadratic candidate blowup
    // without discriminating anything.
    let cutoff =
        ((right.len() as f32) * config.max_token_frequency).ceil().max(1.0) as usize;
    index.retain(|_, postings| postings.len() <= cutoff);

    // Overlap counts accumulate in a dense scratch array with a touched
    // list instead of a hash map: no hashing in the hot loop, and the
    // candidate list is assembled in ascending right-index order by
    // construction, so the stable (overlap desc, right index asc) key below
    // fully determines the output — including which candidates survive the
    // cap under tied overlaps — independent of any map iteration order.
    let mut out = Vec::new();
    let mut overlap: Vec<usize> = vec![0; right.len()];
    let mut touched: Vec<usize> = Vec::new();
    for (i, entity) in left.iter().enumerate() {
        let mut tokens = tokenizer.tokenize(&entity.full_text());
        tokens.sort();
        tokens.dedup();
        for t in &tokens {
            if let Some(postings) = index.get(t) {
                for &j in postings {
                    if overlap[j] == 0 {
                        touched.push(j);
                    }
                    overlap[j] += 1;
                }
            }
        }
        touched.sort_unstable();
        let mut candidates: Vec<(usize, usize)> = touched
            .iter()
            .filter(|&&j| overlap[j] >= config.min_shared_tokens)
            .map(|&j| (j, overlap[j]))
            .collect();
        candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        candidates.truncate(config.max_candidates_per_entity);
        out.extend(candidates.into_iter().map(|(j, _)| (i, j)));
        for &j in &touched {
            overlap[j] = 0;
        }
        touched.clear();
    }
    out
}

/// Recall of a blocking run against gold matches: the fraction of gold
/// `(left, right)` pairs that survived blocking.
pub fn blocking_recall(candidates: &[(usize, usize)], gold: &[(usize, usize)]) -> f32 {
    if gold.is_empty() {
        return 1.0;
    }
    let set: std::collections::HashSet<&(usize, usize)> = candidates.iter().collect();
    gold.iter().filter(|g| set.contains(g)).count() as f32 / gold.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entities(values: &[&str]) -> Vec<Entity> {
        values.iter().map(|v| Entity::new(vec![v.to_string()])).collect()
    }

    #[test]
    fn overlapping_entities_become_candidates() {
        let left = entities(&["sony camera dslr", "stone brewing ale"]);
        let right = entities(&["sony camera kit", "router modem", "stone ale ipa"]);
        let cands = block_candidates(&left, &right, &BlockingConfig::default());
        assert!(cands.contains(&(0, 0)), "{cands:?}");
        assert!(cands.contains(&(1, 2)), "{cands:?}");
        assert!(!cands.contains(&(0, 1)), "no shared tokens: {cands:?}");
    }

    #[test]
    fn frequent_tokens_do_not_block() {
        // "camera" appears in every right entity: with a tight frequency
        // cutoff it must not generate candidates on its own.
        let left = entities(&["camera alpha"]);
        let right = entities(&[
            "camera one",
            "camera two",
            "camera three",
            "camera four",
            "camera five",
            "camera six",
            "camera seven",
            "camera eight",
            "camera nine",
            "camera alpha",
        ]);
        let cfg = BlockingConfig { max_token_frequency: 0.15, ..Default::default() };
        let cands = block_candidates(&left, &right, &cfg);
        assert_eq!(cands, vec![(0, 9)], "only the alpha overlap survives");
    }

    #[test]
    fn candidate_cap_keeps_best_overlap() {
        let left = entities(&["a b c d"]);
        let right = entities(&["a b c d", "a b", "a", "a b c"]);
        let cfg = BlockingConfig {
            max_candidates_per_entity: 2,
            max_token_frequency: 1.0,
            ..Default::default()
        };
        let cands = block_candidates(&left, &right, &cfg);
        assert_eq!(cands.len(), 2);
        assert!(cands.contains(&(0, 0)), "full overlap kept: {cands:?}");
        assert!(cands.contains(&(0, 3)), "next-best kept: {cands:?}");
    }

    #[test]
    fn min_shared_tokens_threshold() {
        let left = entities(&["alpha beta"]);
        let right = entities(&["alpha gamma", "alpha beta delta"]);
        let cfg = BlockingConfig {
            min_shared_tokens: 2,
            max_token_frequency: 1.0,
            ..Default::default()
        };
        let cands = block_candidates(&left, &right, &cfg);
        assert_eq!(cands, vec![(0, 1)]);
    }

    #[test]
    fn recall_measurement() {
        let candidates = vec![(0, 0), (1, 2)];
        assert_eq!(blocking_recall(&candidates, &[(0, 0), (1, 2)]), 1.0);
        assert_eq!(blocking_recall(&candidates, &[(0, 0), (5, 5)]), 0.5);
        assert_eq!(blocking_recall(&candidates, &[]), 1.0);
    }

    #[test]
    fn empty_tables() {
        let cands = block_candidates(&[], &[], &BlockingConfig::default());
        assert!(cands.is_empty());
    }

    #[test]
    fn tied_overlaps_resolve_by_ascending_right_index() {
        // Five right entities tie at overlap 1 with a cap of 3: the stable
        // (overlap desc, right index asc) key must keep exactly the three
        // lowest right indices, in that order, on every run.
        let left = entities(&["alpha beta"]);
        let right = entities(&[
            "alpha one",
            "alpha two",
            "alpha three",
            "alpha four",
            "alpha five",
            "beta alpha six",
        ]);
        let cfg = BlockingConfig {
            max_candidates_per_entity: 3,
            max_token_frequency: 1.0,
            ..Default::default()
        };
        let cands = block_candidates(&left, &right, &cfg);
        // Entity 5 has overlap 2 and ranks first; of the overlap-1 ties
        // only the two lowest right indices survive the cap.
        assert_eq!(cands, vec![(0, 5), (0, 0), (0, 1)]);
        for _ in 0..10 {
            assert_eq!(block_candidates(&left, &right, &cfg), cands);
        }
    }
}
