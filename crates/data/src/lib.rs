//! Dataset substrate: the EM data model, splits, CSV IO, and the synthetic
//! Magellan benchmark generator.
//!
//! The paper evaluates on "12 datasets provided by the Magellan library
//! which are usually considered the reference benchmark for the evaluation
//! of EM tasks" (§5, Table 2). Those datasets cannot be bundled offline, so
//! [`magellan`] regenerates them synthetically with the same names, sizes,
//! match rates, schemas and failure modes — see DESIGN.md §2 for the full
//! substitution argument.

pub mod blocking;
pub mod csv;
pub mod ditto_format;
pub mod magellan;
pub mod model;
pub mod split;

pub use model::{DatasetType, Entity, EmDataset, RecordPair, Schema};
pub use split::{stratified_split, SplitIndices};
