//! The synthetic Magellan benchmark (Table 2 substitute).
//!
//! Every dataset of the paper's Table 2 is regenerated with the same name,
//! type, size, match rate and schema, and with failure modes engineered to
//! reproduce the benchmark's known difficulty profile:
//!
//! * hard negatives share brands / venues / albums (challenge R1);
//! * dirty variants migrate attribute values into the title (challenge R2);
//! * T-AB uses long periphrastic prose so matching pairs still contain many
//!   unpaired tokens (the Figure 4 anomaly);
//! * software/electronics titles carry product codes that differ by one
//!   digit between siblings — the error class the paper's §5.1.1 analysis
//!   attributes WYM's mistakes to.

pub mod entities;
pub mod perturb;
pub mod vocab;

pub use entities::Domain;

use crate::model::{DatasetType, EmDataset, Entity, RecordPair, Schema};
use perturb::{dirty_shuffle, perturb_price, perturb_text};
use wym_linalg::rng::hash64;
use wym_linalg::Rng64;

/// Recipe for one benchmark dataset.
///
/// Serializes (for experiment manifests) but does not deserialize: the
/// `&'static str` names only exist in the compiled-in Table 2 recipes.
#[derive(Debug, Clone, serde::Serialize)]
pub struct MagellanConfig {
    /// Short benchmark name (Table 2's first column).
    pub name: &'static str,
    /// The original dataset pair the entry mimics.
    pub full_name: &'static str,
    /// Structured / Textual / Dirty.
    pub dataset_type: DatasetType,
    /// Entity domain.
    pub domain: Domain,
    /// Number of record pairs (Table 2's "Size").
    pub size: usize,
    /// Percentage of matching pairs (Table 2's "% Match").
    pub match_pct: f32,
    /// Perturbation intensity in `[0, 1]` — how differently the two catalogs
    /// describe the same entity. Higher ⇒ harder matches.
    pub intensity: f32,
    /// Fraction of non-matches drawn as context-sharing siblings. Higher ⇒
    /// harder non-matches.
    pub hard_negative_frac: f32,
    /// Probability that an entity's values are shuffled across attributes
    /// (only nonzero for the dirty variants).
    pub dirty_rate: f32,
}

/// All twelve Table 2 entries. Sizes and match rates are the paper's;
/// intensity/hardness encode each dataset's observed difficulty.
pub fn all_configs() -> Vec<MagellanConfig> {
    use DatasetType::*;
    use Domain::*;
    vec![
        MagellanConfig { name: "S-DG", full_name: "DBLP-GoogleScholar", dataset_type: Structured, domain: Bibliography, size: 28_707, match_pct: 18.63, intensity: 0.40, hard_negative_frac: 0.45, dirty_rate: 0.0 },
        MagellanConfig { name: "S-DA", full_name: "DBLP-ACM", dataset_type: Structured, domain: Bibliography, size: 12_363, match_pct: 17.96, intensity: 0.15, hard_negative_frac: 0.30, dirty_rate: 0.0 },
        MagellanConfig { name: "S-AG", full_name: "Amazon-Google", dataset_type: Structured, domain: Software, size: 11_460, match_pct: 10.18, intensity: 0.65, hard_negative_frac: 0.80, dirty_rate: 0.0 },
        MagellanConfig { name: "S-WA", full_name: "Walmart-Amazon", dataset_type: Structured, domain: Electronics, size: 10_242, match_pct: 9.39, intensity: 0.60, hard_negative_frac: 0.70, dirty_rate: 0.0 },
        MagellanConfig { name: "S-BR", full_name: "BeerAdvo-RateBeer", dataset_type: Structured, domain: Beer, size: 450, match_pct: 15.11, intensity: 0.35, hard_negative_frac: 0.40, dirty_rate: 0.0 },
        MagellanConfig { name: "S-IA", full_name: "iTunes-Amazon", dataset_type: Structured, domain: Music, size: 539, match_pct: 24.49, intensity: 0.20, hard_negative_frac: 0.35, dirty_rate: 0.0 },
        MagellanConfig { name: "S-FZ", full_name: "Fodors-Zagats", dataset_type: Structured, domain: Restaurant, size: 946, match_pct: 11.63, intensity: 0.15, hard_negative_frac: 0.25, dirty_rate: 0.0 },
        MagellanConfig { name: "T-AB", full_name: "Abt-Buy", dataset_type: Textual, domain: TextualProduct, size: 9_575, match_pct: 10.74, intensity: 0.50, hard_negative_frac: 0.60, dirty_rate: 0.0 },
        MagellanConfig { name: "D-IA", full_name: "iTunes-Amazon", dataset_type: Dirty, domain: Music, size: 539, match_pct: 24.49, intensity: 0.20, hard_negative_frac: 0.35, dirty_rate: 0.35 },
        MagellanConfig { name: "D-DA", full_name: "DBLP-ACM", dataset_type: Dirty, domain: Bibliography, size: 12_363, match_pct: 17.96, intensity: 0.15, hard_negative_frac: 0.30, dirty_rate: 0.30 },
        MagellanConfig { name: "D-DG", full_name: "DBLP-GoogleScholar", dataset_type: Dirty, domain: Bibliography, size: 28_707, match_pct: 18.63, intensity: 0.40, hard_negative_frac: 0.45, dirty_rate: 0.30 },
        MagellanConfig { name: "D-WA", full_name: "Walmart-Amazon", dataset_type: Dirty, domain: Electronics, size: 10_242, match_pct: 9.39, intensity: 0.60, hard_negative_frac: 0.70, dirty_rate: 0.40 },
    ]
}

/// Looks up a config by its Table 2 short name.
pub fn config_by_name(name: &str) -> Option<MagellanConfig> {
    all_configs().into_iter().find(|c| c.name == name)
}

/// Generates a dataset from its config. Deterministic in `(config.name, seed)`.
pub fn generate(config: &MagellanConfig, seed: u64) -> EmDataset {
    let mut rng = Rng64::new(seed ^ hash64(config.name.as_bytes()));
    let n_match = ((config.size as f64) * (config.match_pct as f64) / 100.0).round() as usize;
    let n_match = n_match.min(config.size);
    let schema =
        Schema::new(config.domain.schema().into_iter().map(str::to_string).collect::<Vec<_>>());

    let mut pairs = Vec::with_capacity(config.size);
    for id in 0..config.size as u32 {
        let is_match = (id as usize) < n_match;
        let base = entities::make_base(config.domain, &mut rng);
        let other_base = if is_match {
            base.clone()
        } else if rng.gen_bool(config.hard_negative_frac as f64) {
            entities::make_sibling(config.domain, &base, &mut rng)
        } else {
            entities::make_base(config.domain, &mut rng)
        };
        let left = materialize(&base, config, &mut rng);
        let right = materialize(&other_base, config, &mut rng);
        pairs.push(RecordPair { id, label: is_match, left, right });
    }
    // Interleave matches/non-matches deterministically so prefixes of the
    // dataset are label-mixed.
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    rng.shuffle(&mut order);
    let mut pairs: Vec<RecordPair> =
        order.into_iter().map(|i| pairs[i].clone()).collect();
    for (new_id, p) in pairs.iter_mut().enumerate() {
        p.id = new_id as u32;
    }
    EmDataset {
        name: config.name.to_string(),
        dataset_type: config.dataset_type,
        schema,
        pairs,
    }
}

/// One catalog's *view* of a base entity: perturbed text, drifted prices,
/// and (for dirty datasets) attribute shuffling.
fn materialize(base: &[String], config: &MagellanConfig, rng: &mut Rng64) -> Entity {
    let price_attr = config.domain.schema().iter().position(|a| *a == "price" || *a == "abv");
    let mut values: Vec<String> = base
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if Some(i) == price_attr {
                match v.parse::<f64>() {
                    Ok(num) => perturb_price(num, config.intensity, rng),
                    Err(_) => v.clone(),
                }
            } else {
                // Model numbers / phone numbers must not lose tokens.
                let allow_drop = !matches!(
                    config.domain.schema()[i],
                    "modelno" | "phone" | "year" | "released"
                );
                perturb_text(v, config.intensity, allow_drop, rng)
            }
        })
        .collect();
    // Catalog heterogeneity: one catalog may simply omit an attribute
    // (never the first, which carries the identity). This is what makes the
    // hard real-world datasets hard — decisive evidence is often missing on
    // one side.
    if config.intensity >= 0.5 && values.len() > 2 && rng.gen_bool(0.35 * config.intensity as f64) {
        let a = 1 + rng.gen_range(values.len() - 1);
        values[a].clear();
    }
    if rng.gen_bool(config.dirty_rate as f64) {
        dirty_shuffle(&mut values, rng);
    }
    Entity { values }
}

/// Generates a Table 2 dataset by short name.
pub fn generate_by_name(name: &str, seed: u64) -> Option<EmDataset> {
    config_by_name(name).map(|c| generate(&c, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_configs_matching_table2() {
        let configs = all_configs();
        assert_eq!(configs.len(), 12);
        let sdg = config_by_name("S-DG").unwrap();
        assert_eq!(sdg.size, 28_707);
        assert!((sdg.match_pct - 18.63).abs() < 1e-5);
        let dirty: Vec<&str> = configs
            .iter()
            .filter(|c| c.dataset_type == DatasetType::Dirty)
            .map(|c| c.name)
            .collect();
        assert_eq!(dirty, vec!["D-IA", "D-DA", "D-DG", "D-WA"]);
    }

    #[test]
    fn generated_size_and_match_rate_match_table2() {
        for name in ["S-BR", "S-IA", "S-FZ"] {
            let cfg = config_by_name(name).unwrap();
            let d = generate(&cfg, 42);
            assert_eq!(d.len(), cfg.size, "{name}");
            assert!(
                (d.match_rate_pct() - cfg.match_pct).abs() < 0.3,
                "{name}: {} vs {}",
                d.match_rate_pct(),
                cfg.match_pct
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = config_by_name("S-BR").unwrap();
        let a = generate(&cfg, 7);
        let b = generate(&cfg, 7);
        assert_eq!(a.pairs, b.pairs);
        let c = generate(&cfg, 8);
        assert_ne!(a.pairs, c.pairs);
    }

    #[test]
    fn matches_share_more_surface_than_non_matches() {
        let cfg = config_by_name("S-FZ").unwrap();
        let d = generate(&cfg, 1);
        let overlap = |p: &RecordPair| {
            let l = p.left.full_text();
            let r = p.right.full_text();
            let lt: std::collections::HashSet<&str> = l.split_whitespace().collect();
            let rt: std::collections::HashSet<&str> = r.split_whitespace().collect();
            let inter = lt.intersection(&rt).count() as f32;
            inter / lt.len().max(1) as f32
        };
        let m: f32 = d.pairs.iter().filter(|p| p.label).map(&overlap).sum::<f32>()
            / d.pairs.iter().filter(|p| p.label).count() as f32;
        let n: f32 = d.pairs.iter().filter(|p| !p.label).map(&overlap).sum::<f32>()
            / d.pairs.iter().filter(|p| !p.label).count() as f32;
        assert!(m > n + 0.25, "match overlap {m} vs non-match {n}");
    }

    #[test]
    fn dirty_variant_empties_attributes() {
        let d = generate(&config_by_name("D-IA").unwrap(), 3);
        let empty_values = d
            .pairs
            .iter()
            .flat_map(|p| p.left.values.iter().chain(&p.right.values))
            .filter(|v| v.is_empty())
            .count();
        assert!(empty_values > 50, "dirty shuffling must empty attributes, got {empty_values}");
        let s = generate(&config_by_name("S-IA").unwrap(), 3);
        let clean_empty = s
            .pairs
            .iter()
            .flat_map(|p| p.left.values.iter().chain(&p.right.values))
            .filter(|v| v.is_empty())
            .count();
        // The structured variant only has the occasional missing attribute
        // (catalog heterogeneity); the dirty variant empties far more.
        assert!(
            empty_values > clean_empty * 2,
            "dirty ({empty_values}) must empty far more than structured ({clean_empty})"
        );
    }

    #[test]
    fn textual_dataset_has_long_descriptions() {
        let d = generate_by_name("T-AB", 5).unwrap().subsample(50, 0);
        let avg_tokens: f32 = d
            .pairs
            .iter()
            .map(|p| p.left.values[1].split_whitespace().count() as f32)
            .sum::<f32>()
            / d.len() as f32;
        assert!(avg_tokens >= 7.0, "avg description length {avg_tokens}");
    }

    #[test]
    fn labels_are_shuffled_not_prefix_sorted() {
        let d = generate_by_name("S-BR", 11).unwrap();
        let first_half_matches =
            d.pairs[..d.len() / 2].iter().filter(|p| p.label).count();
        let matches = d.pairs.iter().filter(|p| p.label).count();
        assert!(first_half_matches > 0 && first_half_matches < matches);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(generate_by_name("NOPE", 0).is_none());
    }

    #[test]
    fn schema_matches_domain() {
        let d = generate_by_name("S-WA", 0).unwrap();
        assert_eq!(
            d.schema.attributes,
            vec!["title", "category", "brand", "modelno", "price"]
        );
        for p in d.pairs.iter().take(20) {
            assert_eq!(p.left.values.len(), 5);
            assert_eq!(p.right.values.len(), 5);
        }
    }
}
