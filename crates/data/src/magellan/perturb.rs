//! Value perturbations — how the same real-world entity ends up with two
//! different descriptions in two catalogs.
//!
//! The operations mirror the noise visible in the paper's Table 1 fragment:
//! abbreviation (`exchange server → exch srvr`), token reordering
//! (`external sa ↔ external l/sa`), token drops, typos, and numeric
//! reformatting (prices `42166` vs `22575`).

use super::vocab::SYNONYMS;
use wym_linalg::Rng64;

/// Introduces a single character-level typo (swap / delete / duplicate /
/// replace). Words shorter than 4 characters are returned unchanged.
pub fn typo(word: &str, rng: &mut Rng64) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() < 4 {
        return word.to_string();
    }
    let pos = 1 + rng.gen_range(chars.len() - 2);
    let mut out = chars.clone();
    match rng.gen_range(4) {
        0 => out.swap(pos, pos - 1),
        1 => {
            out.remove(pos);
        }
        2 => out.insert(pos, chars[pos]),
        _ => out[pos] = char::from(b'a' + rng.gen_range(26) as u8),
    }
    out.into_iter().collect()
}

/// Vowel-dropping abbreviation (`server → srvr`, `exchange → exchng`), the
/// catalog style of the paper's running example; falls back to truncation
/// for short words.
pub fn abbreviate(word: &str, rng: &mut Rng64) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() <= 4 {
        return word.to_string();
    }
    if rng.gen_bool(0.5) {
        // Drop interior vowels.
        let kept: String = chars
            .iter()
            .enumerate()
            .filter(|(i, c)| *i == 0 || !matches!(c, 'a' | 'e' | 'i' | 'o' | 'u'))
            .map(|(_, &c)| c)
            .collect();
        if kept.chars().count() >= 3 {
            return kept;
        }
    }
    // Truncate to a 4-5 character prefix.
    let keep = 4 + rng.gen_range(2);
    chars.into_iter().take(keep).collect()
}

/// Replaces a word by its synonym (either direction) when one exists.
pub fn synonym(word: &str) -> Option<&'static str> {
    for (a, b) in SYNONYMS {
        if word == *a {
            return Some(b);
        }
        if word == *b {
            return Some(a);
        }
    }
    None
}

/// Perturbs a multi-word textual value. `intensity` in `[0, 1]` scales every
/// per-token probability. `allow_drop` disables token dropping for values
/// that must stay complete (e.g. model numbers).
pub fn perturb_text(value: &str, intensity: f32, allow_drop: bool, rng: &mut Rng64) -> String {
    let p = intensity as f64;
    let mut words: Vec<String> = Vec::new();
    for w in value.split_whitespace() {
        // Token drop.
        if allow_drop && words.len() > 1 && rng.gen_bool(0.10 * p) {
            continue;
        }
        let mut w = w.to_string();
        if rng.gen_bool(0.12 * p) {
            if let Some(s) = synonym(&w) {
                w = s.to_string();
            }
        }
        if rng.gen_bool(0.12 * p) {
            w = abbreviate(&w, rng);
        }
        if rng.gen_bool(0.10 * p) {
            w = typo(&w, rng);
        }
        words.push(w);
    }
    // Adjacent-token swap.
    if words.len() >= 2 && rng.gen_bool(0.15 * p) {
        let i = rng.gen_range(words.len() - 1);
        words.swap(i, i + 1);
    }
    words.join(" ")
}

/// Perturbs a numeric price: small relative drift plus formatting noise
/// (decimals appear/disappear, an occasional currency sign).
pub fn perturb_price(value: f64, intensity: f32, rng: &mut Rng64) -> String {
    let drift = 1.0 + (rng.gen_f64() - 0.5) * 0.08 * intensity as f64;
    let v = value * drift;
    match rng.gen_range(3) {
        0 => format!("{v:.2}"),
        1 => format!("{:.0}", v.round()),
        _ => format!("{v:.1}"),
    }
}

/// Moves the value of a random non-first attribute into the first attribute
/// (the Magellan "dirty" construction: values migrate into the title and the
/// source attribute is emptied).
pub fn dirty_shuffle(values: &mut [String], rng: &mut Rng64) {
    if values.len() < 2 {
        return;
    }
    let src = 1 + rng.gen_range(values.len() - 1);
    if values[src].is_empty() {
        return;
    }
    let moved = std::mem::take(&mut values[src]);
    if values[0].is_empty() {
        values[0] = moved;
    } else {
        values[0] = format!("{} {}", values[0], moved);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typo_changes_long_words_only() {
        let mut rng = Rng64::new(1);
        assert_eq!(typo("tv", &mut rng), "tv");
        assert_eq!(typo("abc", &mut rng), "abc");
        let mut changed = 0;
        for i in 0..20 {
            let mut r = Rng64::new(i);
            if typo("camera", &mut r) != "camera" {
                changed += 1;
            }
        }
        assert!(changed >= 15, "typo should usually change the word, changed {changed}/20");
    }

    #[test]
    fn abbreviate_shortens() {
        let mut rng = Rng64::new(2);
        for w in ["exchange", "server", "professional"] {
            let a = abbreviate(w, &mut rng);
            assert!(a.chars().count() < w.chars().count(), "{w} -> {a}");
            assert!(a.starts_with(w.chars().next().unwrap()));
        }
        assert_eq!(abbreviate("sony", &mut rng), "sony");
    }

    #[test]
    fn synonym_is_bidirectional() {
        assert_eq!(synonym("wireless"), Some("cordless"));
        assert_eq!(synonym("cordless"), Some("wireless"));
        assert_eq!(synonym("camera"), None);
    }

    #[test]
    fn zero_intensity_is_identity() {
        let mut rng = Rng64::new(3);
        let v = "digital camera with lens kit";
        assert_eq!(perturb_text(v, 0.0, true, &mut rng), v);
    }

    #[test]
    fn high_intensity_changes_text_but_keeps_some_overlap() {
        let v = "digital camera with wireless lens kit bundle package";
        let mut changed = 0;
        let mut kept_any = 0;
        for seed in 0..10 {
            let mut rng = Rng64::new(seed);
            let out = perturb_text(v, 1.0, true, &mut rng);
            if out != v {
                changed += 1;
            }
            let out_tokens: Vec<&str> = out.split_whitespace().collect();
            if v.split_whitespace().any(|w| out_tokens.contains(&w)) {
                kept_any += 1;
            }
        }
        assert!(changed >= 8, "changed {changed}/10");
        assert_eq!(kept_any, 10, "perturbation must not destroy all tokens");
    }

    #[test]
    fn price_stays_close() {
        let mut rng = Rng64::new(4);
        for _ in 0..50 {
            let s = perturb_price(100.0, 1.0, &mut rng);
            let v: f64 = s.trim_start_matches('$').parse().unwrap();
            assert!((v - 100.0).abs() <= 5.0, "price drifted too far: {s}");
        }
    }

    #[test]
    fn dirty_shuffle_moves_value_to_title() {
        let mut rng = Rng64::new(5);
        let mut values =
            vec!["camera".to_string(), "sony".to_string(), "37.63".to_string()];
        dirty_shuffle(&mut values, &mut rng);
        let emptied = values[1].is_empty() || values[2].is_empty();
        assert!(emptied, "one source attribute must be emptied: {values:?}");
        assert!(values[0].len() > "camera".len(), "title must absorb the value");
    }

    #[test]
    fn dirty_shuffle_single_attribute_noop() {
        let mut rng = Rng64::new(6);
        let mut values = vec!["only".to_string()];
        dirty_shuffle(&mut values, &mut rng);
        assert_eq!(values, vec!["only".to_string()]);
    }
}
