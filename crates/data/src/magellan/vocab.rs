//! Word pools for the synthetic Magellan benchmark.
//!
//! Pools are sized so that hard negatives (same brand / venue / artist,
//! different entity) occur at realistic rates, reproducing the paper's
//! challenge R1 ("the entities are different products, but they share the
//! same brand").

/// Consumer-electronics and general manufacturers.
pub const BRANDS: &[&str] = &[
    "sony", "nikon", "canon", "panasonic", "samsung", "toshiba", "philips", "sharp", "sanyo",
    "olympus", "kodak", "fujifilm", "garmin", "logitech", "belkin", "netgear", "linksys",
    "motorola", "siemens", "pioneer", "yamaha", "kenwood", "jvc", "casio", "epson", "brother",
    "lexmark", "viewsonic", "acer", "asus",
];

/// Software vendors (Amazon-Google style).
pub const SOFTWARE_VENDORS: &[&str] = &[
    "microsoft", "adobe", "symantec", "mcafee", "intuit", "corel", "autodesk", "oracle", "sage",
    "nero", "roxio", "kaspersky", "avanquest", "encore", "topics", "punch", "individual",
    "nuance", "sonic", "cyberlink",
];

/// Software product families.
pub const SOFTWARE_PRODUCTS: &[&str] = &[
    "office", "windows", "photoshop", "acrobat", "illustrator", "antivirus", "quickbooks",
    "quicken", "turbotax", "dreamweaver", "flash", "premiere", "encarta", "money", "works",
    "exchange", "server", "visual", "studio", "project", "visio", "publisher", "frontpage",
    "norton", "internet", "security", "systemworks", "ghost", "partition", "magic",
];

/// Software edition / licensing tokens.
pub const SOFTWARE_EDITIONS: &[&str] = &[
    "standard", "professional", "premium", "deluxe", "home", "academic", "upgrade", "full",
    "oem", "retail", "license", "licenses", "sa", "olp", "edition", "suite", "bundle", "mac",
    "win32", "english", "external", "eng",
];

/// Electronics product nouns.
pub const PRODUCT_NOUNS: &[&str] = &[
    "camera", "camcorder", "television", "monitor", "projector", "printer", "scanner", "router",
    "keyboard", "mouse", "speaker", "headphones", "receiver", "player", "recorder", "adapter",
    "battery", "charger", "lens", "tripod", "case", "bag", "cable", "remote", "microphone",
    "webcam", "phone", "tablet", "drive", "memory",
];

/// Electronics categories (Walmart-Amazon style).
pub const CATEGORIES: &[&str] = &[
    "electronics", "cameras", "computers", "accessories", "audio", "video", "networking",
    "printers", "storage", "office", "photography", "mobile", "home theater", "tv",
];

/// Modifier words for product titles.
pub const MODIFIERS: &[&str] = &[
    "digital", "wireless", "portable", "compact", "optical", "stereo", "color", "black",
    "silver", "white", "mini", "ultra", "pro", "hd", "lcd", "led", "zoom", "dual", "automatic",
    "rechargeable", "waterproof", "leather", "slim", "advanced", "smart",
];

/// Periphrasis map used by the textual dataset: the generator swaps a word
/// for its synonym between the two descriptions of a matching pair, which —
/// under a surface-form embedder, exactly as under word-piece BERT — often
/// fails to pair and reproduces T-AB's "many unpaired units" anomaly.
pub const SYNONYMS: &[(&str, &str)] = &[
    ("wireless", "cordless"),
    ("display", "screen"),
    ("portable", "handheld"),
    ("compact", "small"),
    ("television", "tv"),
    ("headphones", "earphones"),
    ("speaker", "loudspeaker"),
    ("charger", "adapter"),
    ("automatic", "auto"),
    ("rechargeable", "reusable"),
    ("photo", "picture"),
    ("fast", "quick"),
    ("silent", "quiet"),
    ("premium", "deluxe"),
    ("includes", "features"),
];

/// Filler words for long textual descriptions.
pub const FILLERS: &[&str] = &[
    "includes", "features", "designed", "perfect", "ideal", "quality", "easy", "use", "new",
    "great", "high", "performance", "technology", "system", "built", "allows", "provides",
    "supports", "powerful", "convenient", "innovative", "versatile", "reliable",
];

/// Author first-name initials and names.
pub const FIRST_NAMES: &[&str] = &[
    "james", "maria", "wei", "anna", "david", "elena", "rakesh", "yuki", "pedro", "ingrid",
    "omar", "chen", "laura", "marco", "priya", "ivan", "sofia", "hans", "akira", "fatima",
    "george", "nina", "carlos", "mei", "peter", "olga", "ravi", "emma", "jose", "lin",
];

/// Author surnames.
pub const LAST_NAMES: &[&str] = &[
    "smith", "garcia", "zhang", "johnson", "mueller", "rossi", "patel", "tanaka", "silva",
    "larsen", "hassan", "chen", "brown", "ferrari", "kumar", "petrov", "lopez", "schmidt",
    "sato", "ali", "jones", "ivanova", "santos", "wang", "miller", "volkov", "rao", "davis",
    "martinez", "liu",
];

/// Database/CS paper title words.
pub const TITLE_WORDS: &[&str] = &[
    "query", "optimization", "distributed", "database", "systems", "learning", "efficient",
    "scalable", "indexing", "mining", "streams", "graphs", "parallel", "transactions",
    "semantic", "integration", "matching", "entity", "resolution", "clustering",
    "classification", "approximate", "algorithms", "adaptive", "framework", "processing",
    "storage", "memory", "cloud", "incremental", "joins", "views", "schema", "evolution",
    "privacy", "secure", "temporal", "spatial", "probabilistic", "ranking",
];

/// Publication venues.
pub const VENUES: &[&str] = &[
    "sigmod", "vldb", "icde", "edbt", "kdd", "cikm", "icdm", "www", "sigir", "pods",
    "sigmod record", "vldb journal", "tods", "tkde", "acm trans database syst",
];

/// Beer names (adjective + noun composition handled by the factory).
pub const BEER_ADJECTIVES: &[&str] = &[
    "hoppy", "golden", "dark", "amber", "imperial", "old", "wild", "burning", "frozen",
    "midnight", "raging", "lazy", "crooked", "iron", "lucky", "grand", "royal", "rustic",
];

/// Beer nouns.
pub const BEER_NOUNS: &[&str] = &[
    "ale", "lager", "stout", "porter", "pilsner", "ipa", "wheat", "bock", "dubbel", "tripel",
    "saison", "bitter", "brown", "red", "barleywine", "kolsch",
];

/// Brewery name stems.
pub const BREWERIES: &[&str] = &[
    "stone", "sierra", "anchor", "founders", "bell", "harpoon", "dogfish", "lagunitas",
    "rogue", "deschutes", "odell", "avery", "victory", "troegs", "smuttynose", "cigar",
];

/// Beer styles.
pub const BEER_STYLES: &[&str] = &[
    "american ipa", "imperial stout", "pale ale", "amber lager", "hefeweizen", "pilsner",
    "porter", "saison", "barleywine", "brown ale", "blonde ale", "oatmeal stout",
];

/// Music genres.
pub const GENRES: &[&str] = &[
    "rock", "pop", "jazz", "blues", "country", "electronic", "hip hop", "classical", "folk",
    "metal", "reggae", "soul", "dance", "alternative", "indie",
];

/// Artist name words.
pub const ARTIST_WORDS: &[&str] = &[
    "crystal", "velvet", "electric", "midnight", "silver", "neon", "phantom", "echo", "stellar",
    "wildfire", "horizon", "atlas", "aurora", "cobalt", "ember", "falcon", "harbor", "indigo",
];

/// Song/album title words.
pub const SONG_WORDS: &[&str] = &[
    "love", "night", "dream", "heart", "fire", "rain", "summer", "road", "light", "shadow",
    "dance", "home", "river", "sky", "stars", "ocean", "moon", "storm", "golden", "broken",
    "forever", "yesterday", "tomorrow", "paradise", "freedom", "thunder", "whisper", "echoes",
];

/// Restaurant name words.
pub const RESTAURANT_WORDS: &[&str] = &[
    "golden", "dragon", "olive", "garden", "blue", "plate", "corner", "bistro", "grill",
    "kitchen", "house", "palace", "cafe", "terrace", "villa", "harvest", "spice", "ember",
];

/// Cuisine types.
pub const CUISINES: &[&str] = &[
    "italian", "french", "chinese", "mexican", "japanese", "american", "thai", "indian",
    "mediterranean", "steakhouses", "seafood", "bbq", "delis", "pizza",
];

/// Cities.
pub const CITIES: &[&str] = &[
    "new york", "los angeles", "chicago", "atlanta", "san francisco", "boston", "seattle",
    "miami", "denver", "austin", "portland", "nashville",
];

/// Street names.
pub const STREETS: &[&str] = &[
    "main st", "broadway", "oak ave", "elm st", "park blvd", "sunset blvd", "market st",
    "lake shore dr", "pine st", "union sq", "college ave", "river rd",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_reasonably_sized() {
        for (name, pool) in [
            ("BRANDS", BRANDS),
            ("SOFTWARE_VENDORS", SOFTWARE_VENDORS),
            ("SOFTWARE_PRODUCTS", SOFTWARE_PRODUCTS),
            ("PRODUCT_NOUNS", PRODUCT_NOUNS),
            ("TITLE_WORDS", TITLE_WORDS),
            ("VENUES", VENUES),
            ("LAST_NAMES", LAST_NAMES),
            ("SONG_WORDS", SONG_WORDS),
        ] {
            assert!(pool.len() >= 10, "{name} too small ({})", pool.len());
        }
    }

    #[test]
    fn pools_have_no_duplicates() {
        for pool in [BRANDS, PRODUCT_NOUNS, TITLE_WORDS, SONG_WORDS, MODIFIERS] {
            let mut v = pool.to_vec();
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), pool.len(), "duplicate entries in pool");
        }
    }

    #[test]
    fn synonyms_are_distinct_words() {
        for (a, b) in SYNONYMS {
            assert_ne!(a, b);
        }
    }
}
