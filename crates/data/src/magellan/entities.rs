//! Per-domain base-entity factories.
//!
//! A *base* is the canonical ground-truth entity; the generator derives the
//! two catalog views of a matching pair from one base, and hard negatives
//! from a sibling base that shares its discriminating context (brand, venue,
//! artist, …) but not its identity.

use super::vocab::*;
use wym_linalg::Rng64;

/// The entity domain behind each benchmark dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Domain {
    /// DBLP / GoogleScholar / ACM citations.
    Bibliography,
    /// Amazon-Google software products.
    Software,
    /// Walmart-Amazon electronics.
    Electronics,
    /// BeerAdvo-RateBeer.
    Beer,
    /// iTunes-Amazon songs.
    Music,
    /// Fodors-Zagats restaurants.
    Restaurant,
    /// Abt-Buy long textual product descriptions.
    TextualProduct,
}

impl Domain {
    /// The dataset schema of this domain.
    pub fn schema(self) -> Vec<&'static str> {
        match self {
            Domain::Bibliography => vec!["title", "authors", "venue", "year"],
            Domain::Software => vec!["title", "manufacturer", "price"],
            Domain::Electronics => vec!["title", "category", "brand", "modelno", "price"],
            Domain::Beer => vec!["beer_name", "brewery", "style", "abv"],
            Domain::Music => vec!["song_name", "artist", "album", "genre", "price", "released"],
            Domain::Restaurant => vec!["name", "address", "city", "phone", "type"],
            Domain::TextualProduct => vec!["name", "description", "price"],
        }
    }
}

fn pick<'a>(pool: &'a [&'a str], rng: &mut Rng64) -> &'a str {
    pool[rng.gen_range(pool.len())]
}

fn pick_n(pool: &[&str], n: usize, rng: &mut Rng64) -> Vec<String> {
    let idx = rng.sample_indices(pool.len(), n);
    idx.into_iter().map(|i| pool[i].to_string()).collect()
}

/// A random digit code of the given length.
fn digit_code(len: usize, rng: &mut Rng64) -> String {
    (0..len).map(|_| char::from(b'0' + rng.gen_range(10) as u8)).collect()
}

/// A model code like `dslra200w`.
fn model_code(rng: &mut Rng64) -> String {
    let letters: String =
        (0..2 + rng.gen_range(3)).map(|_| char::from(b'a' + rng.gen_range(26) as u8)).collect();
    let digits = digit_code(2 + rng.gen_range(3), rng);
    let suffix = if rng.gen_bool(0.5) {
        char::from(b'a' + rng.gen_range(26) as u8).to_string()
    } else {
        String::new()
    };
    format!("{letters}{digits}{suffix}")
}

/// Attribute values of one base entity.
pub fn make_base(domain: Domain, rng: &mut Rng64) -> Vec<String> {
    match domain {
        Domain::Bibliography => {
            let title = pick_n(TITLE_WORDS, 4 + rng.gen_range(4), rng).join(" ");
            let n_auth = 1 + rng.gen_range(3);
            let authors: Vec<String> = (0..n_auth)
                .map(|_| format!("{} {}", pick(FIRST_NAMES, rng), pick(LAST_NAMES, rng)))
                .collect();
            let venue = pick(VENUES, rng).to_string();
            let year = (1992 + rng.gen_range(24)).to_string();
            vec![title, authors.join(", "), venue, year]
        }
        Domain::Software => {
            let vendor = pick(SOFTWARE_VENDORS, rng).to_string();
            let product = pick_n(SOFTWARE_PRODUCTS, 1 + rng.gen_range(2), rng).join(" ");
            let edition = pick_n(SOFTWARE_EDITIONS, 1 + rng.gen_range(2), rng).join(" ");
            let version = format!("{}.{}", 1 + rng.gen_range(12), rng.gen_range(10));
            let code = digit_code(8, rng);
            let title = format!("{product} {edition} {version} {code}");
            let price = format!("{:.2}", 20.0 + rng.gen_f64() * 480.0);
            vec![title, vendor, price]
        }
        Domain::Electronics => {
            let brand = pick(BRANDS, rng).to_string();
            let category = pick(CATEGORIES, rng).to_string();
            let modelno = model_code(rng);
            let noun = pick(PRODUCT_NOUNS, rng);
            let mods = pick_n(MODIFIERS, 1 + rng.gen_range(3), rng).join(" ");
            let title = format!("{brand} {mods} {noun} {modelno}");
            let price = format!("{:.2}", 10.0 + rng.gen_f64() * 990.0);
            vec![title, category, brand, modelno, price]
        }
        Domain::Beer => {
            let name = format!("{} {}", pick(BEER_ADJECTIVES, rng), pick(BEER_NOUNS, rng));
            let brewery = format!("{} brewing", pick(BREWERIES, rng));
            let style = pick(BEER_STYLES, rng).to_string();
            let abv = format!("{:.1}", 4.0 + rng.gen_f64() * 8.0);
            vec![name, brewery, style, abv]
        }
        Domain::Music => {
            let song = pick_n(SONG_WORDS, 2 + rng.gen_range(3), rng).join(" ");
            let artist = format!("{} {}", pick(ARTIST_WORDS, rng), pick(ARTIST_WORDS, rng));
            let album = pick_n(SONG_WORDS, 2, rng).join(" ");
            let genre = pick(GENRES, rng).to_string();
            let price = format!("{:.2}", 0.69 + rng.gen_f64() * 1.3);
            let released = format!(
                "{}-{:02}-{:02}",
                2000 + rng.gen_range(16),
                1 + rng.gen_range(12),
                1 + rng.gen_range(28)
            );
            vec![song, artist, album, genre, price, released]
        }
        Domain::Restaurant => {
            let name =
                format!("{} {}", pick(RESTAURANT_WORDS, rng), pick(RESTAURANT_WORDS, rng));
            let address = format!("{} {}", 10 + rng.gen_range(990), pick(STREETS, rng));
            let city = pick(CITIES, rng).to_string();
            let phone = format!(
                "{}-{}-{}",
                200 + rng.gen_range(700),
                digit_code(3, rng),
                digit_code(4, rng)
            );
            let cuisine = pick(CUISINES, rng).to_string();
            vec![name, address, city, phone, cuisine]
        }
        Domain::TextualProduct => {
            let brand = pick(BRANDS, rng).to_string();
            let noun = pick(PRODUCT_NOUNS, rng).to_string();
            let code = model_code(rng);
            let name = format!("{brand} {noun} {code}");
            let features = pick_n(MODIFIERS, 4 + rng.gen_range(3), rng);
            let fillers = pick_n(FILLERS, 5 + rng.gen_range(4), rng);
            // Interleave features with filler prose.
            let mut description = Vec::new();
            for (i, f) in fillers.iter().enumerate() {
                description.push(f.clone());
                if i < features.len() {
                    description.push(features[i].clone());
                }
            }
            description.push(noun);
            description.push(brand);
            let price = format!("{:.2}", 15.0 + rng.gen_f64() * 600.0);
            vec![name, description.join(" "), price]
        }
    }
}

/// A *sibling* base: a **near-duplicate** of `base` that is nevertheless a
/// different real-world entity — only the identity-bearing fields change
/// (model number, software version, track name, street number…). These
/// drive the hard negatives of challenge R1: most tokens pair, yet the
/// label is non-match, so the matcher must learn that a handful of
/// decision units (codes, versions) dominate the decision.
pub fn make_sibling(domain: Domain, base: &[String], rng: &mut Rng64) -> Vec<String> {
    let mut out: Vec<String> = base.to_vec();
    match domain {
        Domain::Bibliography => {
            // Same venue and year; the title shares most words but swaps a
            // couple (a sibling paper from the same group / session); one
            // author is replaced.
            let mut words: Vec<String> =
                base[0].split_whitespace().map(str::to_string).collect();
            let n_swap = 1 + rng.gen_range(2.min(words.len()));
            for _ in 0..n_swap {
                let i = rng.gen_range(words.len());
                words[i] = pick(TITLE_WORDS, rng).to_string();
            }
            out[0] = words.join(" ");
            let mut authors: Vec<String> =
                base[1].split(", ").map(str::to_string).collect();
            let i = rng.gen_range(authors.len());
            authors[i] = format!("{} {}", pick(FIRST_NAMES, rng), pick(LAST_NAMES, rng));
            out[1] = authors.join(", ");
        }
        Domain::Software => {
            // Same vendor, same product family and edition; only the
            // version and the license code change (plus the price).
            let new_version = format!("{}.{}", 1 + rng.gen_range(12), rng.gen_range(10));
            let new_code = digit_code(8, rng);
            let words: Vec<String> = base[0]
                .split_whitespace()
                .map(|w| {
                    if w.contains('.') && w.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                        new_version.clone()
                    } else if w.len() == 8 && w.chars().all(|c| c.is_ascii_digit()) {
                        new_code.clone()
                    } else {
                        w.to_string()
                    }
                })
                .collect();
            out[0] = words.join(" ");
            if rng.gen_bool(0.5) {
                out[2] = format!("{:.2}", 20.0 + rng.gen_f64() * 480.0);
            }
        }
        Domain::Electronics => {
            // Identical product line, different model number; half the time
            // even the price matches (same price point of a product family).
            let new_model = model_code(rng);
            out[0] = base[0].replace(base[3].as_str(), &new_model);
            out[3] = new_model;
            if rng.gen_bool(0.5) {
                out[4] = format!("{:.2}", 10.0 + rng.gen_f64() * 990.0);
            }
            // Occasionally a different variant word too.
            if rng.gen_bool(0.4) {
                out[0] = format!("{} {}", out[0], pick(MODIFIERS, rng));
            }
        }
        Domain::Beer => {
            // Same brewery and style family; the beer name shares one word.
            let keep_adj = rng.gen_bool(0.5);
            let parts: Vec<&str> = base[0].split_whitespace().collect();
            out[0] = if keep_adj && !parts.is_empty() {
                format!("{} {}", parts[0], pick(BEER_NOUNS, rng))
            } else {
                format!("{} {}", pick(BEER_ADJECTIVES, rng), parts.last().unwrap_or(&"ale"))
            };
            out[3] = format!("{:.1}", 4.0 + rng.gen_f64() * 8.0);
        }
        Domain::Music => {
            // Same artist, album, genre — a different track of the album.
            out[0] = pick_n(SONG_WORDS, 2 + rng.gen_range(3), rng).join(" ");
            out[4] = format!("{:.2}", 0.69 + rng.gen_f64() * 1.3);
        }
        Domain::Restaurant => {
            // Same city and cuisine; a nearby competitor sharing a name word.
            let parts: Vec<&str> = base[0].split_whitespace().collect();
            out[0] = format!(
                "{} {}",
                parts.first().unwrap_or(&"golden"),
                pick(RESTAURANT_WORDS, rng)
            );
            out[1] = format!("{} {}", 10 + rng.gen_range(990), pick(STREETS, rng));
            out[3] = format!(
                "{}-{}-{}",
                200 + rng.gen_range(700),
                digit_code(3, rng),
                digit_code(4, rng)
            );
        }
        Domain::TextualProduct => {
            // Same brand and product noun, different code; the prose shares
            // most feature words.
            let new_code = model_code(rng);
            let parts: Vec<&str> = base[0].split_whitespace().collect();
            if parts.len() >= 3 {
                out[0] = format!("{} {} {new_code}", parts[0], parts[1]);
            }
            let mut words: Vec<String> =
                base[1].split_whitespace().map(str::to_string).collect();
            for _ in 0..2 + rng.gen_range(3) {
                if words.is_empty() {
                    break;
                }
                let i = rng.gen_range(words.len());
                words[i] = pick(MODIFIERS, rng).to_string();
            }
            out[1] = words.join(" ");
            out[2] = format!("{:.2}", 15.0 + rng.gen_f64() * 600.0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_matches_schema_width() {
        let mut rng = Rng64::new(1);
        for d in [
            Domain::Bibliography,
            Domain::Software,
            Domain::Electronics,
            Domain::Beer,
            Domain::Music,
            Domain::Restaurant,
            Domain::TextualProduct,
        ] {
            let base = make_base(d, &mut rng);
            assert_eq!(base.len(), d.schema().len(), "{d:?}");
            assert!(base.iter().all(|v| !v.is_empty()), "{d:?}: {base:?}");
        }
    }

    #[test]
    fn siblings_share_context_but_differ() {
        let mut rng = Rng64::new(2);
        for _ in 0..20 {
            let base = make_base(Domain::Electronics, &mut rng);
            let sib = make_sibling(Domain::Electronics, &base, &mut rng);
            assert_eq!(base[2], sib[2], "brand must be shared");
            assert_eq!(base[1], sib[1], "category must be shared");
            assert_ne!(base[3], sib[3], "model numbers must differ");
        }
    }

    #[test]
    fn music_siblings_are_same_album_different_song() {
        let mut rng = Rng64::new(3);
        let base = make_base(Domain::Music, &mut rng);
        let sib = make_sibling(Domain::Music, &base, &mut rng);
        assert_eq!(base[1], sib[1]);
        assert_eq!(base[2], sib[2]);
        assert_ne!(base[0], sib[0]);
    }

    #[test]
    fn textual_descriptions_are_long() {
        let mut rng = Rng64::new(4);
        let base = make_base(Domain::TextualProduct, &mut rng);
        assert!(
            base[1].split_whitespace().count() >= 8,
            "description should be prose: {}",
            base[1]
        );
    }

    #[test]
    fn determinism_per_seed() {
        let a = make_base(Domain::Beer, &mut Rng64::new(9));
        let b = make_base(Domain::Beer, &mut Rng64::new(9));
        assert_eq!(a, b);
    }
}
