//! The EM data model: schemas, entities, labeled record pairs, datasets.

use serde::{Deserialize, Serialize};
use wym_linalg::Rng64;

/// An ordered list of attribute names shared by both entities of a record.
///
/// The paper assumes "entity descriptions have the same schema" and calls
/// the attribute in the second description corresponding to one selected in
/// the first the *matching attribute* (§4); alignment is positional.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Attribute names, in order.
    pub attributes: Vec<String>,
}

impl Schema {
    /// Builds a schema from attribute names.
    pub fn new<S: Into<String>>(attributes: Vec<S>) -> Self {
        Self { attributes: attributes.into_iter().map(Into::into).collect() }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Index of an attribute by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == name)
    }
}

/// One entity description: attribute values aligned with a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entity {
    /// Attribute values, index-aligned with the schema.
    pub values: Vec<String>,
}

impl Entity {
    /// Builds an entity from values.
    pub fn new<S: Into<String>>(values: Vec<S>) -> Self {
        Self { values: values.into_iter().map(Into::into).collect() }
    }

    /// The full description as one string (attribute values joined).
    pub fn full_text(&self) -> String {
        self.values.join(" ")
    }
}

/// A labeled EM record: a pair of entity descriptions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordPair {
    /// Stable identifier within the dataset.
    pub id: u32,
    /// The left entity description.
    pub left: Entity,
    /// The right entity description.
    pub right: Entity,
    /// `true` when the descriptions refer to the same real-world entity.
    pub label: bool,
}

/// The benchmark's dataset families (Table 2, "Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetType {
    /// Clean, well-aligned attributes.
    Structured,
    /// Long free-text descriptions (Abt-Buy).
    Textual,
    /// Values shuffled across attributes.
    Dirty,
}

impl DatasetType {
    /// The label used in Table 2.
    pub fn as_str(self) -> &'static str {
        match self {
            DatasetType::Structured => "Structured",
            DatasetType::Textual => "Textual",
            DatasetType::Dirty => "Dirty",
        }
    }
}

/// A complete EM dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmDataset {
    /// Benchmark short name (e.g. `S-DG`).
    pub name: String,
    /// Dataset family.
    pub dataset_type: DatasetType,
    /// Shared schema of both entity descriptions.
    pub schema: Schema,
    /// Labeled record pairs.
    pub pairs: Vec<RecordPair>,
}

impl EmDataset {
    /// Number of record pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the dataset holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Fraction of pairs labeled as matches, in percent (Table 2's "% Match").
    pub fn match_rate_pct(&self) -> f32 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        100.0 * self.pairs.iter().filter(|p| p.label).count() as f32 / self.pairs.len() as f32
    }

    /// Gold labels as 0/1.
    pub fn labels(&self) -> Vec<u8> {
        self.pairs.iter().map(|p| u8::from(p.label)).collect()
    }

    /// A new dataset holding the pairs selected by `idx` (in that order).
    pub fn subset(&self, idx: &[usize]) -> EmDataset {
        EmDataset {
            name: self.name.clone(),
            dataset_type: self.dataset_type,
            schema: self.schema.clone(),
            pairs: idx.iter().map(|&i| self.pairs[i].clone()).collect(),
        }
    }

    /// A label-stratified random subsample of at most `n` pairs, preserving
    /// the match rate. Used by the experiment harness to cap runtime on the
    /// large datasets; `--full` runs skip it.
    pub fn subsample(&self, n: usize, seed: u64) -> EmDataset {
        if n >= self.pairs.len() {
            return self.clone();
        }
        let mut rng = Rng64::new(seed);
        let mut pos: Vec<usize> = Vec::new();
        let mut neg: Vec<usize> = Vec::new();
        for (i, p) in self.pairs.iter().enumerate() {
            if p.label {
                pos.push(i);
            } else {
                neg.push(i);
            }
        }
        rng.shuffle(&mut pos);
        rng.shuffle(&mut neg);
        let n_pos = ((n as f64) * pos.len() as f64 / self.pairs.len() as f64).round() as usize;
        let n_pos = n_pos.clamp(1.min(pos.len()), pos.len()).min(n);
        let n_neg = (n - n_pos).min(neg.len());
        let mut idx: Vec<usize> = pos.into_iter().take(n_pos).collect();
        idx.extend(neg.into_iter().take(n_neg));
        idx.sort_unstable();
        self.subset(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> EmDataset {
        let schema = Schema::new(vec!["name", "price"]);
        let pairs = (0..10)
            .map(|i| RecordPair {
                id: i,
                left: Entity::new(vec![format!("item {i}"), format!("{i}")]),
                right: Entity::new(vec![format!("item {i}"), format!("{i}")]),
                label: i % 5 == 0, // 20% matches
            })
            .collect();
        EmDataset { name: "toy".into(), dataset_type: DatasetType::Structured, schema, pairs }
    }

    #[test]
    fn match_rate_pct() {
        assert!((toy().match_rate_pct() - 20.0).abs() < 1e-5);
    }

    #[test]
    fn labels_align_with_pairs() {
        let d = toy();
        let labels = d.labels();
        for (p, l) in d.pairs.iter().zip(&labels) {
            assert_eq!(u8::from(p.label), *l);
        }
    }

    #[test]
    fn subset_keeps_order_and_metadata() {
        let d = toy();
        let s = d.subset(&[5, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.pairs[0].id, 5);
        assert_eq!(s.pairs[1].id, 0);
        assert_eq!(s.schema, d.schema);
    }

    #[test]
    fn subsample_preserves_match_rate_roughly() {
        let d = toy();
        let s = d.subsample(5, 7);
        assert_eq!(s.len(), 5);
        let matches = s.pairs.iter().filter(|p| p.label).count();
        assert!((1..=2).contains(&matches), "matches {matches}");
    }

    #[test]
    fn subsample_larger_than_dataset_is_identity() {
        let d = toy();
        let s = d.subsample(100, 1);
        assert_eq!(s.len(), d.len());
    }

    #[test]
    fn schema_index_lookup() {
        let s = Schema::new(vec!["name", "price"]);
        assert_eq!(s.index_of("price"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn entity_full_text_joins_values() {
        let e = Entity::new(vec!["digital camera", "37.63"]);
        assert_eq!(e.full_text(), "digital camera 37.63");
    }
}
