//! Context mixing — the "contextualized embedding" behaviour of BERT.
//!
//! WYM generates token embeddings "by averaging the hidden states (from the
//! second to the last layer) of the BERT network", a choice the paper
//! motivates as "a good trade-off in representing in the embeddings the
//! target feature and its context" (§4.1.1). This encoder reproduces that
//! trade-off explicitly: each token vector is a convex blend of itself, its
//! in-attribute neighbours, its attribute centroid, and the record centroid.

use serde::{Deserialize, Serialize};
use wym_linalg::vector::{axpy, normalize};

/// Blending weights of the context encoder. They are normalized at use, so
/// only ratios matter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContextEncoder {
    /// Weight of the token's own static vector.
    pub self_weight: f32,
    /// Weight of the mean of the adjacent tokens in the same attribute.
    pub neighbor_weight: f32,
    /// Weight of the attribute centroid.
    pub attribute_weight: f32,
    /// Weight of the whole-record centroid.
    pub record_weight: f32,
}

impl Default for ContextEncoder {
    fn default() -> Self {
        Self {
            self_weight: 0.72,
            neighbor_weight: 0.10,
            attribute_weight: 0.10,
            record_weight: 0.08,
        }
    }
}

impl ContextEncoder {
    /// A pass-through encoder (no context; used to ablate R4).
    pub fn identity() -> Self {
        Self { self_weight: 1.0, neighbor_weight: 0.0, attribute_weight: 0.0, record_weight: 0.0 }
    }

    /// Contextualizes per-attribute static vectors; output has the same
    /// shape and unit-norm vectors.
    pub fn contextualize(&self, static_vecs: &[Vec<Vec<f32>>]) -> Vec<Vec<Vec<f32>>> {
        let dim = static_vecs
            .iter()
            .flat_map(|a| a.iter())
            .map(Vec::len)
            .next()
            .unwrap_or(0);
        if dim == 0 {
            return static_vecs.to_vec();
        }

        // Record centroid.
        let mut record_centroid = vec![0.0f32; dim];
        let mut count = 0usize;
        for attr in static_vecs {
            for v in attr {
                axpy(1.0, v, &mut record_centroid);
                count += 1;
            }
        }
        if count > 0 {
            let inv = 1.0 / count as f32;
            record_centroid.iter_mut().for_each(|v| *v *= inv);
        }

        let total =
            self.self_weight + self.neighbor_weight + self.attribute_weight + self.record_weight;
        let total = if total <= 0.0 { 1.0 } else { total };

        static_vecs
            .iter()
            .map(|attr| {
                // Attribute centroid.
                let mut attr_centroid = vec![0.0f32; dim];
                for v in attr {
                    axpy(1.0, v, &mut attr_centroid);
                }
                if !attr.is_empty() {
                    let inv = 1.0 / attr.len() as f32;
                    attr_centroid.iter_mut().for_each(|v| *v *= inv);
                }
                attr.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let mut out = vec![0.0f32; dim];
                        axpy(self.self_weight / total, v, &mut out);
                        // Mean of the immediate neighbours (when present).
                        let mut nbr = vec![0.0f32; dim];
                        let mut n_nbr = 0.0f32;
                        if i > 0 {
                            axpy(1.0, &attr[i - 1], &mut nbr);
                            n_nbr += 1.0;
                        }
                        if i + 1 < attr.len() {
                            axpy(1.0, &attr[i + 1], &mut nbr);
                            n_nbr += 1.0;
                        }
                        if n_nbr > 0.0 {
                            axpy(self.neighbor_weight / total / n_nbr, &nbr, &mut out);
                        } else {
                            // Lone token: fold the neighbour mass into self.
                            axpy(self.neighbor_weight / total, v, &mut out);
                        }
                        axpy(self.attribute_weight / total, &attr_centroid, &mut out);
                        axpy(self.record_weight / total, &record_centroid, &mut out);
                        normalize(&mut out);
                        out
                    })
                    .collect()
            })
            .collect()
    }
}

impl ContextEncoder {
    /// [`ContextEncoder::contextualize`] over flat row-major storage — the
    /// fused embed path. `statics` and `out` are `rows * dim` arenas where
    /// attribute `a` owns rows `attr_offsets[a] .. attr_offsets[a + 1]`;
    /// `out` must arrive zeroed (the reference path starts each output
    /// vector at `vec![0.0; dim]`). The centroid sums, the per-token blend,
    /// and the normalization run in the identical order with the identical
    /// `axpy` kernel calls as the nested reference, so the output rows are
    /// bit-identical to its output vectors.
    ///
    /// `centroid` / `attr_centroid` / `nbr` are caller-owned `dim`-long
    /// scratch buffers (zeroing them here is part of the recipe).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn contextualize_flat(
        &self,
        statics: &[f32],
        attr_offsets: &[usize],
        dim: usize,
        out: &mut [f32],
        centroid: &mut [f32],
        attr_centroid: &mut [f32],
        nbr: &mut [f32],
    ) {
        let rows = *attr_offsets.last().unwrap_or(&0);
        if rows == 0 || dim == 0 {
            return;
        }
        debug_assert_eq!(statics.len(), rows * dim);
        debug_assert_eq!(out.len(), rows * dim);
        let srow = |r: usize| &statics[r * dim..(r + 1) * dim];

        // Record centroid, token rows in (attribute, position) order.
        centroid.fill(0.0);
        for r in 0..rows {
            axpy(1.0, srow(r), centroid);
        }
        let inv = 1.0 / rows as f32;
        centroid.iter_mut().for_each(|v| *v *= inv);

        let total =
            self.self_weight + self.neighbor_weight + self.attribute_weight + self.record_weight;
        let total = if total <= 0.0 { 1.0 } else { total };

        for a in 0..attr_offsets.len() - 1 {
            let (r0, r1) = (attr_offsets[a], attr_offsets[a + 1]);
            // Attribute centroid.
            attr_centroid.fill(0.0);
            for r in r0..r1 {
                axpy(1.0, srow(r), attr_centroid);
            }
            if r1 > r0 {
                let inv = 1.0 / (r1 - r0) as f32;
                attr_centroid.iter_mut().for_each(|v| *v *= inv);
            }
            for r in r0..r1 {
                let out_row = &mut out[r * dim..(r + 1) * dim];
                axpy(self.self_weight / total, srow(r), out_row);
                // Mean of the immediate neighbours (when present).
                nbr.fill(0.0);
                let mut n_nbr = 0.0f32;
                if r > r0 {
                    axpy(1.0, srow(r - 1), nbr);
                    n_nbr += 1.0;
                }
                if r + 1 < r1 {
                    axpy(1.0, srow(r + 1), nbr);
                    n_nbr += 1.0;
                }
                if n_nbr > 0.0 {
                    axpy(self.neighbor_weight / total / n_nbr, nbr, out_row);
                } else {
                    // Lone token: fold the neighbour mass into self.
                    axpy(self.neighbor_weight / total, srow(r), out_row);
                }
                axpy(self.attribute_weight / total, attr_centroid, out_row);
                axpy(self.record_weight / total, centroid, out_row);
                normalize(out_row);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wym_linalg::vector::{cosine, norm};
    use wym_linalg::Rng64;

    fn random_unit(dim: usize, rng: &mut Rng64) -> Vec<f32> {
        let mut v: Vec<f32> = (0..dim).map(|_| rng.normal() as f32).collect();
        normalize(&mut v);
        v
    }

    #[test]
    fn identity_encoder_preserves_vectors() {
        let mut rng = Rng64::new(1);
        let vecs = vec![vec![random_unit(8, &mut rng), random_unit(8, &mut rng)]];
        let out = ContextEncoder::identity().contextualize(&vecs);
        for (a, b) in vecs[0].iter().zip(&out[0]) {
            assert!(cosine(a, b) > 0.9999);
        }
    }

    #[test]
    fn output_is_unit_norm_and_same_shape() {
        let mut rng = Rng64::new(2);
        let vecs = vec![
            vec![random_unit(8, &mut rng); 3],
            vec![random_unit(8, &mut rng)],
            vec![],
        ];
        let out = ContextEncoder::default().contextualize(&vecs);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].len(), 3);
        assert_eq!(out[1].len(), 1);
        assert!(out[2].is_empty());
        for attr in &out {
            for v in attr {
                assert!((norm(v) - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn context_pulls_tokens_toward_their_attribute() {
        let mut rng = Rng64::new(3);
        let a = random_unit(16, &mut rng);
        let b = random_unit(16, &mut rng);
        let vecs = vec![vec![a.clone(), b.clone()]];
        let out = ContextEncoder::default().contextualize(&vecs);
        // After mixing, the two tokens must be more similar to each other
        // than their statics were.
        let before = cosine(&a, &b);
        let after = cosine(&out[0][0], &out[0][1]);
        assert!(after > before, "context mixing must increase within-attribute similarity");
    }

    #[test]
    fn self_signal_dominates() {
        let mut rng = Rng64::new(4);
        let a = random_unit(16, &mut rng);
        let b = random_unit(16, &mut rng);
        let vecs = vec![vec![a.clone(), b.clone()]];
        let out = ContextEncoder::default().contextualize(&vecs);
        assert!(
            cosine(&a, &out[0][0]) > cosine(&b, &out[0][0]),
            "a contextualized token must remain closest to its own static vector"
        );
    }

    #[test]
    fn empty_input_passthrough() {
        let out = ContextEncoder::default().contextualize(&[]);
        assert!(out.is_empty());
        let out = ContextEncoder::default().contextualize(&[vec![]]);
        assert_eq!(out.len(), 1);
    }
}
