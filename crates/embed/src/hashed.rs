//! Hashed character-n-gram token embeddings (fastText-style).
//!
//! Each token is decomposed into features — the whole surface form, its
//! boundary-padded character 3- and 4-grams, and its word-piece segments —
//! and every feature is hashed to a `(dimension, sign)` slot. Summing the
//! slots and normalizing yields a deterministic unit vector in which cosine
//! similarity tracks orthographic overlap, exactly the signal WYM's stable
//! marriage pairing consumes.

use serde::{Deserialize, Serialize};
use wym_linalg::rng::hash64;
use wym_linalg::vector::normalize;
use wym_tokenize::wordpiece::WordPieceVocab;

/// Deterministic hashed-feature token embedder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HashedNgramEmbedder {
    dim: usize,
    seed: u64,
    /// Weight of the whole-word feature relative to each n-gram.
    pub word_weight: f32,
    /// Optional word-piece vocabulary contributing subword features.
    pub wordpiece: Option<WordPieceVocab>,
}

impl HashedNgramEmbedder {
    /// An embedder of dimension `dim` (≥ 8) seeded by `seed`.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim >= 8, "embedding dimension must be at least 8, got {dim}");
        Self { dim, seed, word_weight: 2.0, wordpiece: None }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Adds one weighted hashed feature to the accumulator.
    fn add_feature(&self, acc: &mut [f32], feature: &str, weight: f32) {
        let h = hash64(feature.as_bytes()) ^ self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let idx = (h % self.dim as u64) as usize;
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        acc[idx] += sign * weight;
        // A second slot decorrelates collisions (two hash functions).
        let h2 = hash64(&h.to_le_bytes());
        let idx2 = (h2 % self.dim as u64) as usize;
        let sign2 = if (h2 >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        acc[idx2] += sign2 * weight * 0.7;
    }

    /// The unit embedding of a token. Deterministic; equal tokens get equal
    /// vectors.
    pub fn embed_token(&self, token: &str) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        self.embed_token_into(token, &mut acc, &mut Vec::new(), &mut String::new());
        acc
    }

    /// [`HashedNgramEmbedder::embed_token`] writing into a caller-provided
    /// slice, with reusable character and feature-string buffers — the
    /// fused embed path's allocation-free variant. The hashed features,
    /// their order, and every float update are identical to
    /// [`HashedNgramEmbedder::embed_token`], so the output is bit-identical.
    ///
    /// # Panics
    /// Panics in debug builds when `acc` is not `dim` long.
    pub fn embed_token_into(
        &self,
        token: &str,
        acc: &mut [f32],
        chars: &mut Vec<char>,
        gram: &mut String,
    ) {
        debug_assert_eq!(acc.len(), self.dim);
        acc.fill(0.0);
        if token.is_empty() {
            return;
        }
        // Whole word.
        self.add_feature(acc, token, self.word_weight);
        // Boundary-padded character n-grams.
        chars.clear();
        chars.push('<');
        chars.extend(token.chars());
        chars.push('>');
        for n in [3usize, 4] {
            if chars.len() < n {
                continue;
            }
            for start in 0..=chars.len() - n {
                gram.clear();
                gram.extend(chars[start..start + n].iter());
                self.add_feature(acc, gram, 1.0);
            }
        }
        // Word-piece segments, when a vocabulary is attached.
        if let Some(vocab) = &self.wordpiece {
            for piece in vocab.segment(token) {
                gram.clear();
                gram.push_str("wp:");
                gram.push_str(&piece);
                self.add_feature(acc, gram, 0.8);
            }
        }
        normalize(acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wym_linalg::vector::{cosine, norm};

    #[test]
    fn deterministic_and_unit_norm() {
        let e = HashedNgramEmbedder::new(64, 1);
        let a = e.embed_token("camera");
        let b = e.embed_token("camera");
        assert_eq!(a, b);
        assert!((norm(&a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_token_is_zero_vector() {
        let e = HashedNgramEmbedder::new(16, 0);
        assert!(e.embed_token("").iter().all(|&v| v == 0.0));
    }

    #[test]
    fn orthographic_similarity_orders_cosine() {
        let e = HashedNgramEmbedder::new(64, 2);
        let camera = e.embed_token("camera");
        let cameras = e.embed_token("cameras");
        let license = e.embed_token("license");
        assert!(cosine(&camera, &cameras) > 0.45, "{}", cosine(&camera, &cameras));
        assert!(cosine(&camera, &cameras) > cosine(&camera, &license) + 0.2);
    }

    #[test]
    fn product_codes_differing_in_one_digit_are_similar_not_equal() {
        let e = HashedNgramEmbedder::new(64, 2);
        let a = e.embed_token("39400416");
        let b = e.embed_token("39400417");
        let c = e.embed_token("58110000");
        let sim_ab = cosine(&a, &b);
        assert!(sim_ab > 0.5 && sim_ab < 0.999, "sim {sim_ab}");
        assert!(sim_ab > cosine(&a, &c));
    }

    #[test]
    fn different_seeds_produce_different_spaces() {
        let e1 = HashedNgramEmbedder::new(64, 1);
        let e2 = HashedNgramEmbedder::new(64, 99);
        assert_ne!(e1.embed_token("sony"), e2.embed_token("sony"));
    }

    #[test]
    fn short_tokens_still_embed() {
        let e = HashedNgramEmbedder::new(32, 3);
        let v = e.embed_token("tv");
        assert!((norm(&v) - 1.0).abs() < 1e-5);
        let u = e.embed_token("4k");
        assert!(cosine(&v, &u).abs() < 0.9, "unrelated short tokens should not collide");
    }

    #[test]
    fn wordpiece_features_change_the_vector() {
        let mut e = HashedNgramEmbedder::new(64, 4);
        let before = e.embed_token("camcorder");
        let vocab =
            WordPieceVocab::build(["cam", "corder", "camcorder"], 6, 1);
        e.wordpiece = Some(vocab);
        let after = e.embed_token("camcorder");
        assert_ne!(before, after);
        assert!(cosine(&before, &after) > 0.7, "subword features refine, not replace");
    }

    #[test]
    #[should_panic(expected = "at least 8")]
    fn rejects_tiny_dimensions() {
        let _ = HashedNgramEmbedder::new(4, 0);
    }
}
