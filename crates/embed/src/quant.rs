//! Int8 quantization of embedding tables (ROADMAP item 4b).
//!
//! The blocking ANN pass scans millions of record vectors; at f32 a
//! 1M × 64 table is 256 MB of memory traffic per scan. Quantizing each row
//! to int8 with one per-row scale cuts that 4×, and the integer dot kernel
//! ([`wym_linalg::kernels::dot_i8`]) consumes the rows directly.
//!
//! The scheme is symmetric per-row absmax: `scale = max|v| / 127`,
//! `q_i = round(v_i / scale)` (ties to even — the rounding mode the SIMD
//! converts share, see [`wym_linalg::kernels::quantize_i8`]) clamped to
//! `[-127, 127]`, reconstructing as `v_i ≈ q_i · scale`. Two properties
//! the blocking layer relies on:
//!
//! 1. **Error bound.** Rounding is to nearest, so
//!    `|v_i − q_i · scale| ≤ scale / 2 = max|v| / 254` per component. For
//!    the unit-norm record vectors the ANN layer quantizes, `max|v| ≤ 1`,
//!    giving a worst-case per-component error of `1/254 ≈ 0.004` and a
//!    cosine error well under the re-scoring margin (DESIGN.md §11 derives
//!    the bound; [`QuantizedTable::max_abs_error`] checks it empirically).
//! 2. **Determinism.** Quantization is a pure per-element function of the
//!    input — no accumulation — so the table is bit-identical for any
//!    thread count or kernel choice, and the *exact* f32 re-scoring of
//!    quantized-pass survivors (the stage that decides final candidates)
//!    never sees a quantized value at all.

use serde::{Deserialize, Serialize};

/// A row-major int8 matrix with one reconstruction scale per row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTable {
    dim: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedTable {
    /// Quantizes `rows` (all of length `dim`) with per-row absmax scales.
    ///
    /// # Panics
    /// Panics when a row's length differs from `dim`.
    pub fn from_rows<R: AsRef<[f32]>>(rows: &[R], dim: usize) -> QuantizedTable {
        if dim == 0 {
            for row in rows {
                assert_eq!(row.as_ref().len(), 0, "row length must equal table dim");
            }
            return QuantizedTable { dim, data: Vec::new(), scales: vec![0.0; rows.len()] };
        }
        let mut data = vec![0i8; rows.len() * dim];
        let mut scales = Vec::with_capacity(rows.len());
        for (row, out) in rows.iter().zip(data.chunks_exact_mut(dim)) {
            let row = row.as_ref();
            assert_eq!(row.len(), dim, "row length must equal table dim");
            scales.push(quantize_row_into(row, out));
        }
        QuantizedTable { dim, data, scales }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.scales.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.scales.is_empty()
    }

    /// Row dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The quantized row `i`.
    pub fn row(&self, i: usize) -> &[i8] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The reconstruction scale of row `i` (`value ≈ q · scale`).
    pub fn scale(&self, i: usize) -> f32 {
        self.scales[i]
    }

    /// Approximate cosine of rows `i` and `j`: the exact integer dot scaled
    /// by both row scales. For rows quantized from unit vectors this tracks
    /// the true cosine within the §11 error bound.
    pub fn approx_cosine(&self, i: usize, j: usize) -> f32 {
        wym_linalg::kernels::cosine_i8(self.row(i), self.row(j), self.scales[i], self.scales[j])
    }

    /// Reconstructs row `i` back to f32 (`q · scale` per component).
    pub fn dequantize(&self, i: usize) -> Vec<f32> {
        let s = self.scales[i];
        self.row(i).iter().map(|&q| q as f32 * s).collect()
    }

    /// Bytes of quantized payload (rows + scales), for footprint telemetry.
    pub fn payload_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// The raw storage — `(dim, codes, scales)` — in the fixed layout model
    /// artifacts persist (row-major i8 codes, one f32 scale per row).
    pub fn raw_parts(&self) -> (usize, &[i8], &[f32]) {
        (self.dim, &self.data, &self.scales)
    }

    /// Rebuilds a table from raw storage — the inverse of
    /// [`QuantizedTable::raw_parts`]. Bit-exact: quantization is never
    /// re-run, the codes and scales are adopted verbatim.
    ///
    /// # Panics
    /// Panics when `data.len() != scales.len() * dim` (or when `dim == 0`
    /// while codes are present): the layout would be unreadable.
    pub fn from_raw_parts(dim: usize, data: Vec<i8>, scales: Vec<f32>) -> QuantizedTable {
        assert_eq!(
            data.len(),
            scales.len() * dim,
            "quantized payload must hold scales.len() rows of dim codes"
        );
        QuantizedTable { dim, data, scales }
    }

    /// Largest per-component reconstruction error against `rows` — the
    /// empirical check of the `max|v| / 254` bound.
    pub fn max_abs_error<R: AsRef<[f32]>>(&self, rows: &[R]) -> f32 {
        rows.iter()
            .enumerate()
            .flat_map(|(i, row)| {
                let s = self.scales[i];
                row.as_ref()
                    .iter()
                    .zip(self.row(i))
                    .map(move |(&v, &q)| (v - q as f32 * s).abs())
                    .collect::<Vec<f32>>()
            })
            .fold(0.0f32, f32::max)
    }
}

/// Quantizes one row: symmetric absmax to int8. An all-zero (or empty) row
/// gets scale 0 and all-zero codes, reconstructing exactly.
pub fn quantize_row(row: &[f32]) -> (Vec<i8>, f32) {
    let mut q = vec![0i8; row.len()];
    let scale = quantize_row_into(row, &mut q);
    (q, scale)
}

/// [`quantize_row`] into a caller-provided buffer (no allocation), through
/// the dispatched [`wym_linalg::kernels::quantize_i8`] / [`max_abs`]
/// kernels — the absmax pass and the round-to-nearest-even conversion both
/// run SIMD-wide where the host supports it, bit-identical to the scalar
/// reference on every backend.
///
/// [`max_abs`]: wym_linalg::kernels::max_abs
///
/// # Panics
/// Panics in debug builds when `out.len() != row.len()`.
pub fn quantize_row_into(row: &[f32], out: &mut [i8]) -> f32 {
    debug_assert_eq!(row.len(), out.len());
    let max_abs = wym_linalg::kernels::max_abs(row);
    if max_abs == 0.0 {
        out.fill(0);
        return 0.0;
    }
    wym_linalg::kernels::quantize_i8(row, 127.0 / max_abs, out);
    max_abs / 127.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use wym_linalg::vector::{cosine, normalize};
    use wym_linalg::Rng64;

    fn unit_rows(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = Rng64::new(seed);
        (0..n)
            .map(|_| {
                let mut v: Vec<f32> = (0..dim).map(|_| rng.normal() as f32).collect();
                normalize(&mut v);
                v
            })
            .collect()
    }

    #[test]
    fn round_trip_error_is_within_bound() {
        let rows = unit_rows(64, 48, 3);
        let table = QuantizedTable::from_rows(&rows, 48);
        // Per-component bound: max|v| / 254 ≤ 1/254 for unit rows, plus one
        // half-ulp of slack for the scale division itself.
        assert!(table.max_abs_error(&rows) <= 1.0 / 254.0 + 1e-6);
    }

    #[test]
    fn approx_cosine_tracks_exact_cosine() {
        let rows = unit_rows(32, 64, 9);
        let table = QuantizedTable::from_rows(&rows, 64);
        for i in 0..rows.len() {
            for j in 0..rows.len() {
                let exact = cosine(&rows[i], &rows[j]);
                let approx = table.approx_cosine(i, j);
                assert!(
                    (exact - approx).abs() < 0.05,
                    "rows {i},{j}: exact {exact} vs quantized {approx}"
                );
            }
        }
    }

    #[test]
    fn zero_row_reconstructs_exactly() {
        let rows = vec![vec![0.0f32; 16], vec![1.0f32; 16]];
        let table = QuantizedTable::from_rows(&rows, 16);
        assert_eq!(table.scale(0), 0.0);
        assert_eq!(table.dequantize(0), vec![0.0f32; 16]);
        assert_eq!(table.approx_cosine(0, 1), 0.0);
    }

    #[test]
    fn extreme_components_hit_but_never_exceed_127() {
        let (q, scale) = quantize_row(&[1.0, -1.0, 0.5, 0.0]);
        assert_eq!(q[0], 127);
        assert_eq!(q[1], -127);
        assert!((scale - 1.0 / 127.0).abs() < 1e-9);
        assert!(q.iter().all(|&v| (-127..=127).contains(&v)));
    }

    #[test]
    fn payload_is_4x_smaller_than_f32_rows() {
        let rows = unit_rows(100, 64, 1);
        let table = QuantizedTable::from_rows(&rows, 64);
        let f32_bytes = 100 * 64 * 4;
        assert!(table.payload_bytes() < f32_bytes / 3, "{}", table.payload_bytes());
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn mismatched_row_length_panics() {
        let _ = QuantizedTable::from_rows(&[vec![0.0f32; 8], vec![0.0f32; 9]], 8);
    }
}
