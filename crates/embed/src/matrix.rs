//! Flat per-entity embedding storage and the fused-path scratch arenas.
//!
//! The original pipeline stored one `Vec<Vec<Vec<f32>>>` per entity —
//! attribute → token → vector — which costs one heap allocation per token
//! *per stage* (static hashing, contextualization, projection) plus the
//! nested spines. TrackingAlloc attribution showed this churn dominating
//! the `embed` span. [`EmbedMatrix`] replaces the nested shape with one
//! flat row-major `Vec<f32>` (token rows in attribute order) plus an
//! attribute offset table, and [`EmbedScratch`] (a thread-local, reached
//! via the crate-private `with_scratch`) keeps the per-stage intermediates in reusable
//! arenas, so the fused embed path performs **one** data allocation per
//! entity in the worst case — and zero at steady state, because dropped
//! matrices can hand their storage back through [`recycle`].

use serde::{Deserialize, Serialize};

/// Flat, row-major storage of one entity's token embeddings.
///
/// Row `r` (a `dim`-long slice) is the contextual unit vector of one token;
/// rows group by attribute: attribute `a` owns rows
/// `attr_offsets[a] .. attr_offsets[a + 1]`, in token order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EmbedMatrix {
    dim: usize,
    /// `n_attrs + 1` row offsets (first 0, last = total rows).
    attr_offsets: Vec<usize>,
    /// `n_rows * dim` floats, row-major.
    data: Vec<f32>,
}

impl EmbedMatrix {
    /// Assembles a matrix from raw parts (the fused embed path).
    ///
    /// # Panics
    /// Panics when the offset table and data length disagree.
    pub fn from_raw(dim: usize, attr_offsets: Vec<usize>, data: Vec<f32>) -> Self {
        assert!(!attr_offsets.is_empty(), "offset table needs a leading 0");
        let rows = *attr_offsets.last().unwrap();
        assert_eq!(data.len(), rows * dim, "data length must be rows * dim");
        Self { dim, attr_offsets, data }
    }

    /// Converts the legacy nested attribute → token → vector shape. Used by
    /// tests and the reference (unfused) embed path.
    pub fn from_nested(nested: &[Vec<Vec<f32>>], dim: usize) -> Self {
        let mut attr_offsets = Vec::with_capacity(nested.len() + 1);
        attr_offsets.push(0usize);
        let mut rows = 0usize;
        for attr in nested {
            rows += attr.len();
            attr_offsets.push(rows);
        }
        let mut data = Vec::with_capacity(rows * dim);
        for attr in nested {
            for v in attr {
                debug_assert_eq!(v.len(), dim);
                data.extend_from_slice(v);
            }
        }
        Self { dim, attr_offsets, data }
    }

    /// Back to the nested attribute → token → vector shape (tests and the
    /// fused-vs-reference equivalence checks).
    pub fn to_nested(&self) -> Vec<Vec<Vec<f32>>> {
        (0..self.n_attrs())
            .map(|a| self.attr_rows(a).map(<[f32]>::to_vec).collect())
            .collect()
    }

    /// Embedding dimension (row width).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total token rows.
    pub fn n_rows(&self) -> usize {
        *self.attr_offsets.last().unwrap_or(&0)
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.attr_offsets.len().saturating_sub(1)
    }

    /// Token count of one attribute.
    pub fn attr_len(&self, attr: usize) -> usize {
        self.attr_offsets[attr + 1] - self.attr_offsets[attr]
    }

    /// Row range of one attribute.
    pub fn attr_range(&self, attr: usize) -> std::ops::Range<usize> {
        self.attr_offsets[attr]..self.attr_offsets[attr + 1]
    }

    /// One token row by flat row index.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.dim..(r + 1) * self.dim]
    }

    /// One token row by (attribute, position).
    pub fn embed(&self, attr: usize, pos: usize) -> &[f32] {
        self.row(self.attr_offsets[attr] + pos)
    }

    /// All rows, in (attribute, position) order.
    pub fn rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.dim.max(1)).take(self.n_rows())
    }

    /// The rows of one attribute.
    pub fn attr_rows(&self, attr: usize) -> impl Iterator<Item = &[f32]> {
        let range = self.attr_range(attr);
        let dim = self.dim.max(1);
        self.data[range.start * self.dim..range.end * self.dim]
            .chunks_exact(dim)
            .take(range.len())
    }

    /// Tears the matrix into its raw buffers (see [`recycle`]).
    pub fn into_raw(self) -> (Vec<usize>, Vec<f32>) {
        (self.attr_offsets, self.data)
    }
}

/// Reusable per-thread arenas of the fused tokenize→embed path. All
/// buffers grow to the high-water mark of the records a thread processes
/// and then stop allocating.
#[derive(Default)]
pub struct EmbedScratch {
    /// Static (pre-context) token vectors, `n_rows * dim`.
    pub(crate) statics: Vec<f32>,
    /// Contextualized vectors when a projection follows, `n_rows * dim`.
    pub(crate) ctx: Vec<f32>,
    /// Record centroid, `dim`.
    pub(crate) centroid: Vec<f32>,
    /// Attribute centroid, `dim`.
    pub(crate) attr_centroid: Vec<f32>,
    /// Neighbour accumulator, `dim`.
    pub(crate) nbr: Vec<f32>,
    /// Boundary-padded character buffer for n-gram hashing.
    pub(crate) chars: Vec<char>,
    /// Feature-string buffer for n-gram hashing.
    pub(crate) gram: String,
    /// Recycled `(attr_offsets, data)` buffers from dropped matrices.
    pub(crate) pool: Vec<(Vec<usize>, Vec<f32>)>,
}

/// Upper bound on pooled buffers per thread — enough to cover both sides
/// of a few in-flight records without hoarding memory.
const POOL_CAP: usize = 16;

thread_local! {
    static SCRATCH: std::cell::RefCell<EmbedScratch> =
        std::cell::RefCell::new(EmbedScratch::default());
}

/// Runs `f` with this thread's embed scratch arenas.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut EmbedScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Returns a dropped matrix's buffers to this thread's pool, making the
/// next fused embed on this thread allocation-free. Callers that consume
/// records in place (the serving path, the perf harness) should recycle;
/// callers that keep records alive (fitting) simply don't.
pub fn recycle(matrix: EmbedMatrix) {
    with_scratch(|s| {
        if s.pool.len() < POOL_CAP {
            s.pool.push(matrix.into_raw());
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EmbedMatrix {
        EmbedMatrix::from_nested(
            &[
                vec![vec![1.0, 2.0], vec![3.0, 4.0]],
                vec![],
                vec![vec![5.0, 6.0]],
            ],
            2,
        )
    }

    #[test]
    fn shape_accessors_agree_with_nested() {
        let m = sample();
        assert_eq!(m.dim(), 2);
        assert_eq!(m.n_attrs(), 3);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.attr_len(0), 2);
        assert_eq!(m.attr_len(1), 0);
        assert_eq!(m.attr_len(2), 1);
        assert_eq!(m.embed(0, 1), &[3.0, 4.0]);
        assert_eq!(m.embed(2, 0), &[5.0, 6.0]);
        assert_eq!(m.rows().count(), 3);
        assert_eq!(m.attr_rows(1).count(), 0);
        assert_eq!(
            m.to_nested(),
            vec![
                vec![vec![1.0, 2.0], vec![3.0, 4.0]],
                vec![],
                vec![vec![5.0, 6.0]],
            ]
        );
    }

    #[test]
    fn raw_round_trip() {
        let m = sample();
        let dim = m.dim();
        let (offsets, data) = m.clone().into_raw();
        let back = EmbedMatrix::from_raw(dim, offsets, data);
        assert_eq!(back.to_nested(), m.to_nested());
    }

    #[test]
    fn serde_round_trip() {
        use serde::{Deserialize, Serialize};
        let m = sample();
        let back = EmbedMatrix::from_value(&m.to_value()).unwrap();
        assert_eq!(back.to_nested(), m.to_nested());
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = EmbedMatrix::from_nested(&[], 8);
        assert_eq!(m.n_attrs(), 0);
        assert_eq!(m.n_rows(), 0);
        assert_eq!(m.rows().count(), 0);
    }

    #[test]
    fn recycle_feeds_the_pool() {
        recycle(sample());
        let popped = with_scratch(|s| s.pool.pop());
        assert!(popped.is_some());
    }
}
