//! Token-embedding substrate — the BERT / SBERT substitute.
//!
//! The paper encodes entity descriptions "with word embeddings generated
//! through the BERT language model" and obtains its best results with a
//! Sentence-BERT fine-tuning (§4.1.1). Reproducing that offline and in pure
//! Rust, this crate provides a stack with the same *interfaces and
//! properties* the rest of WYM relies on:
//!
//! 1. [`hashed::HashedNgramEmbedder`] — deterministic character-n-gram
//!    hashing (fastText-style) gives every token a static vector in which
//!    orthographically similar tokens (`exch`/`exchange`, `39400416`/
//!    `39400416`) have high cosine similarity;
//! 2. [`context::ContextEncoder`] — mixes each token's vector with its
//!    neighbours, its attribute, and the whole record, so the *same* token
//!    embeds differently in different contexts (the paper's challenge R4 and
//!    the "average of hidden layers" behaviour of BERT);
//! 3. [`finetune`] — two trained variants built on the siamese projection of
//!    `wym-nn`: [`EmbedderKind::FineTuned`] (≈ BERT fine-tuned on the EM
//!    task) and [`EmbedderKind::Siamese`] (≈ SBERT, the WYM default).
//!
//! What this substitution preserves: pairing is driven purely by cosine
//! similarity between token vectors, and scoring by symmetric mean/|diff|
//! features — both of which behave the same over this stack as over BERT
//! embeddings. What it does not preserve: absolute F1 values; deep lexical
//! semantics (synonyms with disjoint surfaces score low). DESIGN.md §2
//! documents the trade-off.

pub mod context;
pub mod finetune;
pub mod hashed;
pub mod matrix;
pub mod quant;

pub use context::ContextEncoder;
pub use finetune::{build_centroid_pairs, EntityTokens};
pub use hashed::HashedNgramEmbedder;
pub use matrix::{recycle, EmbedMatrix};
pub use quant::QuantizedTable;

use serde::{Deserialize, Serialize};
use wym_nn::{SiameseConfig, SiameseProjection};

/// Which embedding variant to use — the axis of the paper's Table 4
/// "Decision Unit Generator" ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EmbedderKind {
    /// Hashed n-grams + context mixing, no training (≈ pre-trained BERT).
    Static,
    /// `Static` plus a projection trained on record centroids with the EM
    /// labels (≈ BERT fine-tuned on the EM task).
    FineTuned,
    /// `Static` plus a projection trained on record *and* attribute
    /// centroids (≈ Sentence-BERT; the WYM default).
    Siamese,
}

/// The full embedding pipeline: static hashing → contextualization →
/// optional trained projection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedder {
    kind: EmbedderKind,
    hashed: HashedNgramEmbedder,
    context: ContextEncoder,
    projection: Option<SiameseProjection>,
}

/// The tensor-free part of an [`Embedder`]: everything except the trained
/// projection matrix. Model artifacts store this head as JSON and the
/// projection as a raw little-endian tensor (so the tensor section can be
/// memory-mapped); [`Embedder::from_parts`] reassembles the two.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmbedderHead {
    /// The embedding variant.
    pub kind: EmbedderKind,
    /// Character-n-gram hasher (dimension, seed, wordpiece config).
    pub hashed: HashedNgramEmbedder,
    /// Context-mixing weights.
    pub context: ContextEncoder,
}

impl Embedder {
    /// An untrained (static) embedder of the given dimension.
    pub fn new_static(dim: usize, seed: u64) -> Self {
        Self {
            kind: EmbedderKind::Static,
            hashed: HashedNgramEmbedder::new(dim, seed),
            context: ContextEncoder::default(),
            projection: None,
        }
    }

    /// Builds and (if the kind requires it) trains an embedder.
    ///
    /// `records` are `(left, right, is_match)` triples of per-attribute
    /// token lists; only the trained kinds look at them.
    pub fn fit(
        kind: EmbedderKind,
        dim: usize,
        seed: u64,
        records: &[(EntityTokens, EntityTokens, bool)],
    ) -> Self {
        let _span = wym_obs::span("embed_fit");
        wym_obs::counter_add("embed.fit_records", records.len() as u64);
        let mut embedder = Self::new_static(dim, seed);
        embedder.kind = kind;
        match kind {
            EmbedderKind::Static => {}
            EmbedderKind::FineTuned => {
                let pairs = build_centroid_pairs(&embedder, records, false);
                let config = SiameseConfig {
                    epochs: 5,
                    margin: 0.8,
                    lr: 0.03,
                    seed,
                    ..SiameseConfig::default()
                };
                let mut proj = SiameseProjection::new(dim, &config);
                proj.train(&pairs, &config);
                embedder.projection = Some(proj);
            }
            EmbedderKind::Siamese => {
                let pairs = build_centroid_pairs(&embedder, records, true);
                let config = SiameseConfig {
                    epochs: 10,
                    margin: 1.0,
                    lr: 0.05,
                    seed,
                    ..SiameseConfig::default()
                };
                let mut proj = SiameseProjection::new(dim, &config);
                proj.train(&pairs, &config);
                embedder.projection = Some(proj);
            }
        }
        embedder
    }

    /// The embedding variant.
    pub fn kind(&self) -> EmbedderKind {
        self.kind
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.hashed.dim()
    }

    /// Embeds one entity: `attr_tokens[a][t]` is token `t` of attribute `a`;
    /// the result has the same shape with one unit vector per token.
    ///
    /// The vectors are *contextual*: the same token in a different record
    /// (or attribute) gets a different vector.
    pub fn embed_entity(&self, attr_tokens: &[Vec<String>]) -> Vec<Vec<Vec<f32>>> {
        let _span = wym_obs::span("embed");
        if wym_obs::enabled() {
            let n: usize = attr_tokens.iter().map(|a| a.len()).sum();
            wym_obs::counter_add("embed.tokens", n as u64);
        }
        let static_vecs: Vec<Vec<Vec<f32>>> = attr_tokens
            .iter()
            .map(|tokens| tokens.iter().map(|t| self.hashed.embed_token(t)).collect())
            .collect();
        let mut contextual = self.context.contextualize(&static_vecs);
        if let Some(proj) = &self.projection {
            for attr in &mut contextual {
                for vec in attr {
                    *vec = proj.project(vec);
                }
            }
        }
        contextual
    }

    /// The fused twin of [`Embedder::embed_entity`]: same static hashing →
    /// contextualization → optional projection sequence, but every
    /// intermediate lives in this thread's [`matrix::EmbedScratch`] arenas
    /// and the result lands in one flat [`EmbedMatrix`] — at most one data
    /// allocation per entity, zero once [`recycle`] has fed the pool.
    ///
    /// Bit-identity: each stage delegates to an `*_into` variant
    /// ([`HashedNgramEmbedder::embed_token_into`], the flat contextualizer,
    /// [`wym_nn::SiameseProjection::project_into`]) that performs the
    /// identical float operations in the identical order as its allocating
    /// twin, so `embed_entity_fused(t).to_nested() == embed_entity(t)`
    /// exactly — the property `fused_embed_bit_identical_to_reference`
    /// pins.
    pub fn embed_entity_fused(&self, attr_tokens: &[Vec<String>]) -> EmbedMatrix {
        let _span = wym_obs::span("embed");
        if wym_obs::enabled() {
            let n: usize = attr_tokens.iter().map(|a| a.len()).sum();
            wym_obs::counter_add("embed.tokens", n as u64);
        }
        let dim = self.dim();
        let n_tok: usize = attr_tokens.iter().map(Vec::len).sum();
        matrix::with_scratch(|s| {
            let (mut offsets, mut data) = s.pool.pop().unwrap_or_default();
            offsets.clear();
            offsets.push(0);
            data.clear();
            data.resize(n_tok * dim, 0.0);

            // Stage 1: static hashed vectors into the statics arena.
            s.statics.clear();
            s.statics.resize(n_tok * dim, 0.0);
            let mut r = 0usize;
            for tokens in attr_tokens {
                for t in tokens {
                    self.hashed.embed_token_into(
                        t,
                        &mut s.statics[r * dim..(r + 1) * dim],
                        &mut s.chars,
                        &mut s.gram,
                    );
                    r += 1;
                }
                offsets.push(r);
            }

            if n_tok > 0 {
                s.centroid.clear();
                s.centroid.resize(dim, 0.0);
                s.attr_centroid.clear();
                s.attr_centroid.resize(dim, 0.0);
                s.nbr.clear();
                s.nbr.resize(dim, 0.0);
                match &self.projection {
                    // Stage 2 (no projection): contextualize straight into
                    // the output rows.
                    None => self.context.contextualize_flat(
                        &s.statics,
                        &offsets,
                        dim,
                        &mut data,
                        &mut s.centroid,
                        &mut s.attr_centroid,
                        &mut s.nbr,
                    ),
                    // Stages 2+3: contextualize into the ctx arena, project
                    // each row into the output.
                    Some(proj) => {
                        s.ctx.clear();
                        s.ctx.resize(n_tok * dim, 0.0);
                        self.context.contextualize_flat(
                            &s.statics,
                            &offsets,
                            dim,
                            &mut s.ctx,
                            &mut s.centroid,
                            &mut s.attr_centroid,
                            &mut s.nbr,
                        );
                        for r in 0..n_tok {
                            proj.project_into(
                                &s.ctx[r * dim..(r + 1) * dim],
                                &mut data[r * dim..(r + 1) * dim],
                            );
                        }
                    }
                }
            }
            EmbedMatrix::from_raw(dim, offsets, data)
        })
    }

    /// Static (context-free) vector of a single token. Used by the scorer's
    /// per-unit aggregation (Eq. 3 keys units by surface form, not context).
    pub fn embed_token_static(&self, token: &str) -> Vec<f32> {
        self.hashed.embed_token(token)
    }

    /// The trained projection, when the kind has one.
    pub fn projection(&self) -> Option<&SiameseProjection> {
        self.projection.as_ref()
    }

    /// Splits off the tensor-free head (see [`EmbedderHead`]).
    pub fn to_head(&self) -> EmbedderHead {
        EmbedderHead {
            kind: self.kind,
            hashed: self.hashed.clone(),
            context: self.context.clone(),
        }
    }

    /// Reassembles an embedder from its head and (optional) projection —
    /// the inverse of [`Embedder::to_head`] + [`Embedder::projection`].
    ///
    /// # Panics
    /// Panics when the projection dimension disagrees with the head's.
    pub fn from_parts(head: EmbedderHead, projection: Option<SiameseProjection>) -> Self {
        if let Some(p) = &projection {
            assert_eq!(
                p.dim(),
                head.hashed.dim(),
                "projection dimension must match embedder dimension"
            );
        }
        Self { kind: head.kind, hashed: head.hashed, context: head.context, projection }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wym_linalg::vector::{cosine, norm};

    fn entity(attrs: &[&[&str]]) -> Vec<Vec<String>> {
        attrs.iter().map(|a| a.iter().map(|s| s.to_string()).collect()).collect()
    }

    #[test]
    fn embed_entity_shape_matches_input() {
        let e = Embedder::new_static(32, 1);
        let out = e.embed_entity(&entity(&[&["digital", "camera"], &["sony"]]));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].len(), 2);
        assert_eq!(out[1].len(), 1);
        assert_eq!(out[0][0].len(), 32);
    }

    #[test]
    fn identical_tokens_in_same_context_have_identical_vectors() {
        let e = Embedder::new_static(48, 1);
        let out = e.embed_entity(&entity(&[&["camera", "camera"]]));
        assert_eq!(out[0][0], out[0][1]);
    }

    #[test]
    fn same_token_differs_across_contexts() {
        // Challenge R4: context-awareness.
        let e = Embedder::new_static(48, 1);
        let a = e.embed_entity(&entity(&[&["camera", "sony"]]));
        let b = e.embed_entity(&entity(&[&["camera", "microsoft", "license"]]));
        let sim = cosine(&a[0][0], &b[0][0]);
        assert!(sim < 0.9999, "contextualization must shift the vector, cos = {sim}");
        assert!(sim > 0.7, "…but not beyond recognition, cos = {sim}");
    }

    #[test]
    fn similar_surface_forms_are_close_unrelated_far() {
        let e = Embedder::new_static(64, 1);
        let exch = e.embed_token_static("exch");
        let exchange = e.embed_token_static("exchange");
        let nikon = e.embed_token_static("nikon");
        assert!(
            cosine(&exch, &exchange) > cosine(&exch, &nikon),
            "exch~exchange {} vs exch~nikon {}",
            cosine(&exch, &exchange),
            cosine(&exch, &nikon)
        );
    }

    #[test]
    fn vectors_are_unit_norm() {
        let e = Embedder::new_static(32, 3);
        let out = e.embed_entity(&entity(&[&["sony", "dslra200w"]]));
        for v in &out[0] {
            assert!((norm(v) - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn trained_kinds_store_projection() {
        let left = entity(&[&["digital", "camera"]]);
        let right = entity(&[&["digital", "camera", "kit"]]);
        let other = entity(&[&["beer", "ale"]]);
        let records = vec![
            (left.clone(), right.clone(), true),
            (left.clone(), other.clone(), false),
        ];
        let ft = Embedder::fit(EmbedderKind::FineTuned, 32, 5, &records);
        assert!(ft.projection.is_some());
        let sb = Embedder::fit(EmbedderKind::Siamese, 32, 5, &records);
        assert!(sb.projection.is_some());
        // Still unit vectors after projection.
        let out = sb.embed_entity(&left);
        assert!((norm(&out[0][0]) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn static_fit_ignores_records() {
        let e1 = Embedder::fit(EmbedderKind::Static, 32, 7, &[]);
        let e2 = Embedder::new_static(32, 7);
        assert_eq!(e1.embed_token_static("camera"), e2.embed_token_static("camera"));
    }

    #[test]
    fn empty_entity_is_fine() {
        let e = Embedder::new_static(16, 0);
        let out = e.embed_entity(&entity(&[&[]]));
        assert_eq!(out.len(), 1);
        assert!(out[0].is_empty());
    }

    /// The fused arena path must reproduce the reference path bit for bit —
    /// every kind (static / trained projection), empty attributes, empty
    /// tokens, lone tokens, and repeated calls through the recycling pool.
    #[test]
    fn fused_embed_bit_identical_to_reference() {
        let cases: Vec<Vec<Vec<String>>> = vec![
            entity(&[&["digital", "camera"], &["sony"]]),
            entity(&[&["camera"]]),
            entity(&[&[], &["dslra200w", "kit", "zoom", "lens"], &[]]),
            entity(&[&["", "camera", ""]]),
            entity(&[&[]]),
            entity(&[]),
        ];
        let left = entity(&[&["digital", "camera"]]);
        let right = entity(&[&["digital", "camera", "kit"]]);
        let records =
            vec![(left.clone(), right, true), (left, entity(&[&["beer", "ale"]]), false)];
        let embedders = vec![
            Embedder::new_static(32, 1),
            Embedder::fit(EmbedderKind::Siamese, 32, 5, &records),
        ];
        for e in &embedders {
            for case in &cases {
                // Twice per case: the second call draws from the pool.
                for round in 0..2 {
                    let reference = e.embed_entity(case);
                    let fused = e.embed_entity_fused(case);
                    assert_eq!(
                        fused.to_nested(),
                        reference,
                        "kind {:?} round {round} case {case:?}",
                        e.kind()
                    );
                    recycle(fused);
                }
            }
        }
    }
}
