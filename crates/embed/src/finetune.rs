//! Training-pair construction for the fine-tuned embedding variants.
//!
//! Both trained variants learn a [`wym_nn::SiameseProjection`] over centroid
//! pairs derived from labeled EM records:
//!
//! * **FineTuned** (≈ BERT-ft): one pair per record — the two *record*
//!   centroids with the match label. This is the coarse signal a
//!   classification fine-tune propagates into the encoder.
//! * **Siamese** (≈ SBERT): record centroids *plus* one pair per aligned
//!   attribute, mirroring how sentence-level siamese training sees many
//!   aligned sentence pairs and therefore shapes the space at a finer grain.

use crate::Embedder;
use wym_linalg::vector::{axpy, normalize};

/// Per-attribute token lists of one entity (`tokens[attr][i]`).
pub type EntityTokens = Vec<Vec<String>>;

/// L2-normalized mean of a set of token vectors; `None` when empty.
fn centroid(vecs: &[Vec<f32>], dim: usize) -> Option<Vec<f32>> {
    if vecs.is_empty() {
        return None;
    }
    let mut c = vec![0.0f32; dim];
    for v in vecs {
        axpy(1.0, v, &mut c);
    }
    normalize(&mut c);
    Some(c)
}

/// Builds `(left, right, is_match)` training vectors for the siamese
/// projection. With `per_attribute` set, aligned-attribute centroid pairs
/// are added after the record-level pair.
pub fn build_centroid_pairs(
    embedder: &Embedder,
    records: &[(EntityTokens, EntityTokens, bool)],
    per_attribute: bool,
) -> Vec<(Vec<f32>, Vec<f32>, bool)> {
    let dim = embedder.dim();
    let mut pairs = Vec::new();
    for (left, right, label) in records {
        let lv = embedder.embed_entity(left);
        let rv = embedder.embed_entity(right);
        let all_l: Vec<Vec<f32>> = lv.iter().flatten().cloned().collect();
        let all_r: Vec<Vec<f32>> = rv.iter().flatten().cloned().collect();
        if let (Some(cl), Some(cr)) = (centroid(&all_l, dim), centroid(&all_r, dim)) {
            pairs.push((cl, cr, *label));
        }
        if per_attribute {
            for (la, ra) in lv.iter().zip(&rv) {
                if let (Some(cl), Some(cr)) = (centroid(la, dim), centroid(ra, dim)) {
                    pairs.push((cl, cr, *label));
                }
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entity(attrs: &[&[&str]]) -> EntityTokens {
        attrs.iter().map(|a| a.iter().map(|s| s.to_string()).collect()).collect()
    }

    #[test]
    fn record_level_pairs_one_per_record() {
        let e = Embedder::new_static(32, 1);
        let records = vec![
            (entity(&[&["a", "b"]]), entity(&[&["a"]]), true),
            (entity(&[&["c"]]), entity(&[&["d"]]), false),
        ];
        let pairs = build_centroid_pairs(&e, &records, false);
        assert_eq!(pairs.len(), 2);
        assert!(pairs[0].2);
        assert!(!pairs[1].2);
    }

    #[test]
    fn per_attribute_adds_aligned_pairs() {
        let e = Embedder::new_static(32, 1);
        let records =
            vec![(entity(&[&["a"], &["b"]]), entity(&[&["a"], &["c"]]), true)];
        let pairs = build_centroid_pairs(&e, &records, true);
        // 1 record pair + 2 attribute pairs.
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn empty_attributes_are_skipped() {
        let e = Embedder::new_static(32, 1);
        let records = vec![(entity(&[&["a"], &[]]), entity(&[&["b"], &[]]), false)];
        let pairs = build_centroid_pairs(&e, &records, true);
        // 1 record pair + 1 non-empty attribute pair.
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn fully_empty_record_produces_no_pairs() {
        let e = Embedder::new_static(32, 1);
        let records = vec![(entity(&[&[]]), entity(&[&[]]), true)];
        assert!(build_centroid_pairs(&e, &records, true).is_empty());
    }

    #[test]
    fn centroids_are_unit_norm() {
        let e = Embedder::new_static(32, 1);
        let records = vec![(entity(&[&["x", "y", "z"]]), entity(&[&["x"]]), true)];
        let pairs = build_centroid_pairs(&e, &records, false);
        let n = wym_linalg::vector::norm(&pairs[0].0);
        assert!((n - 1.0).abs() < 1e-4);
    }
}
