//! Free-function kernels on `&[f32]` slices.
//!
//! These are the hot inner loops of the system: cosine similarity drives the
//! stable-marriage pairing over token embeddings, and `axpy`/`dot` drive the
//! matrix products of the relevance scorer. The reduction and update loops
//! delegate to [`crate::kernels`], which dispatches between the portable
//! 8-lane scalar path and the AVX2+FMA path at runtime — both paths are
//! bit-identical, so everything built on these functions (the SimMatrix
//! cache contract, pipeline scores) is independent of the host CPU.

use crate::kernels;

/// Dot product. Panics in debug builds on length mismatch.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    kernels::dot(a, b)
}

/// `y += alpha * x`, in place (fused multiply-add per element).
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    kernels::axpy(alpha, x, y);
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    kernels::dot(a, a).sqrt()
}

/// Squared Euclidean distance.
#[inline]
pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    kernels::dist_sq(a, b)
}

/// Cosine similarity in `[-1, 1]`; 0.0 when either vector is all-zero.
///
/// The all-zero case matters: WYM represents the missing side of an unpaired
/// decision unit with a zero `[UNP]` embedding, and its similarity to
/// anything is defined as 0 rather than NaN. The kernel computes `a·b`,
/// `a·a`, and `b·b` fused in a single pass over the inputs.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    kernels::cosine(a, b)
}

/// Normalizes to unit L2 norm in place; leaves all-zero vectors untouched.
#[inline]
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > f32::EPSILON {
        for v in a {
            *v /= n;
        }
    }
}

/// Element-wise mean of two equally sized vectors.
pub fn mean2(a: &[f32], b: &[f32]) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| 0.5 * (x + y)).collect()
}

/// Element-wise absolute difference of two equally sized vectors.
pub fn abs_diff(a: &[f32], b: &[f32]) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).collect()
}

/// Arithmetic mean of a slice; 0.0 for the empty slice.
pub fn mean(a: &[f32]) -> f32 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().map(|&v| v as f64).sum::<f64>() as f32 / a.len() as f32
    }
}

/// Population standard deviation; 0.0 for slices shorter than 2.
pub fn std_dev(a: &[f32]) -> f32 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a) as f64;
    let var = a.iter().map(|&v| (v as f64 - m).powi(2)).sum::<f64>() / a.len() as f64;
    var.sqrt() as f32
}

/// Median (average of the two middle values for even lengths); 0.0 when empty.
pub fn median(a: &[f32]) -> f32 {
    if a.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f32> = a.to_vec();
    v.sort_by(|x, y| x.total_cmp(y));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Index of the maximum element; `None` when empty. Ties break to the first.
pub fn argmax(a: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in a.iter().enumerate() {
        match best {
            Some((_, b)) if v <= b => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Numerically stable softmax.
pub fn softmax(a: &[f32]) -> Vec<f32> {
    if a.is_empty() {
        return Vec::new();
    }
    let max = a.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = a.iter().map(|v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn cosine_identical_is_one() {
        let v = [0.3, -1.2, 4.0];
        assert!((cosine(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_opposite_is_minus_one() {
        let v = [1.0, 2.0];
        let w = [-1.0, -2.0];
        assert!((cosine(&v, &w) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_zero_not_nan() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    /// The documented `[UNP]` guarantee: the all-zero embedding that stands
    /// in for the missing side of an unpaired unit has cosine similarity
    /// exactly 0.0 against anything — at length 0 (degenerate empty
    /// embedding) and at length 300 (the fastText dimension the paper
    /// uses), which exercises full 8-lane blocks with a nonempty tail.
    #[test]
    fn cosine_unp_guarantee_len_0_and_300() {
        assert_eq!(cosine(&[], &[]), 0.0);
        let zeros = vec![0.0f32; 300];
        let other: Vec<f32> = (0..300).map(|i| (i as f32 * 0.37).sin()).collect();
        assert_eq!(cosine(&zeros, &other), 0.0);
        assert_eq!(cosine(&other, &zeros), 0.0);
        assert_eq!(cosine(&zeros, &zeros), 0.0);
        // Sanity: the same non-zero vector against itself is still 1.
        assert!((cosine(&other, &other) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn mean2_and_abs_diff_symmetry() {
        let a = [1.0, -2.0];
        let b = [3.0, 2.0];
        assert_eq!(mean2(&a, &b), mean2(&b, &a));
        assert_eq!(abs_diff(&a, &b), abs_diff(&b, &a));
        assert_eq!(abs_diff(&a, &b), vec![2.0, 4.0]);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn std_dev_constant_is_zero() {
        assert_eq!(std_dev(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn argmax_picks_first_max() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn softmax_sums_to_one_and_is_monotone() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[0] < p[1] && p[1] < p[2]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }
}
