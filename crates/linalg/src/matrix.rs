//! Row-major dense `f32` matrix.

use crate::kernels;
use crate::rng::Rng64;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f32` matrix.
///
/// Rows are stored contiguously, so `row(i)` is a cheap slice and iterating
/// samples (rows of a design matrix) never copies.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix by stacking equally sized row slices.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} expected {cols}", r.len());
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Builds a matrix from owned row vectors.
    pub fn from_row_vecs(rows: Vec<Vec<f32>>) -> Self {
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        Self::from_rows(&refs)
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Fills with samples from `N(0, std^2)` using the given deterministic RNG.
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut Rng64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(rng.normal() as f32 * std);
        }
        Self { rows, cols, data }
    }

    /// Fills with uniform samples in `[lo, hi)`.
    pub fn rand_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut Rng64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(lo + rng.gen_f32() * (hi - lo));
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f32> {
        assert!(j < self.cols, "column {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterator over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns a new matrix containing only the rows whose indices are given.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (k, &i) in idx.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Returns a new matrix containing only the columns whose indices are given.
    pub fn select_cols(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, idx.len());
        for i in 0..self.rows {
            for (k, &j) in idx.iter().enumerate() {
                out[(i, k)] = self[(i, j)];
            }
        }
        out
    }

    /// Appends a row; the matrix must be empty or have matching width.
    pub fn push_row(&mut self, row: &[f32]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "pushed row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self * other`, cache-blocked over the inner dimension.
    ///
    /// The inner dimension is processed in `KC`-sized panels so the active
    /// slice of `other` stays L1/L2-resident while every row of `self`
    /// streams past it, and four inner-dimension steps are combined per pass
    /// over the output row (4× fewer output-row traversals, four independent
    /// multiply chains for the SIMD units). Combining four products before
    /// adding to the accumulator reorders the float sums relative to the
    /// naive one-step-at-a-time loop; results match it to ~1e-6 relative
    /// (both are valid roundings of the same exact sum), which the matmul
    /// property test pins down.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        for kk in (0..self.cols).step_by(KC) {
            let kb = KC.min(self.cols - kk);
            for i in 0..self.rows {
                let a_panel = &self.data[i * self.cols + kk..i * self.cols + kk + kb];
                let b_panel = &other.data[kk * n..(kk + kb) * n];
                gemm_panel_row(a_panel, b_panel, out.row_mut(i), n);
            }
        }
        out
    }

    /// `self^T * other` without materializing the transpose.
    ///
    /// Same panel kernel as [`Matrix::matmul`], reading `self` column-wise:
    /// the shared (row) dimension is blocked, and four samples are combined
    /// per pass over each output row. Same ~1e-6 sum-reordering note.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (k, n) = (self.cols, other.cols);
        let mut out = Matrix::zeros(k, n);
        let mut a_col = vec![0.0f32; KC]; // one A column within the row panel
        for rr in (0..self.rows).step_by(KC) {
            let rb = KC.min(self.rows - rr);
            let b_panel = &other.data[rr * n..(rr + rb) * n];
            for i in 0..k {
                for (p, slot) in a_col[..rb].iter_mut().enumerate() {
                    *slot = self.data[(rr + p) * k + i];
                }
                gemm_panel_row(&a_col[..rb], b_panel, out.row_mut(i), n);
            }
        }
        out
    }

    /// `self * other^T` without materializing the transpose.
    ///
    /// Each output element is one contiguous-row dot product, so this routes
    /// straight through the dispatched [`kernels::dot`]: the 8-lane
    /// accumulator chains give the instruction-level parallelism the old
    /// hand-unrolled 4-column loop bought, and the input row stays
    /// L1-resident across the `n` passes at this system's shapes.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        let n = other.rows;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let o_row = out.row_mut(i);
            for (jj, o) in o_row.iter_mut().enumerate().take(n) {
                *o = kernels::dot(a_row, other.row(jj));
            }
        }
        out
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self -= other`.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "sub_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// In-place scalar multiply.
    pub fn scale_inplace(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// `self * s` into a new matrix.
    pub fn scale(&self, s: f32) -> Matrix {
        let mut out = self.clone();
        out.scale_inplace(s);
        out
    }

    /// Element-wise (Hadamard) product into a new matrix.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Adds `bias` (length `cols`) to every row, in place.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "broadcast width mismatch");
        for i in 0..self.rows {
            for (v, b) in self.row_mut(i).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Per-column mean (length `cols`).
    pub fn col_mean(&self) -> Vec<f32> {
        let mut mean = vec![0.0f64; self.cols];
        for row in self.iter_rows() {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v as f64;
            }
        }
        let n = self.rows.max(1) as f64;
        mean.into_iter().map(|m| (m / n) as f32).collect()
    }

    /// Per-column population standard deviation (length `cols`).
    pub fn col_std(&self) -> Vec<f32> {
        let mean = self.col_mean();
        let mut var = vec![0.0f64; self.cols];
        for row in self.iter_rows() {
            for ((s, &v), &m) in var.iter_mut().zip(row).zip(&mean) {
                let d = (v - m) as f64;
                *s += d * d;
            }
        }
        let n = self.rows.max(1) as f64;
        var.into_iter().map(|s| ((s / n) as f32).sqrt()).collect()
    }

    /// Sum over all entries in each column.
    pub fn col_sum(&self) -> Vec<f32> {
        let mut sum = vec![0.0f32; self.cols];
        for row in self.iter_rows() {
            for (s, &v) in sum.iter_mut().zip(row) {
                *s += v;
            }
        }
        sum
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| (v * v) as f64).sum::<f64>().sqrt() as f32
    }

    /// True if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

/// Panel width (inner-dimension block) for the blocked GEMM kernels.
///
/// A `KC x n` panel of the right-hand matrix is the working set of the inner
/// loops; at the scorer's widest layer (n = 300) that is 128 * 300 * 4 bytes
/// = 150 KiB, which fits comfortably in L2, and at the common n = 64 it is
/// 32 KiB, i.e. L1-resident.
const KC: usize = 128;

/// Accumulate `a_panel * b_panel` into `o_row`: for each `p`,
/// `o_row += a_panel[p] * b_panel[p*n..][..n]`.
///
/// Four panel steps are fused per pass over `o_row` via the dispatched
/// [`kernels::gemm_update4`] (the output row is traversed `kb/4` times
/// instead of `kb`, each store folding four fused multiply-adds). Zero
/// coefficients (common after ReLU) skip their panel row entirely via the
/// all-zero fast path.
#[inline]
fn gemm_panel_row(a_panel: &[f32], b_panel: &[f32], o_row: &mut [f32], n: usize) {
    let kb = a_panel.len();
    debug_assert_eq!(b_panel.len(), kb * n);
    let mut p = 0;
    while p + 4 <= kb {
        let coef = [a_panel[p], a_panel[p + 1], a_panel[p + 2], a_panel[p + 3]];
        if coef == [0.0; 4] {
            p += 4;
            continue;
        }
        kernels::gemm_update4(
            coef,
            &b_panel[p * n..(p + 1) * n],
            &b_panel[(p + 1) * n..(p + 2) * n],
            &b_panel[(p + 2) * n..(p + 3) * n],
            &b_panel[(p + 3) * n..(p + 4) * n],
            o_row,
        );
        p += 4;
    }
    while p < kb {
        let a = a_panel[p];
        if a != 0.0 {
            kernels::axpy(a, &b_panel[p * n..(p + 1) * n], o_row);
        }
        p += 1;
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for i in 0..show {
            let row = self.row(i);
            let cells: Vec<String> = row.iter().take(8).map(|v| format!("{v:8.4}")).collect();
            let ellipsis = if self.cols > 8 { ", …" } else { "" };
            writeln!(f, "  [{}{}]", cells.join(", "), ellipsis)?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_contents() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let mut rng = Rng64::new(7);
        let a = Matrix::randn(4, 4, 1.0, &mut rng);
        let c = a.matmul(&Matrix::identity(4));
        for (x, y) in a.as_slice().iter().zip(c.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let mut rng = Rng64::new(3);
        let a = Matrix::randn(5, 3, 1.0, &mut rng);
        let b = Matrix::randn(5, 4, 1.0, &mut rng);
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let mut rng = Rng64::new(11);
        let a = Matrix::randn(4, 6, 1.0, &mut rng);
        let b = Matrix::randn(3, 6, 1.0, &mut rng);
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    /// Reference triple loop with strictly in-order accumulation, the
    /// ground truth the blocked kernels are measured against.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f32;
                for p in 0..a.cols() {
                    acc += a[(i, p)] * b[(p, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    #[test]
    fn blocked_matmul_matches_naive_on_awkward_shapes() {
        let mut rng = Rng64::new(77);
        // Shapes straddling the panel width and the 4-step unroll:
        // odd inner dims, inner dim > KC, single row/col edges.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (7, 131, 9), (2, 300, 4), (5, 257, 3)] {
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            let fast = a.matmul(&b);
            let slow = naive_matmul(&a, &b);
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y} at {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn t_matmul_matches_naive_past_panel_width() {
        let mut rng = Rng64::new(78);
        // More rows than KC so the panel loop runs more than once.
        let a = Matrix::randn(260, 6, 1.0, &mut rng);
        let b = Matrix::randn(260, 5, 1.0, &mut rng);
        let fast = a.t_matmul(&b);
        let slow = naive_matmul(&a.transpose(), &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_t_handles_row_counts_off_the_unroll() {
        let mut rng = Rng64::new(79);
        // 6 = one 4-wide pass plus a 2-wide scalar tail.
        let a = Matrix::randn(3, 9, 1.0, &mut rng);
        let b = Matrix::randn(6, 9, 1.0, &mut rng);
        let fast = a.matmul_t(&b);
        let slow = naive_matmul(&a, &b.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng64::new(1);
        let a = Matrix::randn(3, 7, 1.0, &mut rng);
        assert_eq!(a, a.transpose().transpose());
    }

    #[test]
    fn col_mean_and_std() {
        let m = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 10.0]]);
        assert_eq!(m.col_mean(), vec![2.0, 10.0]);
        let std = m.col_std();
        assert!((std[0] - 1.0).abs() < 1e-6);
        assert!(std[1].abs() < 1e-6);
    }

    #[test]
    fn select_rows_and_cols() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let r = m.select_rows(&[2, 0]);
        assert_eq!(r.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(r.row(1), &[1.0, 2.0, 3.0]);
        let c = m.select_cols(&[1]);
        assert_eq!(c.col(0), vec![2.0, 5.0, 8.0]);
    }

    #[test]
    fn push_row_grows_empty_matrix() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn broadcast_adds_bias_to_every_row() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.hadamard(&b).row(0), &[3.0, 8.0]);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = Rng64::new(42);
        let mut r2 = Rng64::new(42);
        let a = Matrix::randn(3, 3, 1.0, &mut r1);
        let b = Matrix::randn(3, 3, 1.0, &mut r2);
        assert_eq!(a, b);
    }
}
