//! Statistical helpers shared by the evaluation harness.

/// Pearson correlation coefficient between two equally sized samples.
///
/// Returns `None` when either sample is constant or shorter than 2, matching
/// how the paper's Figure 9 experiment must skip degenerate records (all-zero
/// explanation vectors have no defined correlation).
pub fn pearson(a: &[f32], b: &[f32]) -> Option<f32> {
    assert_eq!(a.len(), b.len(), "pearson requires equal lengths");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let ma = a.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let mb = b.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let (mut cov, mut va, mut vb) = (0.0f64, 0.0f64, 0.0f64);
    for (&x, &y) in a.iter().zip(b) {
        let dx = x as f64 - ma;
        let dy = y as f64 - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va <= 1e-18 || vb <= 1e-18 {
        return None;
    }
    Some((cov / (va.sqrt() * vb.sqrt())) as f32)
}

/// Spearman rank correlation (Pearson on ranks, average ranks for ties).
pub fn spearman(a: &[f32], b: &[f32]) -> Option<f32> {
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

/// Average ranks (1-based); ties receive the mean of their rank range.
pub fn ranks(v: &[f32]) -> Vec<f32> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]));
    let mut out = vec![0.0f32; v.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f32 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Quantile via linear interpolation on the sorted sample; `q` in `[0,1]`.
pub fn quantile(v: &[f32], q: f32) -> f32 {
    if v.is_empty() {
        return 0.0;
    }
    let mut s: Vec<f32> = v.to_vec();
    s.sort_by(|x, y| x.total_cmp(y));
    let pos = q.clamp(0.0, 1.0) * (s.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        let frac = pos - lo as f32;
        s[lo] * (1.0 - frac) + s[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_perfect_negative() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &b).unwrap() + 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_constant_is_none() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(pearson(&[1.0], &[1.0]), None);
    }

    #[test]
    fn pearson_independent_near_zero() {
        let a = [1.0, -1.0, 1.0, -1.0];
        let b = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&a, &b).unwrap().abs() < 1e-6);
    }

    #[test]
    fn ranks_with_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 8.0, 27.0, 64.0];
        assert!((spearman(&a, &b).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn quantile_median_and_extremes() {
        let v = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert!((quantile(&v, 0.5) - 2.5).abs() < 1e-6);
    }
}
