//! Dense linear-algebra substrate for the WYM entity-matching system.
//!
//! The WYM paper trains a feed-forward relevance scorer and a pool of ten
//! interpretable classifiers. All of that numeric work bottoms out here:
//! a row-major `f32` [`Matrix`], free-function vector kernels, a Gaussian
//! elimination [`solve`](solve::solve) used by LDA, and a deterministic
//! [`Rng64`] so every experiment is reproducible bit-for-bit.
//!
//! The crate is deliberately BLAS-free: matrices in this system are small
//! (feature matrices of a few hundred columns), and a simple blocked
//! triple-loop with the `ikj` order is fast enough while keeping the
//! reproduction dependency-light.

pub mod matrix;
pub mod rng;
pub mod solve;
pub mod stats;
pub mod vector;

pub use matrix::Matrix;
pub use rng::Rng64;
