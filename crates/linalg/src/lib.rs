//! Dense linear-algebra substrate for the WYM entity-matching system.
//!
//! The WYM paper trains a feed-forward relevance scorer and a pool of ten
//! interpretable classifiers. All of that numeric work bottoms out here:
//! a row-major `f32` [`Matrix`], free-function vector kernels, a Gaussian
//! elimination [`solve`](solve::solve) used by LDA, and a deterministic
//! [`Rng64`] so every experiment is reproducible bit-for-bit.
//!
//! The crate is deliberately BLAS-free: matrices in this system are small
//! (feature matrices of a few hundred columns), and a blocked triple-loop
//! over the [`kernels`] layer — runtime-dispatched between a portable
//! 8-lane scalar path and AVX2+FMA intrinsics, bit-identical to each
//! other — is fast enough while keeping the reproduction dependency-light.

pub mod kernels;
pub mod matrix;
pub mod rng;
pub mod solve;
pub mod stats;
pub mod vector;

pub use matrix::Matrix;
pub use rng::Rng64;
