//! Lane-structured f32 kernels behind runtime CPU-feature dispatch.
//!
//! Every reduction kernel in this module — [`dot`], [`dist_sq`], the fused
//! [`cosine`] — is written against one fixed numeric recipe:
//!
//! 1. the input is consumed in blocks of [`LANES`] = 8 elements, each lane
//!    owning its own accumulator chain fed by fused multiply-adds
//!    (`f32::mul_add` / `vfmadd231ps`, one rounding per update);
//! 2. the tail (`len % 8` elements) folds into lanes `0..len % 8` with the
//!    same fused update (a lane that receives no tail element keeps its
//!    block-loop value exactly, because `fma(0, 0, acc) == acc`);
//! 3. the eight lane accumulators collapse in the fixed tree
//!    `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))` (`reduce8`).
//!
//! The element-wise kernels ([`axpy`], [`gemm_update4`]) perform the same
//! fused update per output element in every implementation, so they are
//! trivially bit-identical. Because the recipe — not the instruction set —
//! defines the result, the portable scalar path and every SIMD path
//! (AVX2+FMA, AVX-512, NEON) return **bit-identical f32 for every input
//! length** (including the 1..=15 remainders that straddle one or two
//! vector registers). That is the determinism contract the similarity
//! cache and the smoke gate rely on: `WYM_KERNEL=scalar` and
//! `WYM_KERNEL=auto` runs of the full pipeline must emit identical scores.
//!
//! How each ISA keeps the recipe:
//!
//! * **AVX2+FMA** maps the eight lanes onto one `ymm` register
//!   (`vfmadd231ps`), tails run scalar `mul_add` into the stored lanes.
//! * **AVX-512** must *not* widen the f32 reductions to 16 lanes — that
//!   would change which elements share an accumulator chain and therefore
//!   the rounding — so [`dot`], [`cosine`] and [`dist_sq`] reuse the AVX2
//!   bodies verbatim (every AVX-512 CPU has AVX2). Only the element-wise
//!   kernels ([`axpy`], [`gemm_update4`]), where each output element is one
//!   independent fused chain, and the exact-integer int8 kernels widen to
//!   full `zmm` registers — that is where the pairing pass actually spends
//!   its bandwidth.
//! * **NEON** (aarch64) splits the same eight lanes across two
//!   `float32x4_t` accumulators — lanes 0..4 and 4..8 — with `vfmaq_f32`
//!   providing the single-rounding fused update, then stores both halves
//!   into the lane array and runs the identical (private) `reduce8` tree.
//!
//! Dispatch is resolved once per process ([`active`]) from CPU feature
//! detection plus the `WYM_KERNEL` environment variable
//! (`scalar|avx2|avx512|neon|auto`; unset = `auto` picks the best
//! supported one, and a named ISA the host lacks falls back to `scalar`
//! with a warning — selection must never change results, so it is a
//! performance concern, not a correctness one). The pipeline records the
//! resolved choice as the `kernel.dispatch.<name>` obs counter.

use std::sync::OnceLock;

/// Lane width of the accumulator pattern (one AVX2 `ymm` register of f32).
pub const LANES: usize = 8;

/// A kernel implementation selectable at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelImpl {
    /// Portable 8-lane scalar path (`f32::mul_add` per update).
    Scalar,
    /// AVX2 + FMA path via `std::arch` intrinsics (x86_64 only).
    Avx2Fma,
    /// AVX-512 (F+BW) path: AVX2 bodies for the f32 reductions (the 8-lane
    /// recipe is fixed), `zmm`-wide element-wise f32 and int8 kernels
    /// (x86_64 only).
    Avx512,
    /// NEON path: two `float32x4_t` accumulators forming the same eight
    /// lanes (aarch64 only).
    Neon,
}

/// Every implementation the dispatch layer knows about, in preference
/// order (best first). Hosts support a subset — see [`supported`].
pub const ALL_IMPLS: [KernelImpl; 4] =
    [KernelImpl::Avx512, KernelImpl::Avx2Fma, KernelImpl::Neon, KernelImpl::Scalar];

impl KernelImpl {
    /// Stable short name, used for the `kernel.dispatch.*` obs counter and
    /// the `WYM_KERNEL` override values.
    pub fn name(self) -> &'static str {
        match self {
            KernelImpl::Scalar => "scalar",
            KernelImpl::Avx2Fma => "avx2_fma",
            KernelImpl::Avx512 => "avx512",
            KernelImpl::Neon => "neon",
        }
    }
}

/// Whether this host can execute `imp`. `Scalar` is supported everywhere;
/// the SIMD paths require both the right target architecture and runtime
/// CPU feature detection.
pub fn supported(imp: KernelImpl) -> bool {
    match imp {
        KernelImpl::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx2Fma => {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx512 => {
            std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
        }
        #[cfg(target_arch = "aarch64")]
        KernelImpl::Neon => std::arch::is_aarch64_feature_detected!("neon"),
        #[allow(unreachable_patterns)]
        _ => false,
    }
}

/// The implementations this host supports, best first. Drives the
/// bit-identity test matrix, the `components_bench` kernel sweep, and the
/// smoke gate's kernel-matrix loop (via `wym kernels`-style probes).
pub fn available() -> Vec<KernelImpl> {
    ALL_IMPLS.into_iter().filter(|&imp| supported(imp)).collect()
}

/// The best implementation this CPU supports, ignoring `WYM_KERNEL`.
pub fn detect_best() -> KernelImpl {
    ALL_IMPLS.into_iter().find(|&imp| supported(imp)).unwrap_or(KernelImpl::Scalar)
}

/// The implementation every dispatched kernel call routes to, resolved once
/// per process from `WYM_KERNEL`:
///
/// * `scalar` — force the portable path;
/// * `avx2` (alias `avx2_fma`), `avx512`, `neon` — request that ISA, with
///   a once-per-process warning and a **clean scalar fallback** when the
///   host does not support it;
/// * unset / empty / `auto` — [`detect_best`];
/// * anything else — warn once and use auto dispatch.
///
/// Warnings rather than failures are deliberate: kernel selection must
/// never change results, so a typo or an absent ISA is a performance
/// concern, not a correctness one.
pub fn active() -> KernelImpl {
    static ACTIVE: OnceLock<KernelImpl> = OnceLock::new();
    let request = |imp: KernelImpl| {
        if supported(imp) {
            imp
        } else {
            eprintln!(
                "warning: WYM_KERNEL={} is not supported on this host; \
                 falling back to scalar",
                imp.name()
            );
            KernelImpl::Scalar
        }
    };
    *ACTIVE.get_or_init(|| match std::env::var("WYM_KERNEL").ok().as_deref() {
        Some("scalar") => KernelImpl::Scalar,
        Some("avx2" | "avx2_fma") => request(KernelImpl::Avx2Fma),
        Some("avx512") => request(KernelImpl::Avx512),
        Some("neon") => request(KernelImpl::Neon),
        None | Some("") | Some("auto") => detect_best(),
        Some(other) => {
            eprintln!("warning: unknown WYM_KERNEL value {other:?}; using auto dispatch");
            detect_best()
        }
    })
}

/// Short name of the active implementation
/// (`scalar` / `avx2_fma` / `avx512` / `neon`).
pub fn active_name() -> &'static str {
    active().name()
}

/// The fixed lane-reduction tree shared by every implementation.
#[inline(always)]
fn reduce8(acc: [f32; LANES]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

// --- dispatched entry points ----------------------------------------------

/// Dot product `a · b` under the active implementation.
///
/// # Panics
/// Panics in debug builds on length mismatch.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dot_with(active(), a, b)
}

/// `y += alpha * x` (fused per element) under the active implementation.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    axpy_with(active(), alpha, x, y);
}

/// Squared Euclidean distance under the active implementation.
#[inline]
pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    dist_sq_with(active(), a, b)
}

/// Fused cosine similarity: `a·b`, `a·a`, and `b·b` accumulate in one pass
/// over the inputs, then combine as `(ab / (sqrt(aa) * sqrt(bb)))` clamped
/// to `[-1, 1]`, returning 0.0 when either norm is ≤ `f32::EPSILON` (the
/// all-zero `[UNP]` embedding contract). Each of the three accumulations
/// follows the standard lane recipe, so `aa` here is bit-identical to
/// `dot(a, a)` computed on its own.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    cosine_with(active(), a, b)
}

/// The blocked-GEMM inner update: `o[i]` chains four fused multiply-adds
/// `o[i] = fma(a[3], b3[i], fma(a[2], b2[i], fma(a[1], b1[i],
/// fma(a[0], b0[i], o[i]))))` for every element of the output row.
#[inline]
pub fn gemm_update4(coef: [f32; 4], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32], o: &mut [f32]) {
    gemm_update4_with(active(), coef, b0, b1, b2, b3, o);
}

/// Integer dot product of two int8 vectors under the active implementation.
///
/// Every product `a[i] * b[i]` is exact in i32 and integer addition is
/// associative, so — unlike the f32 kernels — any accumulation order gives
/// the same result and bit-identity across implementations is structural,
/// not engineered. The i32 accumulator is exact for `len ≤ 133_000`
/// (|dot| ≤ len · 127²), far beyond any embedding dimension.
///
/// # Panics
/// Panics in debug builds on length mismatch.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    dot_i8_with(active(), a, b)
}

/// Integer squared Euclidean distance of two int8 vectors under the active
/// implementation. Exact for `len ≤ 33_000` (sum ≤ len · 254²).
#[inline]
pub fn dist_sq_i8(a: &[i8], b: &[i8]) -> i32 {
    dist_sq_i8_with(active(), a, b)
}

/// One int8 query row against a contiguous row-major block: `out[j] =
/// dot_i8(a, rows[j*d..][..d])` with `d = a.len()`. This is the int8
/// SimMatrix fill's inner loop — batching moves the dispatch out of the
/// per-entry path and lets the SIMD bodies reuse the widened query row
/// across consecutive table rows. Exact integer arithmetic throughout, so
/// every implementation returns identical values (see [`dot_i8`]).
///
/// # Panics
/// Panics in debug builds when `rows.len() != a.len() * out.len()`.
#[inline]
pub fn dot_i8_batch(a: &[i8], rows: &[i8], out: &mut [i32]) {
    dot_i8_batch_with(active(), a, rows, out);
}

/// Fused int8 cosine: the exact integer dot scaled back to f32 by the two
/// per-vector quantization scales (`value ≈ q · scale`). Because the dot is
/// an exact integer and the two multiplies happen in one fixed order, the
/// result is bit-identical across implementations and thread counts — the
/// property the ANN blocking pass's determinism contract leans on.
#[inline]
pub fn cosine_i8(a: &[i8], b: &[i8], scale_a: f32, scale_b: f32) -> f32 {
    (dot_i8(a, b) as f32) * (scale_a * scale_b)
}

/// Largest absolute value in `v` (0.0 when empty) under the active
/// implementation — the absmax pass of symmetric int8 quantization.
///
/// `max` over finite f32 is exactly associative and commutative, so any
/// lane split gives the bit-identical result; like the int8 kernels,
/// cross-implementation identity is structural. `v` must hold finite
/// values (quantization inputs always are); NaN propagation order is
/// unspecified.
#[inline]
pub fn max_abs(v: &[f32]) -> f32 {
    max_abs_with(active(), v)
}

/// Symmetric int8 quantization of one row under the active implementation:
/// `out[i] = (src[i] * inv)` rounded to nearest-even, clamped to
/// `[-127, 127]`, narrowed to i8.
///
/// Each element is independent (no accumulation), so block width is
/// unobservable and every implementation is bit-identical — the scalar
/// path's `round_ties_even` is exactly the SIMD converts' round-to-nearest-
/// even mode. `src` must hold finite values; non-finite elements produce
/// implementation-defined codes.
///
/// # Panics
/// Panics in debug builds on length mismatch.
#[inline]
pub fn quantize_i8(src: &[f32], inv: f32, out: &mut [i8]) {
    quantize_i8_with(active(), src, inv, out);
}

// --- explicit-implementation entry points (tests, benches) ----------------

/// [`dot_i8`] under an explicitly chosen implementation.
#[inline]
pub fn dot_i8_with(imp: KernelImpl, a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    match imp {
        KernelImpl::Scalar => scalar::dot_i8(a, b),
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx2Fma => unsafe { avx2::dot_i8(a, b) },
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx512 => unsafe { avx512::dot_i8(a, b) },
        #[cfg(target_arch = "aarch64")]
        KernelImpl::Neon => unsafe { neon::dot_i8(a, b) },
        #[allow(unreachable_patterns)]
        _ => scalar::dot_i8(a, b),
    }
}

/// [`cosine_i8`] under an explicitly chosen implementation.
#[inline]
pub fn cosine_i8_with(imp: KernelImpl, a: &[i8], b: &[i8], scale_a: f32, scale_b: f32) -> f32 {
    (dot_i8_with(imp, a, b) as f32) * (scale_a * scale_b)
}

/// [`max_abs`] under an explicitly chosen implementation.
#[inline]
pub fn max_abs_with(imp: KernelImpl, v: &[f32]) -> f32 {
    match imp {
        KernelImpl::Scalar => scalar::max_abs(v),
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx2Fma => unsafe { avx2::max_abs(v) },
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx512 => unsafe { avx512::max_abs(v) },
        #[cfg(target_arch = "aarch64")]
        KernelImpl::Neon => unsafe { neon::max_abs(v) },
        #[allow(unreachable_patterns)]
        _ => scalar::max_abs(v),
    }
}

/// [`quantize_i8`] under an explicitly chosen implementation.
#[inline]
pub fn quantize_i8_with(imp: KernelImpl, src: &[f32], inv: f32, out: &mut [i8]) {
    debug_assert_eq!(src.len(), out.len());
    match imp {
        KernelImpl::Scalar => scalar::quantize_i8(src, inv, out),
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx2Fma => unsafe { avx2::quantize_i8(src, inv, out) },
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx512 => unsafe { avx512::quantize_i8(src, inv, out) },
        #[cfg(target_arch = "aarch64")]
        KernelImpl::Neon => unsafe { neon::quantize_i8(src, inv, out) },
        #[allow(unreachable_patterns)]
        _ => scalar::quantize_i8(src, inv, out),
    }
}

/// [`dot_i8_batch`] under an explicitly chosen implementation.
#[inline]
pub fn dot_i8_batch_with(imp: KernelImpl, a: &[i8], rows: &[i8], out: &mut [i32]) {
    debug_assert_eq!(rows.len(), a.len() * out.len());
    match imp {
        KernelImpl::Scalar => scalar::dot_i8_batch(a, rows, out),
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx2Fma => unsafe { avx2::dot_i8_batch(a, rows, out) },
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx512 => unsafe { avx512::dot_i8_batch(a, rows, out) },
        #[cfg(target_arch = "aarch64")]
        KernelImpl::Neon => unsafe { neon::dot_i8_batch(a, rows, out) },
        #[allow(unreachable_patterns)]
        _ => scalar::dot_i8_batch(a, rows, out),
    }
}

/// [`dist_sq_i8`] under an explicitly chosen implementation.
#[inline]
pub fn dist_sq_i8_with(imp: KernelImpl, a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    match imp {
        KernelImpl::Scalar => scalar::dist_sq_i8(a, b),
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx2Fma => unsafe { avx2::dist_sq_i8(a, b) },
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx512 => unsafe { avx512::dist_sq_i8(a, b) },
        #[cfg(target_arch = "aarch64")]
        KernelImpl::Neon => unsafe { neon::dist_sq_i8(a, b) },
        #[allow(unreachable_patterns)]
        _ => scalar::dist_sq_i8(a, b),
    }
}

/// [`dot`] under an explicitly chosen implementation.
#[inline]
pub fn dot_with(imp: KernelImpl, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match imp {
        KernelImpl::Scalar => scalar::dot(a, b),
        // AVX-512 reuses the AVX2 reduction body: widening to 16 lanes
        // would change the accumulator chains and break bit-identity.
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx2Fma | KernelImpl::Avx512 => unsafe { avx2::dot(a, b) },
        #[cfg(target_arch = "aarch64")]
        KernelImpl::Neon => unsafe { neon::dot(a, b) },
        #[allow(unreachable_patterns)]
        _ => scalar::dot(a, b),
    }
}

/// [`axpy`] under an explicitly chosen implementation.
#[inline]
pub fn axpy_with(imp: KernelImpl, alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    match imp {
        KernelImpl::Scalar => scalar::axpy(alpha, x, y),
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx2Fma => unsafe { avx2::axpy(alpha, x, y) },
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx512 => unsafe { avx512::axpy(alpha, x, y) },
        #[cfg(target_arch = "aarch64")]
        KernelImpl::Neon => unsafe { neon::axpy(alpha, x, y) },
        #[allow(unreachable_patterns)]
        _ => scalar::axpy(alpha, x, y),
    }
}

/// [`dist_sq`] under an explicitly chosen implementation.
#[inline]
pub fn dist_sq_with(imp: KernelImpl, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match imp {
        KernelImpl::Scalar => scalar::dist_sq(a, b),
        // See `dot_with`: AVX-512 keeps the 8-lane AVX2 reduction body.
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx2Fma | KernelImpl::Avx512 => unsafe { avx2::dist_sq(a, b) },
        #[cfg(target_arch = "aarch64")]
        KernelImpl::Neon => unsafe { neon::dist_sq(a, b) },
        #[allow(unreachable_patterns)]
        _ => scalar::dist_sq(a, b),
    }
}

/// [`cosine`] under an explicitly chosen implementation.
#[inline]
pub fn cosine_with(imp: KernelImpl, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let [ab, aa, bb] = match imp {
        KernelImpl::Scalar => scalar::dot3(a, b),
        // See `dot_with`: AVX-512 keeps the 8-lane AVX2 reduction body.
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx2Fma | KernelImpl::Avx512 => unsafe { avx2::dot3(a, b) },
        #[cfg(target_arch = "aarch64")]
        KernelImpl::Neon => unsafe { neon::dot3(a, b) },
        #[allow(unreachable_patterns)]
        _ => scalar::dot3(a, b),
    };
    let (na, nb) = (aa.sqrt(), bb.sqrt());
    if na <= f32::EPSILON || nb <= f32::EPSILON {
        return 0.0;
    }
    (ab / (na * nb)).clamp(-1.0, 1.0)
}

/// [`gemm_update4`] under an explicitly chosen implementation.
#[inline]
pub fn gemm_update4_with(
    imp: KernelImpl,
    coef: [f32; 4],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
    o: &mut [f32],
) {
    debug_assert!(
        b0.len() == o.len() && b1.len() == o.len() && b2.len() == o.len() && b3.len() == o.len()
    );
    match imp {
        KernelImpl::Scalar => scalar::gemm_update4(coef, b0, b1, b2, b3, o),
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx2Fma => unsafe { avx2::gemm_update4(coef, b0, b1, b2, b3, o) },
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx512 => unsafe { avx512::gemm_update4(coef, b0, b1, b2, b3, o) },
        #[cfg(target_arch = "aarch64")]
        KernelImpl::Neon => unsafe { neon::gemm_update4(coef, b0, b1, b2, b3, o) },
        #[allow(unreachable_patterns)]
        _ => scalar::gemm_update4(coef, b0, b1, b2, b3, o),
    }
}

// --- portable 8-lane scalar implementation --------------------------------

/// The portable reference implementation: the exact lane recipe of the SIMD
/// path expressed with `f32::mul_add`, which glibc/LLVM lower to a hardware
/// FMA where one exists and to the correctly rounded soft-float `fmaf`
/// otherwise — in both cases one rounding per update, like `vfmadd`.
pub mod scalar {
    use super::{reduce8, LANES};

    /// 8-lane dot product.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        let blocks = a.len() / LANES * LANES;
        for (ca, cb) in a[..blocks].chunks_exact(LANES).zip(b[..blocks].chunks_exact(LANES)) {
            for l in 0..LANES {
                acc[l] = ca[l].mul_add(cb[l], acc[l]);
            }
        }
        for l in 0..a.len() - blocks {
            acc[l] = a[blocks + l].mul_add(b[blocks + l], acc[l]);
        }
        reduce8(acc)
    }

    /// Fused `a·b`, `a·a`, `b·b` in one pass; each follows the dot recipe.
    pub fn dot3(a: &[f32], b: &[f32]) -> [f32; 3] {
        let mut ab = [0.0f32; LANES];
        let mut aa = [0.0f32; LANES];
        let mut bb = [0.0f32; LANES];
        let blocks = a.len() / LANES * LANES;
        for (ca, cb) in a[..blocks].chunks_exact(LANES).zip(b[..blocks].chunks_exact(LANES)) {
            for l in 0..LANES {
                ab[l] = ca[l].mul_add(cb[l], ab[l]);
                aa[l] = ca[l].mul_add(ca[l], aa[l]);
                bb[l] = cb[l].mul_add(cb[l], bb[l]);
            }
        }
        for l in 0..a.len() - blocks {
            let (x, y) = (a[blocks + l], b[blocks + l]);
            ab[l] = x.mul_add(y, ab[l]);
            aa[l] = x.mul_add(x, aa[l]);
            bb[l] = y.mul_add(y, bb[l]);
        }
        [reduce8(ab), reduce8(aa), reduce8(bb)]
    }

    /// 8-lane squared distance: `d = a - b` rounds once, then `fma(d, d, acc)`.
    pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        let blocks = a.len() / LANES * LANES;
        for (ca, cb) in a[..blocks].chunks_exact(LANES).zip(b[..blocks].chunks_exact(LANES)) {
            for l in 0..LANES {
                let d = ca[l] - cb[l];
                acc[l] = d.mul_add(d, acc[l]);
            }
        }
        for l in 0..a.len() - blocks {
            let d = a[blocks + l] - b[blocks + l];
            acc[l] = d.mul_add(d, acc[l]);
        }
        reduce8(acc)
    }

    /// Element-wise fused `y[i] = fma(alpha, x[i], y[i])`.
    pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi = alpha.mul_add(xi, *yi);
        }
    }

    /// Integer int8 dot product (exact; see [`super::dot_i8`]).
    pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        let mut acc = 0i32;
        for (&x, &y) in a.iter().zip(b) {
            acc += x as i32 * y as i32;
        }
        acc
    }

    /// One query row against a contiguous row block (exact; see
    /// [`super::dot_i8_batch`]).
    pub fn dot_i8_batch(a: &[i8], rows: &[i8], out: &mut [i32]) {
        if a.is_empty() {
            out.fill(0);
            return;
        }
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(a.len())) {
            *o = dot_i8(a, row);
        }
    }

    /// Integer int8 squared distance (exact; see [`super::dist_sq_i8`]).
    pub fn dist_sq_i8(a: &[i8], b: &[i8]) -> i32 {
        let mut acc = 0i32;
        for (&x, &y) in a.iter().zip(b) {
            let d = x as i32 - y as i32;
            acc += d * d;
        }
        acc
    }

    /// Largest absolute value (exactly associative; see [`super::max_abs`]).
    pub fn max_abs(v: &[f32]) -> f32 {
        v.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Element-wise symmetric int8 quantization (see
    /// [`super::quantize_i8`]): `round_ties_even` is the same
    /// round-to-nearest-even the SIMD converts use.
    pub fn quantize_i8(src: &[f32], inv: f32, out: &mut [i8]) {
        for (o, &v) in out.iter_mut().zip(src) {
            *o = (v * inv).round_ties_even().clamp(-127.0, 127.0) as i8;
        }
    }

    /// Element-wise four-step fused update (see [`super::gemm_update4`]).
    pub fn gemm_update4(
        coef: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
        o: &mut [f32],
    ) {
        let [a0, a1, a2, a3] = coef;
        for (i, oi) in o.iter_mut().enumerate() {
            let mut acc = a0.mul_add(b0[i], *oi);
            acc = a1.mul_add(b1[i], acc);
            acc = a2.mul_add(b2[i], acc);
            *oi = a3.mul_add(b3[i], acc);
        }
    }
}

// --- AVX2 + FMA implementation --------------------------------------------

/// AVX2+FMA implementation. Every function is `unsafe` because it requires
/// the `avx2`/`fma` target features; callers go through the dispatched
/// entry points, which only select this module after CPUID detection.
///
/// The block loop maps one lane accumulator to one `ymm` lane; the scalar
/// tail runs under the same `#[target_feature]` scope, so its
/// `f32::mul_add` compiles to the `vfmadd` instruction — the identical
/// operation the vector body performs per lane.
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use super::{reduce8, LANES};
    use std::arch::x86_64::{
        _mm256_add_epi32, _mm256_andnot_ps, _mm256_castsi256_si128, _mm256_cvtepi8_epi16,
        _mm256_cvtps_epi32, _mm256_extracti128_si256, _mm256_fmadd_ps, _mm256_loadu_ps,
        _mm256_madd_epi16, _mm256_max_epi32, _mm256_max_ps, _mm256_min_epi32, _mm256_mul_ps,
        _mm256_set1_epi32, _mm256_set1_ps, _mm256_setzero_ps, _mm256_setzero_si256,
        _mm256_storeu_ps, _mm256_storeu_si256, _mm256_sub_epi16, _mm256_sub_ps,
        _mm_loadu_si128, _mm_packs_epi16, _mm_packs_epi32, _mm_storel_epi64,
    };

    /// 8-lane dot product.
    ///
    /// # Safety
    /// The caller must have verified AVX2+FMA support (via
    /// [`super::detect_best`]) before calling.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let blocks = a.len() / LANES * LANES;
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < blocks {
            let va = _mm256_loadu_ps(a.as_ptr().add(i));
            let vb = _mm256_loadu_ps(b.as_ptr().add(i));
            acc = _mm256_fmadd_ps(va, vb, acc);
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for l in 0..a.len() - blocks {
            lanes[l] = a[blocks + l].mul_add(b[blocks + l], lanes[l]);
        }
        reduce8(lanes)
    }

    /// Fused `a·b`, `a·a`, `b·b` in one pass.
    ///
    /// # Safety
    /// The caller must have verified AVX2+FMA support (via
    /// [`super::detect_best`]) before calling.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot3(a: &[f32], b: &[f32]) -> [f32; 3] {
        let blocks = a.len() / LANES * LANES;
        let mut ab = _mm256_setzero_ps();
        let mut aa = _mm256_setzero_ps();
        let mut bb = _mm256_setzero_ps();
        let mut i = 0;
        while i < blocks {
            let va = _mm256_loadu_ps(a.as_ptr().add(i));
            let vb = _mm256_loadu_ps(b.as_ptr().add(i));
            ab = _mm256_fmadd_ps(va, vb, ab);
            aa = _mm256_fmadd_ps(va, va, aa);
            bb = _mm256_fmadd_ps(vb, vb, bb);
            i += LANES;
        }
        let mut lab = [0.0f32; LANES];
        let mut laa = [0.0f32; LANES];
        let mut lbb = [0.0f32; LANES];
        _mm256_storeu_ps(lab.as_mut_ptr(), ab);
        _mm256_storeu_ps(laa.as_mut_ptr(), aa);
        _mm256_storeu_ps(lbb.as_mut_ptr(), bb);
        for l in 0..a.len() - blocks {
            let (x, y) = (a[blocks + l], b[blocks + l]);
            lab[l] = x.mul_add(y, lab[l]);
            laa[l] = x.mul_add(x, laa[l]);
            lbb[l] = y.mul_add(y, lbb[l]);
        }
        [reduce8(lab), reduce8(laa), reduce8(lbb)]
    }

    /// 8-lane squared distance.
    ///
    /// # Safety
    /// The caller must have verified AVX2+FMA support (via
    /// [`super::detect_best`]) before calling.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
        let blocks = a.len() / LANES * LANES;
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < blocks {
            let va = _mm256_loadu_ps(a.as_ptr().add(i));
            let vb = _mm256_loadu_ps(b.as_ptr().add(i));
            let d = _mm256_sub_ps(va, vb);
            acc = _mm256_fmadd_ps(d, d, acc);
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for l in 0..a.len() - blocks {
            let d = a[blocks + l] - b[blocks + l];
            lanes[l] = d.mul_add(d, lanes[l]);
        }
        reduce8(lanes)
    }

    /// Element-wise fused `y[i] = fma(alpha, x[i], y[i])`.
    ///
    /// # Safety
    /// The caller must have verified AVX2+FMA support (via
    /// [`super::detect_best`]) before calling.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        let blocks = x.len() / LANES * LANES;
        let va = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i < blocks {
            let vx = _mm256_loadu_ps(x.as_ptr().add(i));
            let vy = _mm256_loadu_ps(y.as_ptr().add(i));
            _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_fmadd_ps(va, vx, vy));
            i += LANES;
        }
        for l in blocks..x.len() {
            y[l] = alpha.mul_add(x[l], y[l]);
        }
    }

    /// Width of one int8 block: 16 lanes widened to i16 in one `ymm`.
    const I8_BLOCK: usize = 16;

    /// Integer int8 dot product: 16 int8 lanes sign-extend to i16
    /// (`vpmovsxbw`), multiply-accumulate pairwise into 8 i32 lanes
    /// (`vpmaddwd`), and the lanes sum at the end. All arithmetic is exact
    /// integer, so the result equals the scalar loop for any input.
    ///
    /// # Safety
    /// The caller must have verified AVX2+FMA support (via
    /// [`super::detect_best`]) before calling.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        let blocks = a.len() / I8_BLOCK * I8_BLOCK;
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i < blocks {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i).cast()));
            let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i).cast()));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
            i += I8_BLOCK;
        }
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
        let mut total: i32 = lanes.iter().sum();
        for l in blocks..a.len() {
            total += a[l] as i32 * b[l] as i32;
        }
        total
    }

    /// One query row against a contiguous row block: the per-row loop runs
    /// inside one `target_feature` scope, so [`dot_i8`] inlines and the
    /// dispatch cost is paid once per batch instead of once per entry.
    /// Exact integer (see [`super::dot_i8_batch`]).
    ///
    /// # Safety
    /// The caller must have verified AVX2+FMA support (via
    /// [`super::detect_best`]) before calling.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_i8_batch(a: &[i8], rows: &[i8], out: &mut [i32]) {
        if a.is_empty() {
            out.fill(0);
            return;
        }
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(a.len())) {
            *o = dot_i8(a, row);
        }
    }

    /// Integer int8 squared distance: differences in i16 (range ±254, no
    /// overflow), squared and pair-summed by `vpmaddwd`. Exact integer.
    ///
    /// # Safety
    /// The caller must have verified AVX2+FMA support (via
    /// [`super::detect_best`]) before calling.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dist_sq_i8(a: &[i8], b: &[i8]) -> i32 {
        let blocks = a.len() / I8_BLOCK * I8_BLOCK;
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i < blocks {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i).cast()));
            let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i).cast()));
            let d = _mm256_sub_epi16(va, vb);
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d, d));
            i += I8_BLOCK;
        }
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
        let mut total: i32 = lanes.iter().sum();
        for l in blocks..a.len() {
            let d = a[l] as i32 - b[l] as i32;
            total += d * d;
        }
        total
    }

    /// Largest absolute value: 8-lane `vmaxps` over sign-stripped lanes,
    /// folded with scalar `max` at the end. Exactly associative, so
    /// bit-identical to the scalar fold for finite inputs.
    ///
    /// # Safety
    /// The caller must have verified AVX2+FMA support (via
    /// [`super::detect_best`]) before calling.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn max_abs(v: &[f32]) -> f32 {
        let blocks = v.len() / LANES * LANES;
        let sign = _mm256_set1_ps(-0.0);
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < blocks {
            let x = _mm256_andnot_ps(sign, _mm256_loadu_ps(v.as_ptr().add(i)));
            acc = _mm256_max_ps(acc, x);
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut m = lanes.iter().fold(0.0f32, |m, &x| m.max(x));
        for &x in &v[blocks..] {
            m = m.max(x.abs());
        }
        m
    }

    /// Element-wise symmetric int8 quantization, 8 elements per block:
    /// `vmulps` → `vcvtps2dq` (round-to-nearest-even, same as the scalar
    /// `round_ties_even`) → i32 clamp to ±127 → saturating packs to i8.
    /// Element-independent, so bit-identical to the scalar path for finite
    /// inputs at any block width.
    ///
    /// # Safety
    /// The caller must have verified AVX2+FMA support (via
    /// [`super::detect_best`]) before calling.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn quantize_i8(src: &[f32], inv: f32, out: &mut [i8]) {
        let blocks = src.len() / LANES * LANES;
        let vinv = _mm256_set1_ps(inv);
        let vmin = _mm256_set1_epi32(-127);
        let vmax = _mm256_set1_epi32(127);
        let mut i = 0;
        while i < blocks {
            let t = _mm256_mul_ps(_mm256_loadu_ps(src.as_ptr().add(i)), vinv);
            let r = _mm256_cvtps_epi32(t);
            let c = _mm256_min_epi32(_mm256_max_epi32(r, vmin), vmax);
            let w = _mm_packs_epi32(
                _mm256_castsi256_si128(c),
                _mm256_extracti128_si256::<1>(c),
            );
            _mm_storel_epi64(out.as_mut_ptr().add(i).cast(), _mm_packs_epi16(w, w));
            i += LANES;
        }
        for l in blocks..src.len() {
            out[l] = (src[l] * inv).round_ties_even().clamp(-127.0, 127.0) as i8;
        }
    }

    /// Element-wise four-step fused update.
    ///
    /// # Safety
    /// The caller must have verified AVX2+FMA support (via
    /// [`super::detect_best`]) before calling.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemm_update4(
        coef: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
        o: &mut [f32],
    ) {
        let [a0, a1, a2, a3] = coef;
        let n = o.len();
        let blocks = n / LANES * LANES;
        let (v0, v1, v2, v3) =
            (_mm256_set1_ps(a0), _mm256_set1_ps(a1), _mm256_set1_ps(a2), _mm256_set1_ps(a3));
        let mut i = 0;
        while i < blocks {
            let mut vo = _mm256_loadu_ps(o.as_ptr().add(i));
            vo = _mm256_fmadd_ps(v0, _mm256_loadu_ps(b0.as_ptr().add(i)), vo);
            vo = _mm256_fmadd_ps(v1, _mm256_loadu_ps(b1.as_ptr().add(i)), vo);
            vo = _mm256_fmadd_ps(v2, _mm256_loadu_ps(b2.as_ptr().add(i)), vo);
            vo = _mm256_fmadd_ps(v3, _mm256_loadu_ps(b3.as_ptr().add(i)), vo);
            _mm256_storeu_ps(o.as_mut_ptr().add(i), vo);
            i += LANES;
        }
        for l in blocks..n {
            let mut acc = a0.mul_add(b0[l], o[l]);
            acc = a1.mul_add(b1[l], acc);
            acc = a2.mul_add(b2[l], acc);
            o[l] = a3.mul_add(b3[l], acc);
        }
    }
}

// --- AVX-512 implementation -----------------------------------------------

/// AVX-512 (F + BW) implementation of the kernels that can widen to `zmm`
/// registers **without** touching the 8-lane reduction recipe:
///
/// * the element-wise f32 kernels (`axpy`, `gemm_update4`) — each output
///   element is its own independent fused-multiply-add chain, so block
///   width is unobservable and 16-wide blocks are bit-identical;
/// * the int8 kernels — exact integer arithmetic is associative, so any
///   accumulation order (here 32 int8 lanes widened to one `zmm` of i16,
///   `vpmaddwd` into 16 i32 lanes) gives the identical result.
///
/// The f32 *reductions* (`dot`, `dot3`, `dist_sq`) are deliberately absent:
/// widening them to 16 accumulator lanes would change which elements share
/// a chain and therefore the rounding. The dispatch layer routes them to
/// the [`avx2`] bodies instead (every AVX-512 host also has AVX2+FMA).
#[cfg(target_arch = "x86_64")]
pub mod avx512 {
    use std::arch::x86_64::{
        __m512i, _mm256_loadu_si256, _mm512_abs_ps, _mm512_add_epi32, _mm512_castsi512_si256,
        _mm512_cvtepi32_epi8, _mm512_cvtepi8_epi16, _mm512_cvtps_epi32,
        _mm512_extracti64x4_epi64, _mm512_fmadd_ps, _mm512_loadu_ps, _mm512_loadu_si512,
        _mm512_madd_epi16, _mm512_maskz_loadu_epi8, _mm512_max_epi32, _mm512_max_ps,
        _mm512_min_epi32, _mm512_mul_ps, _mm512_reduce_add_epi32, _mm512_set1_epi32,
        _mm512_set1_ps, _mm512_setzero_ps, _mm512_setzero_si512, _mm512_storeu_ps,
        _mm512_storeu_si512, _mm512_sub_epi16, _mm_storeu_si128,
    };

    /// f32 elements per `zmm` register.
    const W: usize = 16;

    /// int8 elements widened into one `zmm` of i16 per block.
    const I8_BLOCK: usize = 32;

    /// Element-wise fused `y[i] = fma(alpha, x[i], y[i])`, 16 elements per
    /// block. Identical per-element operation as the scalar and AVX2 paths.
    ///
    /// # Safety
    /// The caller must have verified AVX-512 F support (via
    /// [`super::supported`]) before calling.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        let blocks = x.len() / W * W;
        let va = _mm512_set1_ps(alpha);
        let mut i = 0;
        while i < blocks {
            let vx = _mm512_loadu_ps(x.as_ptr().add(i));
            let vy = _mm512_loadu_ps(y.as_ptr().add(i));
            _mm512_storeu_ps(y.as_mut_ptr().add(i), _mm512_fmadd_ps(va, vx, vy));
            i += W;
        }
        for l in blocks..x.len() {
            y[l] = alpha.mul_add(x[l], y[l]);
        }
    }

    /// Element-wise four-step fused update, 16 elements per block. The four
    /// fused updates chain in the same fixed order per element as the
    /// scalar path, so the result is bit-identical.
    ///
    /// # Safety
    /// The caller must have verified AVX-512 F support (via
    /// [`super::supported`]) before calling.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn gemm_update4(
        coef: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
        o: &mut [f32],
    ) {
        let [a0, a1, a2, a3] = coef;
        let n = o.len();
        let blocks = n / W * W;
        let (v0, v1, v2, v3) =
            (_mm512_set1_ps(a0), _mm512_set1_ps(a1), _mm512_set1_ps(a2), _mm512_set1_ps(a3));
        let mut i = 0;
        while i < blocks {
            let mut vo = _mm512_loadu_ps(o.as_ptr().add(i));
            vo = _mm512_fmadd_ps(v0, _mm512_loadu_ps(b0.as_ptr().add(i)), vo);
            vo = _mm512_fmadd_ps(v1, _mm512_loadu_ps(b1.as_ptr().add(i)), vo);
            vo = _mm512_fmadd_ps(v2, _mm512_loadu_ps(b2.as_ptr().add(i)), vo);
            vo = _mm512_fmadd_ps(v3, _mm512_loadu_ps(b3.as_ptr().add(i)), vo);
            _mm512_storeu_ps(o.as_mut_ptr().add(i), vo);
            i += W;
        }
        for l in blocks..n {
            let mut acc = a0.mul_add(b0[l], o[l]);
            acc = a1.mul_add(b1[l], acc);
            acc = a2.mul_add(b2[l], acc);
            o[l] = a3.mul_add(b3[l], acc);
        }
    }

    /// Largest absolute value: 16-lane `vmaxps` over `vabsps`-stripped
    /// lanes. Exactly associative, bit-identical to the scalar fold for
    /// finite inputs.
    ///
    /// # Safety
    /// The caller must have verified AVX-512 F support (via
    /// [`super::supported`]) before calling.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn max_abs(v: &[f32]) -> f32 {
        let blocks = v.len() / W * W;
        let mut acc = _mm512_setzero_ps();
        let mut i = 0;
        while i < blocks {
            acc = _mm512_max_ps(acc, _mm512_abs_ps(_mm512_loadu_ps(v.as_ptr().add(i))));
            i += W;
        }
        let mut lanes = [0.0f32; W];
        _mm512_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut m = lanes.iter().fold(0.0f32, |m, &x| m.max(x));
        for &x in &v[blocks..] {
            m = m.max(x.abs());
        }
        m
    }

    /// Element-wise symmetric int8 quantization, 16 elements per block:
    /// `vmulps` → `vcvtps2dq` (round-to-nearest-even, same as the scalar
    /// `round_ties_even`) → i32 clamp to ±127 → `vpmovdb` narrowing
    /// (truncation is exact after the clamp). Element-independent, so
    /// bit-identical to the scalar path for finite inputs.
    ///
    /// # Safety
    /// The caller must have verified AVX-512 F support (via
    /// [`super::supported`]) before calling.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn quantize_i8(src: &[f32], inv: f32, out: &mut [i8]) {
        let blocks = src.len() / W * W;
        let vinv = _mm512_set1_ps(inv);
        let vmin = _mm512_set1_epi32(-127);
        let vmax = _mm512_set1_epi32(127);
        let mut i = 0;
        while i < blocks {
            let t = _mm512_mul_ps(_mm512_loadu_ps(src.as_ptr().add(i)), vinv);
            let r = _mm512_cvtps_epi32(t);
            let c = _mm512_min_epi32(_mm512_max_epi32(r, vmin), vmax);
            _mm_storeu_si128(out.as_mut_ptr().add(i).cast(), _mm512_cvtepi32_epi8(c));
            i += W;
        }
        for l in blocks..src.len() {
            out[l] = (src[l] * inv).round_ties_even().clamp(-127.0, 127.0) as i8;
        }
    }

    /// Integer int8 dot product: 32 int8 lanes sign-extend to one `zmm` of
    /// i16 (`vpmovsxbw`), multiply-accumulate pairwise into 16 i32 lanes
    /// (`vpmaddwd`), lanes sum at the end. Exact integer arithmetic, so the
    /// result equals the scalar loop for any input — this is the kernel the
    /// int8 SimMatrix pairing pass rides.
    ///
    /// # Safety
    /// The caller must have verified AVX-512 F+BW support (via
    /// [`super::supported`]) before calling.
    #[target_feature(enable = "avx512f,avx512bw")]
    pub unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        // Two independent accumulators over a 64-byte stride keep the
        // widen→madd→add chain pipelined; integer addition is associative,
        // so the split cannot change the result.
        let pairs = a.len() / (2 * I8_BLOCK) * (2 * I8_BLOCK);
        let mut acc0 = _mm512_setzero_si512();
        let mut acc1 = _mm512_setzero_si512();
        let mut i = 0;
        while i < pairs {
            let va0 = _mm512_cvtepi8_epi16(_mm256_loadu_si256(a.as_ptr().add(i).cast()));
            let vb0 = _mm512_cvtepi8_epi16(_mm256_loadu_si256(b.as_ptr().add(i).cast()));
            let va1 =
                _mm512_cvtepi8_epi16(_mm256_loadu_si256(a.as_ptr().add(i + I8_BLOCK).cast()));
            let vb1 =
                _mm512_cvtepi8_epi16(_mm256_loadu_si256(b.as_ptr().add(i + I8_BLOCK).cast()));
            acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(va0, vb0));
            acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(va1, vb1));
            i += 2 * I8_BLOCK;
        }
        let blocks = a.len() / I8_BLOCK * I8_BLOCK;
        if i < blocks {
            let va = _mm512_cvtepi8_epi16(_mm256_loadu_si256(a.as_ptr().add(i).cast()));
            let vb = _mm512_cvtepi8_epi16(_mm256_loadu_si256(b.as_ptr().add(i).cast()));
            acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(va, vb));
        }
        let mut lanes = [0i32; 16];
        _mm512_storeu_si512(lanes.as_mut_ptr().cast(), _mm512_add_epi32(acc0, acc1));
        let mut total: i32 = lanes.iter().sum();
        for l in blocks..a.len() {
            total += a[l] as i32 * b[l] as i32;
        }
        total
    }

    /// Sign-extends the two 32-byte halves of one 64-byte `zmm` of i8 into
    /// two `zmm`s of i16 (`vpmovsxbw`).
    #[inline]
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn widen_i8x64(v: __m512i) -> (__m512i, __m512i) {
        (
            _mm512_cvtepi8_epi16(_mm512_castsi512_si256(v)),
            _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64::<1>(v)),
        )
    }

    /// One query row against a contiguous row block, two table rows per
    /// pass over full 64-byte chunks with a masked final chunk:
    ///
    /// * the widened query chunk is loaded once and madd-ed against both
    ///   rows, halving the query-side converts versus independent
    ///   [`dot_i8`] calls;
    /// * the tail (`d % 64` elements) runs through `vmovdqu8` with a zero
    ///   mask-fill instead of a scalar remainder loop — masked-out lanes
    ///   contribute an exact integer 0;
    /// * each accumulator collapses with `_mm512_reduce_add_epi32` rather
    ///   than a 16-lane scalar sum.
    ///
    /// All arithmetic is exact integer and addition is associative, so none
    /// of this changes any result (see [`super::dot_i8_batch`]).
    ///
    /// # Safety
    /// The caller must have verified AVX-512 F+BW support (via
    /// [`super::supported`]) before calling.
    #[target_feature(enable = "avx512f,avx512bw")]
    pub unsafe fn dot_i8_batch(a: &[i8], rows: &[i8], out: &mut [i32]) {
        if a.is_empty() {
            out.fill(0);
            return;
        }
        let d = a.len();
        const CHUNK: usize = 64;
        let full = d / CHUNK * CHUNK;
        let tail = d - full;
        let tmask: u64 = if tail == 0 { 0 } else { u64::MAX >> (CHUNK - tail) };
        let mut j = 0;
        while j + 2 <= out.len() {
            let r0 = rows.as_ptr().add(j * d);
            let r1 = rows.as_ptr().add((j + 1) * d);
            let mut acc0 = _mm512_setzero_si512();
            let mut acc1 = _mm512_setzero_si512();
            let mut i = 0;
            while i < full {
                let (qa_lo, qa_hi) =
                    widen_i8x64(_mm512_loadu_si512(a.as_ptr().add(i).cast()));
                let (v0_lo, v0_hi) = widen_i8x64(_mm512_loadu_si512(r0.add(i).cast()));
                let (v1_lo, v1_hi) = widen_i8x64(_mm512_loadu_si512(r1.add(i).cast()));
                acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(qa_lo, v0_lo));
                acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(qa_hi, v0_hi));
                acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(qa_lo, v1_lo));
                acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(qa_hi, v1_hi));
                i += CHUNK;
            }
            if tail != 0 {
                let (qa_lo, qa_hi) =
                    widen_i8x64(_mm512_maskz_loadu_epi8(tmask, a.as_ptr().add(full)));
                let (v0_lo, v0_hi) = widen_i8x64(_mm512_maskz_loadu_epi8(tmask, r0.add(full)));
                let (v1_lo, v1_hi) = widen_i8x64(_mm512_maskz_loadu_epi8(tmask, r1.add(full)));
                acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(qa_lo, v0_lo));
                acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(qa_hi, v0_hi));
                acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(qa_lo, v1_lo));
                acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(qa_hi, v1_hi));
            }
            out[j] = _mm512_reduce_add_epi32(acc0);
            out[j + 1] = _mm512_reduce_add_epi32(acc1);
            j += 2;
        }
        if j < out.len() {
            out[j] = dot_i8(a, &rows[j * d..(j + 1) * d]);
        }
    }

    /// Integer int8 squared distance: differences in i16 (range ±254, no
    /// overflow), squared and pair-summed by `vpmaddwd`. Exact integer.
    ///
    /// # Safety
    /// The caller must have verified AVX-512 F+BW support (via
    /// [`super::supported`]) before calling.
    #[target_feature(enable = "avx512f,avx512bw")]
    pub unsafe fn dist_sq_i8(a: &[i8], b: &[i8]) -> i32 {
        let blocks = a.len() / I8_BLOCK * I8_BLOCK;
        let mut acc = _mm512_setzero_si512();
        let mut i = 0;
        while i < blocks {
            let va = _mm512_cvtepi8_epi16(_mm256_loadu_si256(a.as_ptr().add(i).cast()));
            let vb = _mm512_cvtepi8_epi16(_mm256_loadu_si256(b.as_ptr().add(i).cast()));
            let d = _mm512_sub_epi16(va, vb);
            acc = _mm512_add_epi32(acc, _mm512_madd_epi16(d, d));
            i += I8_BLOCK;
        }
        let mut lanes = [0i32; 16];
        _mm512_storeu_si512(lanes.as_mut_ptr().cast(), acc);
        let mut total: i32 = lanes.iter().sum();
        for l in blocks..a.len() {
            let d = a[l] as i32 - b[l] as i32;
            total += d * d;
        }
        total
    }
}

// --- NEON implementation ----------------------------------------------------

/// NEON implementation for aarch64. The eight accumulator lanes of the
/// recipe split across two `float32x4_t` registers — `acc_lo` holds lanes
/// 0..4, `acc_hi` lanes 4..8 — and `vfmaq_f32` performs the same
/// single-rounding fused update per lane as `f32::mul_add`. Both halves
/// store into one `[f32; 8]` and collapse through the shared [`reduce8`]
/// tree, so the result is bit-identical to the scalar path. Tails run
/// scalar `mul_add` into lanes `0..len % 8`, exactly like the other ISAs.
#[cfg(target_arch = "aarch64")]
pub mod neon {
    use super::{reduce8, LANES};
    use std::arch::aarch64::{
        vabsq_f32, vaddq_s32, vaddvq_s32, vcombine_s16, vcvtnq_s32_f32, vdupq_n_f32, vdupq_n_s32,
        vfmaq_f32, vget_high_s16, vget_low_s16, vld1_s8, vld1q_f32, vmaxq_f32, vmaxq_s32,
        vmaxvq_f32, vminq_s32, vmull_s16, vmull_s8, vmulq_f32, vpadalq_s16, vqmovn_s16,
        vqmovn_s32, vst1_s8, vst1q_f32, vsubl_s8, vsubq_f32,
    };

    /// int8 elements per NEON block (one `int8x8_t` widened product).
    const I8_BLOCK: usize = 8;

    /// 8-lane dot product (two `float32x4_t` accumulators).
    ///
    /// # Safety
    /// The caller must have verified NEON support (via [`super::supported`])
    /// before calling.
    #[target_feature(enable = "neon")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let blocks = a.len() / LANES * LANES;
        let mut acc_lo = vdupq_n_f32(0.0);
        let mut acc_hi = vdupq_n_f32(0.0);
        let mut i = 0;
        while i < blocks {
            acc_lo = vfmaq_f32(acc_lo, vld1q_f32(a.as_ptr().add(i)), vld1q_f32(b.as_ptr().add(i)));
            acc_hi = vfmaq_f32(
                acc_hi,
                vld1q_f32(a.as_ptr().add(i + 4)),
                vld1q_f32(b.as_ptr().add(i + 4)),
            );
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        vst1q_f32(lanes.as_mut_ptr(), acc_lo);
        vst1q_f32(lanes.as_mut_ptr().add(4), acc_hi);
        for l in 0..a.len() - blocks {
            lanes[l] = a[blocks + l].mul_add(b[blocks + l], lanes[l]);
        }
        reduce8(lanes)
    }

    /// Fused `a·b`, `a·a`, `b·b` in one pass; each follows the dot recipe.
    ///
    /// # Safety
    /// The caller must have verified NEON support (via [`super::supported`])
    /// before calling.
    #[target_feature(enable = "neon")]
    pub unsafe fn dot3(a: &[f32], b: &[f32]) -> [f32; 3] {
        let blocks = a.len() / LANES * LANES;
        let mut ab_lo = vdupq_n_f32(0.0);
        let mut ab_hi = vdupq_n_f32(0.0);
        let mut aa_lo = vdupq_n_f32(0.0);
        let mut aa_hi = vdupq_n_f32(0.0);
        let mut bb_lo = vdupq_n_f32(0.0);
        let mut bb_hi = vdupq_n_f32(0.0);
        let mut i = 0;
        while i < blocks {
            let va_lo = vld1q_f32(a.as_ptr().add(i));
            let va_hi = vld1q_f32(a.as_ptr().add(i + 4));
            let vb_lo = vld1q_f32(b.as_ptr().add(i));
            let vb_hi = vld1q_f32(b.as_ptr().add(i + 4));
            ab_lo = vfmaq_f32(ab_lo, va_lo, vb_lo);
            ab_hi = vfmaq_f32(ab_hi, va_hi, vb_hi);
            aa_lo = vfmaq_f32(aa_lo, va_lo, va_lo);
            aa_hi = vfmaq_f32(aa_hi, va_hi, va_hi);
            bb_lo = vfmaq_f32(bb_lo, vb_lo, vb_lo);
            bb_hi = vfmaq_f32(bb_hi, vb_hi, vb_hi);
            i += LANES;
        }
        let mut lab = [0.0f32; LANES];
        let mut laa = [0.0f32; LANES];
        let mut lbb = [0.0f32; LANES];
        vst1q_f32(lab.as_mut_ptr(), ab_lo);
        vst1q_f32(lab.as_mut_ptr().add(4), ab_hi);
        vst1q_f32(laa.as_mut_ptr(), aa_lo);
        vst1q_f32(laa.as_mut_ptr().add(4), aa_hi);
        vst1q_f32(lbb.as_mut_ptr(), bb_lo);
        vst1q_f32(lbb.as_mut_ptr().add(4), bb_hi);
        for l in 0..a.len() - blocks {
            let (x, y) = (a[blocks + l], b[blocks + l]);
            lab[l] = x.mul_add(y, lab[l]);
            laa[l] = x.mul_add(x, laa[l]);
            lbb[l] = y.mul_add(y, lbb[l]);
        }
        [reduce8(lab), reduce8(laa), reduce8(lbb)]
    }

    /// 8-lane squared distance: `d = a - b` rounds once (`vsubq_f32`), then
    /// the fused `d * d + acc` per lane.
    ///
    /// # Safety
    /// The caller must have verified NEON support (via [`super::supported`])
    /// before calling.
    #[target_feature(enable = "neon")]
    pub unsafe fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
        let blocks = a.len() / LANES * LANES;
        let mut acc_lo = vdupq_n_f32(0.0);
        let mut acc_hi = vdupq_n_f32(0.0);
        let mut i = 0;
        while i < blocks {
            let d_lo = vsubq_f32(vld1q_f32(a.as_ptr().add(i)), vld1q_f32(b.as_ptr().add(i)));
            let d_hi =
                vsubq_f32(vld1q_f32(a.as_ptr().add(i + 4)), vld1q_f32(b.as_ptr().add(i + 4)));
            acc_lo = vfmaq_f32(acc_lo, d_lo, d_lo);
            acc_hi = vfmaq_f32(acc_hi, d_hi, d_hi);
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        vst1q_f32(lanes.as_mut_ptr(), acc_lo);
        vst1q_f32(lanes.as_mut_ptr().add(4), acc_hi);
        for l in 0..a.len() - blocks {
            let d = a[blocks + l] - b[blocks + l];
            lanes[l] = d.mul_add(d, lanes[l]);
        }
        reduce8(lanes)
    }

    /// Element-wise fused `y[i] = fma(alpha, x[i], y[i])`, four per block.
    ///
    /// # Safety
    /// The caller must have verified NEON support (via [`super::supported`])
    /// before calling.
    #[target_feature(enable = "neon")]
    pub unsafe fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        const W: usize = 4;
        let blocks = x.len() / W * W;
        let va = vdupq_n_f32(alpha);
        let mut i = 0;
        while i < blocks {
            let vy = vfmaq_f32(vld1q_f32(y.as_ptr().add(i)), va, vld1q_f32(x.as_ptr().add(i)));
            vst1q_f32(y.as_mut_ptr().add(i), vy);
            i += W;
        }
        for l in blocks..x.len() {
            y[l] = alpha.mul_add(x[l], y[l]);
        }
    }

    /// Element-wise four-step fused update; the four fused updates chain in
    /// the same fixed order per element as the scalar path.
    ///
    /// # Safety
    /// The caller must have verified NEON support (via [`super::supported`])
    /// before calling.
    #[target_feature(enable = "neon")]
    pub unsafe fn gemm_update4(
        coef: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
        o: &mut [f32],
    ) {
        const W: usize = 4;
        let [a0, a1, a2, a3] = coef;
        let n = o.len();
        let blocks = n / W * W;
        let (v0, v1, v2, v3) =
            (vdupq_n_f32(a0), vdupq_n_f32(a1), vdupq_n_f32(a2), vdupq_n_f32(a3));
        let mut i = 0;
        while i < blocks {
            let mut vo = vld1q_f32(o.as_ptr().add(i));
            vo = vfmaq_f32(vo, v0, vld1q_f32(b0.as_ptr().add(i)));
            vo = vfmaq_f32(vo, v1, vld1q_f32(b1.as_ptr().add(i)));
            vo = vfmaq_f32(vo, v2, vld1q_f32(b2.as_ptr().add(i)));
            vo = vfmaq_f32(vo, v3, vld1q_f32(b3.as_ptr().add(i)));
            vst1q_f32(o.as_mut_ptr().add(i), vo);
            i += W;
        }
        for l in blocks..n {
            let mut acc = a0.mul_add(b0[l], o[l]);
            acc = a1.mul_add(b1[l], acc);
            acc = a2.mul_add(b2[l], acc);
            o[l] = a3.mul_add(b3[l], acc);
        }
    }

    /// Largest absolute value: two 4-lane `vmaxq_f32` accumulators over
    /// `vabsq_f32`-stripped lanes, collapsed by `vmaxvq_f32`. Exactly
    /// associative, bit-identical to the scalar fold for finite inputs.
    ///
    /// # Safety
    /// The caller must have verified NEON support (via [`super::supported`])
    /// before calling.
    #[target_feature(enable = "neon")]
    pub unsafe fn max_abs(v: &[f32]) -> f32 {
        let blocks = v.len() / LANES * LANES;
        let mut acc_lo = vdupq_n_f32(0.0);
        let mut acc_hi = vdupq_n_f32(0.0);
        let mut i = 0;
        while i < blocks {
            acc_lo = vmaxq_f32(acc_lo, vabsq_f32(vld1q_f32(v.as_ptr().add(i))));
            acc_hi = vmaxq_f32(acc_hi, vabsq_f32(vld1q_f32(v.as_ptr().add(i + 4))));
            i += LANES;
        }
        let mut m = vmaxvq_f32(vmaxq_f32(acc_lo, acc_hi));
        for &x in &v[blocks..] {
            m = m.max(x.abs());
        }
        m
    }

    /// Element-wise symmetric int8 quantization, 8 elements per block:
    /// `vmulq_f32` → `vcvtnq_s32_f32` (round-to-nearest-even, same as the
    /// scalar `round_ties_even`) → i32 clamp to ±127 → saturating narrows
    /// to i8. Element-independent, so bit-identical to the scalar path for
    /// finite inputs.
    ///
    /// # Safety
    /// The caller must have verified NEON support (via [`super::supported`])
    /// before calling.
    #[target_feature(enable = "neon")]
    pub unsafe fn quantize_i8(src: &[f32], inv: f32, out: &mut [i8]) {
        let blocks = src.len() / LANES * LANES;
        let vinv = vdupq_n_f32(inv);
        let vmin = vdupq_n_s32(-127);
        let vmax = vdupq_n_s32(127);
        let mut i = 0;
        while i < blocks {
            let r0 = vcvtnq_s32_f32(vmulq_f32(vld1q_f32(src.as_ptr().add(i)), vinv));
            let r1 = vcvtnq_s32_f32(vmulq_f32(vld1q_f32(src.as_ptr().add(i + 4)), vinv));
            let c0 = vminq_s32(vmaxq_s32(r0, vmin), vmax);
            let c1 = vminq_s32(vmaxq_s32(r1, vmin), vmax);
            let w = vcombine_s16(vqmovn_s32(c0), vqmovn_s32(c1));
            vst1_s8(out.as_mut_ptr().add(i), vqmovn_s16(w));
            i += LANES;
        }
        for l in blocks..src.len() {
            out[l] = (src[l] * inv).round_ties_even().clamp(-127.0, 127.0) as i8;
        }
    }

    /// Integer int8 dot product: full i16 products via `vmull_s8`, pairwise
    /// add-accumulated into four i32 lanes (`vpadalq_s16`). Exact integer.
    ///
    /// # Safety
    /// The caller must have verified NEON support (via [`super::supported`])
    /// before calling.
    #[target_feature(enable = "neon")]
    pub unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        let blocks = a.len() / I8_BLOCK * I8_BLOCK;
        let mut acc = vdupq_n_s32(0);
        let mut i = 0;
        while i < blocks {
            let va = vld1_s8(a.as_ptr().add(i));
            let vb = vld1_s8(b.as_ptr().add(i));
            acc = vpadalq_s16(acc, vmull_s8(va, vb));
            i += I8_BLOCK;
        }
        let mut total = vaddvq_s32(acc);
        for l in blocks..a.len() {
            total += a[l] as i32 * b[l] as i32;
        }
        total
    }

    /// Integer int8 squared distance: widened differences (`vsubl_s8`,
    /// range ±254), squared into i32 via `vmull_s16` on each half. Exact.
    ///
    /// # Safety
    /// The caller must have verified NEON support (via [`super::supported`])
    /// before calling.
    #[target_feature(enable = "neon")]
    pub unsafe fn dist_sq_i8(a: &[i8], b: &[i8]) -> i32 {
        let blocks = a.len() / I8_BLOCK * I8_BLOCK;
        let mut acc = vdupq_n_s32(0);
        let mut i = 0;
        while i < blocks {
            let d = vsubl_s8(vld1_s8(a.as_ptr().add(i)), vld1_s8(b.as_ptr().add(i)));
            let (lo, hi) = (vget_low_s16(d), vget_high_s16(d));
            acc = vaddq_s32(acc, vmull_s16(lo, lo));
            acc = vaddq_s32(acc, vmull_s16(hi, hi));
            i += I8_BLOCK;
        }
        let mut total = vaddvq_s32(acc);
        for l in blocks..a.len() {
            let d = a[l] as i32 - b[l] as i32;
            total += d * d;
        }
        total
    }

    /// One query row against a contiguous row block: the per-row loop runs
    /// inside one `target_feature` scope, so [`dot_i8`] inlines and the
    /// dispatch cost is paid once per batch instead of once per entry.
    /// Exact integer (see [`super::dot_i8_batch`]).
    ///
    /// # Safety
    /// The caller must have verified NEON support (via [`super::supported`])
    /// before calling.
    #[target_feature(enable = "neon")]
    pub unsafe fn dot_i8_batch(a: &[i8], rows: &[i8], out: &mut [i32]) {
        if a.is_empty() {
            out.fill(0);
            return;
        }
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(a.len())) {
            *o = dot_i8(a, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn vecs(len: usize, seed: u64, scale: f32) -> (Vec<f32>, Vec<f32>) {
        let mut rng = Rng64::new(seed);
        let a = (0..len).map(|_| rng.normal() as f32 * scale).collect();
        let b = (0..len).map(|_| rng.normal() as f32 * scale).collect();
        (a, b)
    }

    /// Every kernel, every *available* implementation (AVX-512 and NEON
    /// included where the host supports them), every length 0..=40
    /// (covering all 8-lane remainders), all three magnitudes: each SIMD
    /// path must equal the scalar path bit for bit.
    #[test]
    fn every_available_impl_bit_identical_to_scalar() {
        for imp in available() {
            for len in 0..=40usize {
                for (seed, scale) in [(7, 1.0f32), (8, 1e-6), (9, 1e6)] {
                    let (a, b) = vecs(len, seed ^ len as u64, scale);
                    assert_eq!(
                        dot_with(imp, &a, &b).to_bits(),
                        dot_with(KernelImpl::Scalar, &a, &b).to_bits(),
                        "dot {} len {len}",
                        imp.name()
                    );
                    assert_eq!(
                        dist_sq_with(imp, &a, &b).to_bits(),
                        dist_sq_with(KernelImpl::Scalar, &a, &b).to_bits(),
                        "dist_sq {} len {len}",
                        imp.name()
                    );
                    assert_eq!(
                        cosine_with(imp, &a, &b).to_bits(),
                        cosine_with(KernelImpl::Scalar, &a, &b).to_bits(),
                        "cosine {} len {len}",
                        imp.name()
                    );
                    let (x, y0) = vecs(len, seed.wrapping_add(100) ^ len as u64, scale);
                    let mut y1 = y0.clone();
                    let mut y2 = y0;
                    axpy_with(imp, 0.37, &x, &mut y1);
                    axpy_with(KernelImpl::Scalar, 0.37, &x, &mut y2);
                    assert_eq!(
                        y1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        y2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "axpy {} len {len}",
                        imp.name()
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_update4_bit_identical_across_impls() {
        for imp in available() {
            for len in 0..=40usize {
                let (b0, b1) = vecs(len, 3 ^ len as u64, 1.0);
                let (b2, b3) = vecs(len, 4 ^ len as u64, 1.0);
                let (o0, _) = vecs(len, 5 ^ len as u64, 1.0);
                let coef = [0.5, -1.25, 3.0e-3, 7.5];
                let mut oa = o0.clone();
                let mut ob = o0;
                gemm_update4_with(imp, coef, &b0, &b1, &b2, &b3, &mut oa);
                gemm_update4_with(KernelImpl::Scalar, coef, &b0, &b1, &b2, &b3, &mut ob);
                assert_eq!(
                    oa.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    ob.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{} len {len}",
                    imp.name()
                );
            }
        }
    }

    #[test]
    fn dot3_components_match_standalone_dots() {
        for len in [0usize, 1, 7, 8, 9, 31, 300] {
            let (a, b) = vecs(len, 11 ^ len as u64, 1.0);
            let [ab, aa, bb] = scalar::dot3(&a, &b);
            assert_eq!(ab.to_bits(), scalar::dot(&a, &b).to_bits(), "ab len {len}");
            assert_eq!(aa.to_bits(), scalar::dot(&a, &a).to_bits(), "aa len {len}");
            assert_eq!(bb.to_bits(), scalar::dot(&b, &b).to_bits(), "bb len {len}");
        }
    }

    fn i8_vecs(len: usize, seed: u64) -> (Vec<i8>, Vec<i8>) {
        let mut rng = Rng64::new(seed);
        let gen = |rng: &mut Rng64| -> Vec<i8> {
            (0..len).map(|_| (rng.gen_range(255) as i32 - 127) as i8).collect()
        };
        let a = gen(&mut rng);
        let b = gen(&mut rng);
        (a, b)
    }

    /// The int8 kernels are exact integer arithmetic: every available path
    /// must equal the scalar path (and an i64 reference) on every length —
    /// 0..=70 covers remainders of the 16-wide AVX2 block, the 32-wide
    /// AVX-512 block, and the 8-wide NEON block — including the extreme
    /// ±127 corners.
    #[test]
    fn i8_kernels_exact_across_impls() {
        for imp in available() {
            for len in 0..=70usize {
                let (a, b) = i8_vecs(len, 31 ^ len as u64);
                let dot_ref: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
                let dist_ref: i64 = a
                    .iter()
                    .zip(&b)
                    .map(|(&x, &y)| {
                        let d = x as i64 - y as i64;
                        d * d
                    })
                    .sum();
                assert_eq!(
                    dot_i8_with(imp, &a, &b) as i64,
                    dot_ref,
                    "dot_i8 {} len {len}",
                    imp.name()
                );
                assert_eq!(
                    dot_i8_with(imp, &a, &b),
                    dot_i8_with(KernelImpl::Scalar, &a, &b),
                    "dot_i8 dispatch {} len {len}",
                    imp.name()
                );
                assert_eq!(
                    dist_sq_i8_with(imp, &a, &b) as i64,
                    dist_ref,
                    "dist_sq_i8 {} len {len}",
                    imp.name()
                );
                assert_eq!(
                    dist_sq_i8_with(imp, &a, &b),
                    dist_sq_i8_with(KernelImpl::Scalar, &a, &b),
                    "dist_sq_i8 dispatch {} len {len}",
                    imp.name()
                );
            }
        }
        let extremes: Vec<i8> = vec![127, -127, 127, -127, 127, -127, 127, -127];
        let negated: Vec<i8> = extremes.iter().map(|&v| -v).collect();
        assert_eq!(dot_i8(&extremes, &extremes), 8 * 127 * 127);
        assert_eq!(dist_sq_i8(&extremes, &negated), 8 * 254 * 254);
    }

    #[test]
    fn cosine_i8_scales_the_exact_dot() {
        let (a, b) = i8_vecs(64, 5);
        let expected = (dot_i8(&a, &b) as f32) * (0.01f32 * 0.02f32);
        assert_eq!(cosine_i8(&a, &b, 0.01, 0.02).to_bits(), expected.to_bits());
        assert_eq!(dot_i8(&[], &[]), 0);
        assert_eq!(dist_sq_i8(&[], &[]), 0);
    }

    #[test]
    fn dot_agrees_with_f64_reference() {
        for len in [1usize, 8, 13, 64, 300] {
            let (a, b) = vecs(len, 21 ^ len as u64, 1.0);
            let reference: f64 =
                a.iter().zip(&b).map(|(&x, &y)| x as f64 * y as f64).sum();
            let got = dot(&a, &b) as f64;
            assert!(
                (got - reference).abs() <= 1e-4 * reference.abs().max(1.0),
                "len {len}: {got} vs {reference}"
            );
        }
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dist_sq(&[], &[]), 0.0);
        assert_eq!(cosine(&[], &[]), 0.0);
        let mut y: Vec<f32> = Vec::new();
        axpy(2.0, &[], &mut y);
        assert!(y.is_empty());
    }

    #[test]
    fn impl_names_are_stable() {
        assert_eq!(KernelImpl::Scalar.name(), "scalar");
        assert_eq!(KernelImpl::Avx2Fma.name(), "avx2_fma");
        assert_eq!(KernelImpl::Avx512.name(), "avx512");
        assert_eq!(KernelImpl::Neon.name(), "neon");
        // active() must resolve to one of the known names.
        assert!(["scalar", "avx2_fma", "avx512", "neon"].contains(&active_name()));
    }

    /// The dispatch support probes are consistent: scalar is always
    /// supported, the availability list contains exactly the supported
    /// implementations (best first), and `detect_best` is its head.
    #[test]
    fn dispatch_probes_are_consistent() {
        assert!(supported(KernelImpl::Scalar));
        let avail = available();
        assert!(avail.contains(&KernelImpl::Scalar));
        for imp in ALL_IMPLS {
            assert_eq!(avail.contains(&imp), supported(imp), "{}", imp.name());
        }
        assert_eq!(detect_best(), avail[0]);
    }
}
