//! Lane-structured f32 kernels behind runtime CPU-feature dispatch.
//!
//! Every reduction kernel in this module — [`dot`], [`dist_sq`], the fused
//! [`cosine`] — is written against one fixed numeric recipe:
//!
//! 1. the input is consumed in blocks of [`LANES`] = 8 elements, each lane
//!    owning its own accumulator chain fed by fused multiply-adds
//!    (`f32::mul_add` / `vfmadd231ps`, one rounding per update);
//! 2. the tail (`len % 8` elements) folds into lanes `0..len % 8` with the
//!    same fused update (a lane that receives no tail element keeps its
//!    block-loop value exactly, because `fma(0, 0, acc) == acc`);
//! 3. the eight lane accumulators collapse in the fixed tree
//!    `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))` (`reduce8`).
//!
//! The element-wise kernels ([`axpy`], [`gemm_update4`]) perform the same
//! fused update per output element in both implementations, so they are
//! trivially bit-identical. Because the recipe — not the instruction set —
//! defines the result, the portable scalar path and the AVX2+FMA path
//! return **bit-identical f32 for every input length** (including the
//! 1..=15 remainders that straddle one or two vector registers). That is
//! the determinism contract the similarity cache and the smoke gate rely
//! on: `WYM_KERNEL=scalar` and `WYM_KERNEL=auto` runs of the full pipeline
//! must emit identical scores.
//!
//! Dispatch is resolved once per process ([`active`]) from CPUID plus the
//! `WYM_KERNEL` environment variable (`scalar` forces the portable path,
//! `auto`/unset picks the best supported one). The pipeline records the
//! resolved choice as the `kernel.dispatch.<name>` obs counter.

use std::sync::OnceLock;

/// Lane width of the accumulator pattern (one AVX2 `ymm` register of f32).
pub const LANES: usize = 8;

/// A kernel implementation selectable at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelImpl {
    /// Portable 8-lane scalar path (`f32::mul_add` per update).
    Scalar,
    /// AVX2 + FMA path via `std::arch` intrinsics (x86_64 only).
    Avx2Fma,
}

impl KernelImpl {
    /// Stable short name, used for the `kernel.dispatch.*` obs counter and
    /// the `WYM_KERNEL` override values.
    pub fn name(self) -> &'static str {
        match self {
            KernelImpl::Scalar => "scalar",
            KernelImpl::Avx2Fma => "avx2_fma",
        }
    }
}

/// The best implementation this CPU supports, ignoring `WYM_KERNEL`.
pub fn detect_best() -> KernelImpl {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
        {
            return KernelImpl::Avx2Fma;
        }
    }
    KernelImpl::Scalar
}

/// The implementation every dispatched kernel call routes to, resolved once
/// per process: `WYM_KERNEL=scalar` forces the portable path, anything else
/// (including unset and `auto`) defers to [`detect_best`]. An unknown value
/// warns once on stderr rather than failing — kernel selection must never
/// change results, so a typo is a performance concern, not a correctness
/// one.
pub fn active() -> KernelImpl {
    static ACTIVE: OnceLock<KernelImpl> = OnceLock::new();
    *ACTIVE.get_or_init(|| match std::env::var("WYM_KERNEL").ok().as_deref() {
        Some("scalar") => KernelImpl::Scalar,
        None | Some("") | Some("auto") => detect_best(),
        Some(other) => {
            eprintln!("warning: unknown WYM_KERNEL value {other:?}; using auto dispatch");
            detect_best()
        }
    })
}

/// Short name of the active implementation (`scalar` / `avx2_fma`).
pub fn active_name() -> &'static str {
    active().name()
}

/// The fixed lane-reduction tree shared by every implementation.
#[inline(always)]
fn reduce8(acc: [f32; LANES]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

// --- dispatched entry points ----------------------------------------------

/// Dot product `a · b` under the active implementation.
///
/// # Panics
/// Panics in debug builds on length mismatch.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    dot_with(active(), a, b)
}

/// `y += alpha * x` (fused per element) under the active implementation.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    axpy_with(active(), alpha, x, y);
}

/// Squared Euclidean distance under the active implementation.
#[inline]
pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    dist_sq_with(active(), a, b)
}

/// Fused cosine similarity: `a·b`, `a·a`, and `b·b` accumulate in one pass
/// over the inputs, then combine as `(ab / (sqrt(aa) * sqrt(bb)))` clamped
/// to `[-1, 1]`, returning 0.0 when either norm is ≤ `f32::EPSILON` (the
/// all-zero `[UNP]` embedding contract). Each of the three accumulations
/// follows the standard lane recipe, so `aa` here is bit-identical to
/// `dot(a, a)` computed on its own.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    cosine_with(active(), a, b)
}

/// The blocked-GEMM inner update: `o[i]` chains four fused multiply-adds
/// `o[i] = fma(a[3], b3[i], fma(a[2], b2[i], fma(a[1], b1[i],
/// fma(a[0], b0[i], o[i]))))` for every element of the output row.
#[inline]
pub fn gemm_update4(coef: [f32; 4], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32], o: &mut [f32]) {
    gemm_update4_with(active(), coef, b0, b1, b2, b3, o);
}

/// Integer dot product of two int8 vectors under the active implementation.
///
/// Every product `a[i] * b[i]` is exact in i32 and integer addition is
/// associative, so — unlike the f32 kernels — any accumulation order gives
/// the same result and bit-identity across implementations is structural,
/// not engineered. The i32 accumulator is exact for `len ≤ 133_000`
/// (|dot| ≤ len · 127²), far beyond any embedding dimension.
///
/// # Panics
/// Panics in debug builds on length mismatch.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    dot_i8_with(active(), a, b)
}

/// Integer squared Euclidean distance of two int8 vectors under the active
/// implementation. Exact for `len ≤ 33_000` (sum ≤ len · 254²).
#[inline]
pub fn dist_sq_i8(a: &[i8], b: &[i8]) -> i32 {
    dist_sq_i8_with(active(), a, b)
}

/// Fused int8 cosine: the exact integer dot scaled back to f32 by the two
/// per-vector quantization scales (`value ≈ q · scale`). Because the dot is
/// an exact integer and the two multiplies happen in one fixed order, the
/// result is bit-identical across implementations and thread counts — the
/// property the ANN blocking pass's determinism contract leans on.
#[inline]
pub fn cosine_i8(a: &[i8], b: &[i8], scale_a: f32, scale_b: f32) -> f32 {
    (dot_i8(a, b) as f32) * (scale_a * scale_b)
}

// --- explicit-implementation entry points (tests, benches) ----------------

/// [`dot_i8`] under an explicitly chosen implementation.
#[inline]
pub fn dot_i8_with(imp: KernelImpl, a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    match imp {
        KernelImpl::Scalar => scalar::dot_i8(a, b),
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx2Fma => unsafe { avx2::dot_i8(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelImpl::Avx2Fma => scalar::dot_i8(a, b),
    }
}

/// [`cosine_i8`] under an explicitly chosen implementation.
#[inline]
pub fn cosine_i8_with(imp: KernelImpl, a: &[i8], b: &[i8], scale_a: f32, scale_b: f32) -> f32 {
    (dot_i8_with(imp, a, b) as f32) * (scale_a * scale_b)
}

/// [`dist_sq_i8`] under an explicitly chosen implementation.
#[inline]
pub fn dist_sq_i8_with(imp: KernelImpl, a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    match imp {
        KernelImpl::Scalar => scalar::dist_sq_i8(a, b),
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx2Fma => unsafe { avx2::dist_sq_i8(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelImpl::Avx2Fma => scalar::dist_sq_i8(a, b),
    }
}

/// [`dot`] under an explicitly chosen implementation.
#[inline]
pub fn dot_with(imp: KernelImpl, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match imp {
        KernelImpl::Scalar => scalar::dot(a, b),
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx2Fma => unsafe { avx2::dot(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelImpl::Avx2Fma => scalar::dot(a, b),
    }
}

/// [`axpy`] under an explicitly chosen implementation.
#[inline]
pub fn axpy_with(imp: KernelImpl, alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    match imp {
        KernelImpl::Scalar => scalar::axpy(alpha, x, y),
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx2Fma => unsafe { avx2::axpy(alpha, x, y) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelImpl::Avx2Fma => scalar::axpy(alpha, x, y),
    }
}

/// [`dist_sq`] under an explicitly chosen implementation.
#[inline]
pub fn dist_sq_with(imp: KernelImpl, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match imp {
        KernelImpl::Scalar => scalar::dist_sq(a, b),
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx2Fma => unsafe { avx2::dist_sq(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelImpl::Avx2Fma => scalar::dist_sq(a, b),
    }
}

/// [`cosine`] under an explicitly chosen implementation.
#[inline]
pub fn cosine_with(imp: KernelImpl, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let [ab, aa, bb] = match imp {
        KernelImpl::Scalar => scalar::dot3(a, b),
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx2Fma => unsafe { avx2::dot3(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelImpl::Avx2Fma => scalar::dot3(a, b),
    };
    let (na, nb) = (aa.sqrt(), bb.sqrt());
    if na <= f32::EPSILON || nb <= f32::EPSILON {
        return 0.0;
    }
    (ab / (na * nb)).clamp(-1.0, 1.0)
}

/// [`gemm_update4`] under an explicitly chosen implementation.
#[inline]
pub fn gemm_update4_with(
    imp: KernelImpl,
    coef: [f32; 4],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
    o: &mut [f32],
) {
    debug_assert!(
        b0.len() == o.len() && b1.len() == o.len() && b2.len() == o.len() && b3.len() == o.len()
    );
    match imp {
        KernelImpl::Scalar => scalar::gemm_update4(coef, b0, b1, b2, b3, o),
        #[cfg(target_arch = "x86_64")]
        KernelImpl::Avx2Fma => unsafe { avx2::gemm_update4(coef, b0, b1, b2, b3, o) },
        #[cfg(not(target_arch = "x86_64"))]
        KernelImpl::Avx2Fma => scalar::gemm_update4(coef, b0, b1, b2, b3, o),
    }
}

// --- portable 8-lane scalar implementation --------------------------------

/// The portable reference implementation: the exact lane recipe of the SIMD
/// path expressed with `f32::mul_add`, which glibc/LLVM lower to a hardware
/// FMA where one exists and to the correctly rounded soft-float `fmaf`
/// otherwise — in both cases one rounding per update, like `vfmadd`.
pub mod scalar {
    use super::{reduce8, LANES};

    /// 8-lane dot product.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        let blocks = a.len() / LANES * LANES;
        for (ca, cb) in a[..blocks].chunks_exact(LANES).zip(b[..blocks].chunks_exact(LANES)) {
            for l in 0..LANES {
                acc[l] = ca[l].mul_add(cb[l], acc[l]);
            }
        }
        for l in 0..a.len() - blocks {
            acc[l] = a[blocks + l].mul_add(b[blocks + l], acc[l]);
        }
        reduce8(acc)
    }

    /// Fused `a·b`, `a·a`, `b·b` in one pass; each follows the dot recipe.
    pub fn dot3(a: &[f32], b: &[f32]) -> [f32; 3] {
        let mut ab = [0.0f32; LANES];
        let mut aa = [0.0f32; LANES];
        let mut bb = [0.0f32; LANES];
        let blocks = a.len() / LANES * LANES;
        for (ca, cb) in a[..blocks].chunks_exact(LANES).zip(b[..blocks].chunks_exact(LANES)) {
            for l in 0..LANES {
                ab[l] = ca[l].mul_add(cb[l], ab[l]);
                aa[l] = ca[l].mul_add(ca[l], aa[l]);
                bb[l] = cb[l].mul_add(cb[l], bb[l]);
            }
        }
        for l in 0..a.len() - blocks {
            let (x, y) = (a[blocks + l], b[blocks + l]);
            ab[l] = x.mul_add(y, ab[l]);
            aa[l] = x.mul_add(x, aa[l]);
            bb[l] = y.mul_add(y, bb[l]);
        }
        [reduce8(ab), reduce8(aa), reduce8(bb)]
    }

    /// 8-lane squared distance: `d = a - b` rounds once, then `fma(d, d, acc)`.
    pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        let blocks = a.len() / LANES * LANES;
        for (ca, cb) in a[..blocks].chunks_exact(LANES).zip(b[..blocks].chunks_exact(LANES)) {
            for l in 0..LANES {
                let d = ca[l] - cb[l];
                acc[l] = d.mul_add(d, acc[l]);
            }
        }
        for l in 0..a.len() - blocks {
            let d = a[blocks + l] - b[blocks + l];
            acc[l] = d.mul_add(d, acc[l]);
        }
        reduce8(acc)
    }

    /// Element-wise fused `y[i] = fma(alpha, x[i], y[i])`.
    pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi = alpha.mul_add(xi, *yi);
        }
    }

    /// Integer int8 dot product (exact; see [`super::dot_i8`]).
    pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        let mut acc = 0i32;
        for (&x, &y) in a.iter().zip(b) {
            acc += x as i32 * y as i32;
        }
        acc
    }

    /// Integer int8 squared distance (exact; see [`super::dist_sq_i8`]).
    pub fn dist_sq_i8(a: &[i8], b: &[i8]) -> i32 {
        let mut acc = 0i32;
        for (&x, &y) in a.iter().zip(b) {
            let d = x as i32 - y as i32;
            acc += d * d;
        }
        acc
    }

    /// Element-wise four-step fused update (see [`super::gemm_update4`]).
    pub fn gemm_update4(
        coef: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
        o: &mut [f32],
    ) {
        let [a0, a1, a2, a3] = coef;
        for (i, oi) in o.iter_mut().enumerate() {
            let mut acc = a0.mul_add(b0[i], *oi);
            acc = a1.mul_add(b1[i], acc);
            acc = a2.mul_add(b2[i], acc);
            *oi = a3.mul_add(b3[i], acc);
        }
    }
}

// --- AVX2 + FMA implementation --------------------------------------------

/// AVX2+FMA implementation. Every function is `unsafe` because it requires
/// the `avx2`/`fma` target features; callers go through the dispatched
/// entry points, which only select this module after CPUID detection.
///
/// The block loop maps one lane accumulator to one `ymm` lane; the scalar
/// tail runs under the same `#[target_feature]` scope, so its
/// `f32::mul_add` compiles to the `vfmadd` instruction — the identical
/// operation the vector body performs per lane.
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use super::{reduce8, LANES};
    use std::arch::x86_64::{
        _mm256_add_epi32, _mm256_cvtepi8_epi16, _mm256_fmadd_ps, _mm256_loadu_ps,
        _mm256_madd_epi16, _mm256_set1_ps, _mm256_setzero_ps, _mm256_setzero_si256,
        _mm256_storeu_ps, _mm256_storeu_si256, _mm256_sub_epi16, _mm256_sub_ps, _mm_loadu_si128,
    };

    /// 8-lane dot product.
    ///
    /// # Safety
    /// The caller must have verified AVX2+FMA support (via
    /// [`super::detect_best`]) before calling.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let blocks = a.len() / LANES * LANES;
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < blocks {
            let va = _mm256_loadu_ps(a.as_ptr().add(i));
            let vb = _mm256_loadu_ps(b.as_ptr().add(i));
            acc = _mm256_fmadd_ps(va, vb, acc);
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for l in 0..a.len() - blocks {
            lanes[l] = a[blocks + l].mul_add(b[blocks + l], lanes[l]);
        }
        reduce8(lanes)
    }

    /// Fused `a·b`, `a·a`, `b·b` in one pass.
    ///
    /// # Safety
    /// The caller must have verified AVX2+FMA support (via
    /// [`super::detect_best`]) before calling.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot3(a: &[f32], b: &[f32]) -> [f32; 3] {
        let blocks = a.len() / LANES * LANES;
        let mut ab = _mm256_setzero_ps();
        let mut aa = _mm256_setzero_ps();
        let mut bb = _mm256_setzero_ps();
        let mut i = 0;
        while i < blocks {
            let va = _mm256_loadu_ps(a.as_ptr().add(i));
            let vb = _mm256_loadu_ps(b.as_ptr().add(i));
            ab = _mm256_fmadd_ps(va, vb, ab);
            aa = _mm256_fmadd_ps(va, va, aa);
            bb = _mm256_fmadd_ps(vb, vb, bb);
            i += LANES;
        }
        let mut lab = [0.0f32; LANES];
        let mut laa = [0.0f32; LANES];
        let mut lbb = [0.0f32; LANES];
        _mm256_storeu_ps(lab.as_mut_ptr(), ab);
        _mm256_storeu_ps(laa.as_mut_ptr(), aa);
        _mm256_storeu_ps(lbb.as_mut_ptr(), bb);
        for l in 0..a.len() - blocks {
            let (x, y) = (a[blocks + l], b[blocks + l]);
            lab[l] = x.mul_add(y, lab[l]);
            laa[l] = x.mul_add(x, laa[l]);
            lbb[l] = y.mul_add(y, lbb[l]);
        }
        [reduce8(lab), reduce8(laa), reduce8(lbb)]
    }

    /// 8-lane squared distance.
    ///
    /// # Safety
    /// The caller must have verified AVX2+FMA support (via
    /// [`super::detect_best`]) before calling.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
        let blocks = a.len() / LANES * LANES;
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < blocks {
            let va = _mm256_loadu_ps(a.as_ptr().add(i));
            let vb = _mm256_loadu_ps(b.as_ptr().add(i));
            let d = _mm256_sub_ps(va, vb);
            acc = _mm256_fmadd_ps(d, d, acc);
            i += LANES;
        }
        let mut lanes = [0.0f32; LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        for l in 0..a.len() - blocks {
            let d = a[blocks + l] - b[blocks + l];
            lanes[l] = d.mul_add(d, lanes[l]);
        }
        reduce8(lanes)
    }

    /// Element-wise fused `y[i] = fma(alpha, x[i], y[i])`.
    ///
    /// # Safety
    /// The caller must have verified AVX2+FMA support (via
    /// [`super::detect_best`]) before calling.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        let blocks = x.len() / LANES * LANES;
        let va = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i < blocks {
            let vx = _mm256_loadu_ps(x.as_ptr().add(i));
            let vy = _mm256_loadu_ps(y.as_ptr().add(i));
            _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_fmadd_ps(va, vx, vy));
            i += LANES;
        }
        for l in blocks..x.len() {
            y[l] = alpha.mul_add(x[l], y[l]);
        }
    }

    /// Width of one int8 block: 16 lanes widened to i16 in one `ymm`.
    const I8_BLOCK: usize = 16;

    /// Integer int8 dot product: 16 int8 lanes sign-extend to i16
    /// (`vpmovsxbw`), multiply-accumulate pairwise into 8 i32 lanes
    /// (`vpmaddwd`), and the lanes sum at the end. All arithmetic is exact
    /// integer, so the result equals the scalar loop for any input.
    ///
    /// # Safety
    /// The caller must have verified AVX2+FMA support (via
    /// [`super::detect_best`]) before calling.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        let blocks = a.len() / I8_BLOCK * I8_BLOCK;
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i < blocks {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i).cast()));
            let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i).cast()));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
            i += I8_BLOCK;
        }
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
        let mut total: i32 = lanes.iter().sum();
        for l in blocks..a.len() {
            total += a[l] as i32 * b[l] as i32;
        }
        total
    }

    /// Integer int8 squared distance: differences in i16 (range ±254, no
    /// overflow), squared and pair-summed by `vpmaddwd`. Exact integer.
    ///
    /// # Safety
    /// The caller must have verified AVX2+FMA support (via
    /// [`super::detect_best`]) before calling.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dist_sq_i8(a: &[i8], b: &[i8]) -> i32 {
        let blocks = a.len() / I8_BLOCK * I8_BLOCK;
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i < blocks {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(i).cast()));
            let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(i).cast()));
            let d = _mm256_sub_epi16(va, vb);
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d, d));
            i += I8_BLOCK;
        }
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
        let mut total: i32 = lanes.iter().sum();
        for l in blocks..a.len() {
            let d = a[l] as i32 - b[l] as i32;
            total += d * d;
        }
        total
    }

    /// Element-wise four-step fused update.
    ///
    /// # Safety
    /// The caller must have verified AVX2+FMA support (via
    /// [`super::detect_best`]) before calling.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemm_update4(
        coef: [f32; 4],
        b0: &[f32],
        b1: &[f32],
        b2: &[f32],
        b3: &[f32],
        o: &mut [f32],
    ) {
        let [a0, a1, a2, a3] = coef;
        let n = o.len();
        let blocks = n / LANES * LANES;
        let (v0, v1, v2, v3) =
            (_mm256_set1_ps(a0), _mm256_set1_ps(a1), _mm256_set1_ps(a2), _mm256_set1_ps(a3));
        let mut i = 0;
        while i < blocks {
            let mut vo = _mm256_loadu_ps(o.as_ptr().add(i));
            vo = _mm256_fmadd_ps(v0, _mm256_loadu_ps(b0.as_ptr().add(i)), vo);
            vo = _mm256_fmadd_ps(v1, _mm256_loadu_ps(b1.as_ptr().add(i)), vo);
            vo = _mm256_fmadd_ps(v2, _mm256_loadu_ps(b2.as_ptr().add(i)), vo);
            vo = _mm256_fmadd_ps(v3, _mm256_loadu_ps(b3.as_ptr().add(i)), vo);
            _mm256_storeu_ps(o.as_mut_ptr().add(i), vo);
            i += LANES;
        }
        for l in blocks..n {
            let mut acc = a0.mul_add(b0[l], o[l]);
            acc = a1.mul_add(b1[l], acc);
            acc = a2.mul_add(b2[l], acc);
            o[l] = a3.mul_add(b3[l], acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn vecs(len: usize, seed: u64, scale: f32) -> (Vec<f32>, Vec<f32>) {
        let mut rng = Rng64::new(seed);
        let a = (0..len).map(|_| rng.normal() as f32 * scale).collect();
        let b = (0..len).map(|_| rng.normal() as f32 * scale).collect();
        (a, b)
    }

    /// Every kernel, every length 0..=40 (covering all 8-lane remainders),
    /// both magnitudes: the best-detected path must equal the scalar path
    /// bit for bit.
    #[test]
    fn best_impl_bit_identical_to_scalar() {
        let best = detect_best();
        for len in 0..=40usize {
            for (seed, scale) in [(7, 1.0f32), (8, 1e-6), (9, 1e6)] {
                let (a, b) = vecs(len, seed ^ len as u64, scale);
                assert_eq!(
                    dot_with(best, &a, &b).to_bits(),
                    dot_with(KernelImpl::Scalar, &a, &b).to_bits(),
                    "dot len {len}"
                );
                assert_eq!(
                    dist_sq_with(best, &a, &b).to_bits(),
                    dist_sq_with(KernelImpl::Scalar, &a, &b).to_bits(),
                    "dist_sq len {len}"
                );
                assert_eq!(
                    cosine_with(best, &a, &b).to_bits(),
                    cosine_with(KernelImpl::Scalar, &a, &b).to_bits(),
                    "cosine len {len}"
                );
                let (x, y0) = vecs(len, seed.wrapping_add(100) ^ len as u64, scale);
                let mut y1 = y0.clone();
                let mut y2 = y0;
                axpy_with(best, 0.37, &x, &mut y1);
                axpy_with(KernelImpl::Scalar, 0.37, &x, &mut y2);
                assert_eq!(
                    y1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    y2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "axpy len {len}"
                );
            }
        }
    }

    #[test]
    fn gemm_update4_bit_identical_across_impls() {
        let best = detect_best();
        for len in 0..=40usize {
            let (b0, b1) = vecs(len, 3 ^ len as u64, 1.0);
            let (b2, b3) = vecs(len, 4 ^ len as u64, 1.0);
            let (o0, _) = vecs(len, 5 ^ len as u64, 1.0);
            let coef = [0.5, -1.25, 3.0e-3, 7.5];
            let mut oa = o0.clone();
            let mut ob = o0;
            gemm_update4_with(best, coef, &b0, &b1, &b2, &b3, &mut oa);
            gemm_update4_with(KernelImpl::Scalar, coef, &b0, &b1, &b2, &b3, &mut ob);
            assert_eq!(
                oa.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                ob.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len {len}"
            );
        }
    }

    #[test]
    fn dot3_components_match_standalone_dots() {
        for len in [0usize, 1, 7, 8, 9, 31, 300] {
            let (a, b) = vecs(len, 11 ^ len as u64, 1.0);
            let [ab, aa, bb] = scalar::dot3(&a, &b);
            assert_eq!(ab.to_bits(), scalar::dot(&a, &b).to_bits(), "ab len {len}");
            assert_eq!(aa.to_bits(), scalar::dot(&a, &a).to_bits(), "aa len {len}");
            assert_eq!(bb.to_bits(), scalar::dot(&b, &b).to_bits(), "bb len {len}");
        }
    }

    fn i8_vecs(len: usize, seed: u64) -> (Vec<i8>, Vec<i8>) {
        let mut rng = Rng64::new(seed);
        let gen = |rng: &mut Rng64| -> Vec<i8> {
            (0..len).map(|_| (rng.gen_range(255) as i32 - 127) as i8).collect()
        };
        let a = gen(&mut rng);
        let b = gen(&mut rng);
        (a, b)
    }

    /// The int8 kernels are exact integer arithmetic: the best-detected path
    /// must equal the scalar path (and an i64 reference) on every length,
    /// including the extreme ±127 corners.
    #[test]
    fn i8_kernels_exact_across_impls() {
        let best = detect_best();
        for len in 0..=70usize {
            let (a, b) = i8_vecs(len, 31 ^ len as u64);
            let dot_ref: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
            let dist_ref: i64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| {
                    let d = x as i64 - y as i64;
                    d * d
                })
                .sum();
            assert_eq!(dot_i8_with(best, &a, &b) as i64, dot_ref, "dot_i8 len {len}");
            assert_eq!(
                dot_i8_with(best, &a, &b),
                dot_i8_with(KernelImpl::Scalar, &a, &b),
                "dot_i8 dispatch len {len}"
            );
            assert_eq!(dist_sq_i8_with(best, &a, &b) as i64, dist_ref, "dist_sq_i8 len {len}");
            assert_eq!(
                dist_sq_i8_with(best, &a, &b),
                dist_sq_i8_with(KernelImpl::Scalar, &a, &b),
                "dist_sq_i8 dispatch len {len}"
            );
        }
        let extremes: Vec<i8> = vec![127, -127, 127, -127, 127, -127, 127, -127];
        let negated: Vec<i8> = extremes.iter().map(|&v| -v).collect();
        assert_eq!(dot_i8(&extremes, &extremes), 8 * 127 * 127);
        assert_eq!(dist_sq_i8(&extremes, &negated), 8 * 254 * 254);
    }

    #[test]
    fn cosine_i8_scales_the_exact_dot() {
        let (a, b) = i8_vecs(64, 5);
        let expected = (dot_i8(&a, &b) as f32) * (0.01f32 * 0.02f32);
        assert_eq!(cosine_i8(&a, &b, 0.01, 0.02).to_bits(), expected.to_bits());
        assert_eq!(dot_i8(&[], &[]), 0);
        assert_eq!(dist_sq_i8(&[], &[]), 0);
    }

    #[test]
    fn dot_agrees_with_f64_reference() {
        for len in [1usize, 8, 13, 64, 300] {
            let (a, b) = vecs(len, 21 ^ len as u64, 1.0);
            let reference: f64 =
                a.iter().zip(&b).map(|(&x, &y)| x as f64 * y as f64).sum();
            let got = dot(&a, &b) as f64;
            assert!(
                (got - reference).abs() <= 1e-4 * reference.abs().max(1.0),
                "len {len}: {got} vs {reference}"
            );
        }
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dist_sq(&[], &[]), 0.0);
        assert_eq!(cosine(&[], &[]), 0.0);
        let mut y: Vec<f32> = Vec::new();
        axpy(2.0, &[], &mut y);
        assert!(y.is_empty());
    }

    #[test]
    fn impl_names_are_stable() {
        assert_eq!(KernelImpl::Scalar.name(), "scalar");
        assert_eq!(KernelImpl::Avx2Fma.name(), "avx2_fma");
        // active() must resolve to one of the two known names.
        assert!(["scalar", "avx2_fma"].contains(&active_name()));
    }
}
