//! Deterministic pseudo-random number generation.
//!
//! Every stochastic step in the reproduction (weight init, mini-batch
//! shuffling, dataset synthesis, perturbation sampling) draws from this
//! generator so that runs are reproducible across machines without relying
//! on platform entropy. The core is splitmix64, which has excellent
//! statistical quality for its size and is trivially seedable.

/// A splitmix64-based deterministic RNG.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }

    /// Derives an independent child generator; useful to give each record or
    /// worker its own stream that does not depend on evaluation order.
    pub fn fork(&mut self, salt: u64) -> Rng64 {
        let s = self.next_u64() ^ salt.wrapping_mul(0xA24B_AED4_963E_E407);
        Rng64::new(s)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn gen_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) / ((1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) / ((1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Returns 0 when `n == 0`.
    #[inline]
    pub fn gen_range(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1 = self.gen_f64().max(1e-12);
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i + 1);
            items.swap(i, j);
        }
    }

    /// Uniformly chooses one element, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_range(items.len())])
        }
    }

    /// Samples `k` distinct indices from `0..n` (or all of them if `k >= n`).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k.min(n));
        idx
    }
}

/// Stable 64-bit FNV-1a hash of a byte string; used wherever a *value*
/// (a token, a dataset name) must be turned into a reproducible seed.
pub fn hash64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::new(5);
        let mut b = Rng64::new(5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_f32_in_unit_interval() {
        let mut rng = Rng64::new(9);
        for _ in 0..10_000 {
            let v = rng.gen_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = Rng64::new(3);
        for _ in 0..1000 {
            assert!(rng.gen_range(7) < 7);
        }
        assert_eq!(rng.gen_range(0), 0);
    }

    #[test]
    fn normal_mean_and_var_are_plausible() {
        let mut rng = Rng64::new(1234);
        let n = 50_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let v = rng.normal();
            sum += v;
            sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::new(7);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng64::new(8);
        let s = rng.sample_indices(20, 10);
        assert_eq!(s.len(), 10);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 10);
    }

    #[test]
    fn hash64_stable_and_distinct() {
        assert_eq!(hash64(b"abc"), hash64(b"abc"));
        assert_ne!(hash64(b"abc"), hash64(b"abd"));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Rng64::new(10);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
