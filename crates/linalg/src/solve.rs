//! Linear-system solving via Gaussian elimination with partial pivoting.
//!
//! Used by the LDA classifier (`Σ_pooled w = (μ1 − μ0)`) and by the ridge
//! surrogate inside the LIME-style explainer (`(XᵀX + λI) w = Xᵀy`).

use crate::Matrix;

/// Error returned when a system has no unique solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrix;

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular (or numerically so)")
    }
}

impl std::error::Error for SingularMatrix {}

/// Solves `A x = b` for square `A` using Gaussian elimination with partial
/// pivoting. `A` and `b` are copied; the inputs are untouched.
///
/// # Errors
/// Returns [`SingularMatrix`] when a pivot falls below `1e-10`.
pub fn solve(a: &Matrix, b: &[f32]) -> Result<Vec<f32>, SingularMatrix> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve requires a square matrix");
    assert_eq!(b.len(), n, "rhs length must match matrix size");

    // Work in f64 for stability; the covariance systems in LDA are often
    // poorly conditioned on near-constant features.
    let mut m = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            m[i * n + j] = a[(i, j)] as f64;
        }
    }
    let mut rhs: Vec<f64> = b.iter().map(|&v| v as f64).collect();

    for col in 0..n {
        // Partial pivot: largest |entry| in this column at or below the diagonal.
        let mut pivot_row = col;
        let mut pivot_val = m[col * n + col].abs();
        for r in col + 1..n {
            let v = m[r * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-10 {
            return Err(SingularMatrix);
        }
        if pivot_row != col {
            for j in 0..n {
                m.swap(col * n + j, pivot_row * n + j);
            }
            rhs.swap(col, pivot_row);
        }
        let pivot = m[col * n + col];
        for r in col + 1..n {
            let factor = m[r * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                m[r * n + j] -= factor * m[col * n + j];
            }
            rhs[r] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut acc = rhs[i];
        for j in i + 1..n {
            acc -= m[i * n + j] * x[j];
        }
        x[i] = acc / m[i * n + i];
    }
    Ok(x.into_iter().map(|v| v as f32).collect())
}

/// Solves the ridge-regularized least squares `(XᵀWX + λI) β = XᵀWy`,
/// where `w` are per-sample weights. This is the surrogate-model fit used by
/// perturbation-based explainers.
pub fn ridge_weighted(
    x: &Matrix,
    y: &[f32],
    w: &[f32],
    lambda: f32,
) -> Result<Vec<f32>, SingularMatrix> {
    let (n, d) = x.shape();
    assert_eq!(y.len(), n);
    assert_eq!(w.len(), n);
    let mut xtx = Matrix::zeros(d, d);
    let mut xty = vec![0.0f32; d];
    for i in 0..n {
        let row = x.row(i);
        let wi = w[i];
        for a in 0..d {
            let va = row[a] * wi;
            if va == 0.0 {
                continue;
            }
            for b in 0..d {
                xtx[(a, b)] += va * row[b];
            }
            xty[a] += va * y[i];
        }
    }
    for a in 0..d {
        xtx[(a, a)] += lambda.max(1e-6);
    }
    solve(&xtx, &xty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-5);
        assert!((x[1] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn solve_identity_returns_rhs() {
        let x = solve(&Matrix::identity(3), &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(SingularMatrix));
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the first diagonal entry: naive elimination would divide by 0.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-6);
        assert!((x[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn solve_residual_small_on_random_system() {
        let mut rng = Rng64::new(99);
        let a = Matrix::randn(8, 8, 1.0, &mut rng);
        let b: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let x = solve(&a, &b).unwrap();
        // Verify A x ≈ b.
        for i in 0..8 {
            let got: f32 = (0..8).map(|j| a[(i, j)] * x[j]).sum();
            assert!((got - b[i]).abs() < 1e-3, "row {i}: {got} vs {}", b[i]);
        }
    }

    #[test]
    fn ridge_recovers_linear_coefficients() {
        // y = 2*x0 - x1, plenty of samples, tiny lambda.
        let mut rng = Rng64::new(4);
        let x = Matrix::randn(200, 2, 1.0, &mut rng);
        let y: Vec<f32> = x.iter_rows().map(|r| 2.0 * r[0] - r[1]).collect();
        let w = vec![1.0; 200];
        let beta = ridge_weighted(&x, &y, &w, 1e-4).unwrap();
        assert!((beta[0] - 2.0).abs() < 0.01, "{beta:?}");
        assert!((beta[1] + 1.0).abs() < 0.01, "{beta:?}");
    }

    #[test]
    fn ridge_respects_sample_weights() {
        // Two populations with conflicting slopes; weights select the first.
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[1.0], &[2.0]]);
        let y = vec![1.0, 2.0, -1.0, -2.0]; // slope +1 vs slope -1
        let w = vec![1.0, 1.0, 0.0, 0.0];
        let beta = ridge_weighted(&x, &y, &w, 1e-4).unwrap();
        assert!((beta[0] - 1.0).abs() < 0.01, "{beta:?}");
    }
}
