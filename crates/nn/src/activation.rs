//! Activation functions and their derivatives.

use serde::{Deserialize, Serialize};

/// Element-wise activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity (linear output layer).
    Identity,
    /// Rectified linear unit — the hidden activation used by the paper.
    Relu,
    /// Hyperbolic tangent — used as the scorer's output so relevance scores
    /// land in `[-1, 1]` as required by §3.1.2.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation to a pre-activation value.
    #[inline]
    pub fn apply(self, z: f32) -> f32 {
        match self {
            Activation::Identity => z,
            Activation::Relu => z.max(0.0),
            Activation::Tanh => z.tanh(),
            Activation::Sigmoid => sigmoid(z),
        }
    }

    /// Derivative with respect to the pre-activation, expressed in terms of
    /// the pre-activation `z` (not the output).
    #[inline]
    pub fn derivative(self, z: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if z > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = z.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = sigmoid(z);
                s * (1.0 - s)
            }
        }
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1.0), 1.0);
    }

    #[test]
    fn tanh_bounded() {
        assert!(Activation::Tanh.apply(100.0) <= 1.0);
        assert!(Activation::Tanh.apply(-100.0) >= -1.0);
        assert!((Activation::Tanh.derivative(0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!(sigmoid(500.0).is_finite());
        assert!(sigmoid(-500.0).is_finite());
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(-500.0) >= 0.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3f32;
        for act in [Activation::Identity, Activation::Relu, Activation::Tanh, Activation::Sigmoid]
        {
            for z in [-1.7f32, -0.4, 0.3, 1.9] {
                let numeric = (act.apply(z + eps) - act.apply(z - eps)) / (2.0 * eps);
                let analytic = act.derivative(z);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "{act:?} at {z}: numeric {numeric} analytic {analytic}"
                );
            }
        }
    }
}
