//! Feed-forward neural network substrate for the WYM entity-matching system.
//!
//! The paper's decision-unit relevance scorer is "a fully connected
//! feed-forward neural network … 3 hidden layers with 300, 64, and 32 nodes,
//! using relu … trained with 40 epochs, 256 elements per batch, and a
//! learning rate equal to 3·10⁻⁵" (§4.2). This crate implements exactly that
//! kind of model from scratch: dense layers with manual backpropagation,
//! MSE / binary-cross-entropy losses, SGD and Adam optimizers, a mini-batch
//! training loop, and the siamese contrastive trainer used by the
//! SBERT-substitute embedding variant.

pub mod activation;
pub mod layer;
pub mod mlp;
pub mod optim;
pub mod siamese;
pub mod train;

pub use activation::Activation;
pub use layer::Dense;
pub use mlp::{Loss, Mlp, MlpConfig};
pub use optim::{Adam, AdamConfig};
pub use siamese::{SiameseConfig, SiameseProjection};
pub use train::{TrainConfig, TrainReport};
