//! Siamese contrastive projection — the SBERT-substitute trainer.
//!
//! Sentence-BERT fine-tunes BERT with "siamese and triplet network
//! structures" (paper §4.1.1). Our embedding substrate reproduces the same
//! training *shape*: a shared linear projection `P` applied to both sides of
//! a pair, trained with a margin contrastive loss so that representations of
//! matching records move together and non-matching records move apart.
//! Initializing `P` near the identity means an untrained projection degrades
//! gracefully to the static embeddings.

use crate::layer::{Dense, DenseGrad};
use crate::optim::sgd_step;
use crate::Activation;
use serde::{Deserialize, Serialize};
use wym_linalg::{vector, Matrix, Rng64};

/// Configuration of the siamese trainer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiameseConfig {
    /// Margin of the contrastive loss for negative pairs.
    pub margin: f32,
    /// SGD learning rate.
    pub lr: f32,
    /// Training epochs over the pair set.
    pub epochs: usize,
    /// Shuffling / initialization seed.
    pub seed: u64,
    /// Scale of the identity perturbation at init.
    pub init_noise: f32,
}

impl Default for SiameseConfig {
    fn default() -> Self {
        Self { margin: 1.0, lr: 0.05, epochs: 10, seed: 0, init_noise: 0.01 }
    }
}

/// A learned shared projection `v ↦ P v`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiameseProjection {
    p: Matrix,
}

impl SiameseProjection {
    /// Identity-plus-noise initialization of dimension `dim`.
    pub fn new(dim: usize, config: &SiameseConfig) -> Self {
        let mut rng = Rng64::new(config.seed);
        let mut p = Matrix::identity(dim);
        let noise = Matrix::randn(dim, dim, config.init_noise, &mut rng);
        p.add_assign(&noise);
        Self { p }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.p.rows()
    }

    /// The learned projection matrix (read-only) — exported verbatim into
    /// model artifacts.
    pub fn matrix(&self) -> &Matrix {
        &self.p
    }

    /// Rebuilds a projection from a stored matrix — the inverse of
    /// [`SiameseProjection::matrix`].
    ///
    /// # Panics
    /// Panics when `p` is not square (projection must map dim → dim).
    pub fn from_matrix(p: Matrix) -> Self {
        assert_eq!(p.rows(), p.cols(), "projection matrix must be square");
        Self { p }
    }

    /// Projects a vector (result is L2-normalized).
    pub fn project(&self, v: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.p.cols()];
        self.project_into(v, &mut out);
        out
    }

    /// [`SiameseProjection::project`] writing into a caller-provided slice
    /// (the fused embed path's arena). The sparse `axpy` sweep and the
    /// final normalization are the identical float-op sequence, so the
    /// output is bit-identical to [`SiameseProjection::project`].
    ///
    /// # Panics
    /// Panics on input/output dimension mismatch.
    pub fn project_into(&self, v: &[f32], out: &mut [f32]) {
        assert_eq!(v.len(), self.p.rows(), "dimension mismatch");
        assert_eq!(out.len(), self.p.cols(), "output dimension mismatch");
        out.fill(0.0);
        for (k, &a) in v.iter().enumerate() {
            if a != 0.0 {
                vector::axpy(a, self.p.row(k), out);
            }
        }
        vector::normalize(out);
    }

    /// Trains the projection on `(left, right, is_match)` pairs with the
    /// margin contrastive loss. Returns the mean loss of each epoch.
    pub fn train(
        &mut self,
        pairs: &[(Vec<f32>, Vec<f32>, bool)],
        config: &SiameseConfig,
    ) -> Vec<f32> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let dim = self.dim();
        let mut rng = Rng64::new(config.seed ^ 0xDEAD_BEEF);
        let mut order: Vec<usize> = (0..pairs.len()).collect();

        // Reuse Dense as the parameter container so sgd_step applies.
        let mut layer = Dense {
            w: self.p.clone(),
            b: vec![0.0; dim],
            activation: Activation::Identity,
        };

        let mut epoch_losses = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            rng.shuffle(&mut order);
            let mut total = 0.0f64;
            for &i in &order {
                let (x, y, is_match) = &pairs[i];
                debug_assert_eq!(x.len(), dim);
                // u = Pᵀ… careful: project uses rows as input index, i.e.
                // out = Σ_k v_k · row_k(P) = vᵀP, matching Dense's X·W.
                let u = mat_vec(&layer.w, x);
                let v = mat_vec(&layer.w, y);
                let mut d: Vec<f32> = u.iter().zip(&v).map(|(a, b)| a - b).collect();
                let dist = vector::norm(&d);
                let (loss, scale_u) = if *is_match {
                    // L = dist², dL/du = 2 d
                    (dist * dist, 2.0)
                } else if dist < config.margin && dist > 1e-9 {
                    // L = (m − dist)², dL/du = −2 (m − dist) / dist · d
                    let gap = config.margin - dist;
                    (gap * gap, -2.0 * gap / dist)
                } else {
                    (0.0, 0.0)
                };
                total += loss as f64;
                if scale_u != 0.0 {
                    for di in &mut d {
                        *di *= scale_u;
                    }
                    // dL/dP = x · dᵀ  +  y · (−d)ᵀ  (outer products).
                    let mut dw = Matrix::zeros(dim, dim);
                    for (k, (&xk, &yk)) in x.iter().zip(y).enumerate() {
                        let row = dw.row_mut(k);
                        for (j, &dj) in d.iter().enumerate() {
                            row[j] += xk * dj - yk * dj;
                        }
                    }
                    let grad = DenseGrad { dw, db: vec![0.0; dim] };
                    sgd_step(std::slice::from_mut(&mut layer), &[grad], config.lr);
                }
            }
            epoch_losses.push((total / pairs.len() as f64) as f32);
        }
        self.p = layer.w;
        epoch_losses
    }
}

/// `vᵀ · M` (treating `v` as a row vector), returning a dense vector.
fn mat_vec(m: &Matrix, v: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; m.cols()];
    for (k, &a) in v.iter().enumerate() {
        if a != 0.0 {
            vector::axpy(a, m.row(k), &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wym_linalg::vector::cosine;

    fn unit(v: Vec<f32>) -> Vec<f32> {
        let mut v = v;
        vector::normalize(&mut v);
        v
    }

    #[test]
    fn untrained_projection_is_near_identity() {
        let cfg = SiameseConfig::default();
        let proj = SiameseProjection::new(4, &cfg);
        let v = unit(vec![1.0, 0.0, 0.0, 0.0]);
        let p = proj.project(&v);
        assert!(cosine(&v, &p) > 0.95, "cos {}", cosine(&v, &p));
    }

    #[test]
    fn training_pulls_matches_together_pushes_negatives_apart() {
        // Two clusters along different axes; matches straddle a small
        // perturbation, negatives cross clusters.
        let a1 = unit(vec![1.0, 0.1, 0.0, 0.0]);
        let a2 = unit(vec![1.0, -0.1, 0.05, 0.0]);
        let b1 = unit(vec![0.0, 0.1, 1.0, 0.0]);
        let b2 = unit(vec![0.05, -0.1, 1.0, 0.0]);
        let pairs = vec![
            (a1.clone(), a2.clone(), true),
            (b1.clone(), b2.clone(), true),
            (a1.clone(), b1.clone(), false),
            (a2.clone(), b2.clone(), false),
        ];
        let cfg = SiameseConfig { epochs: 60, lr: 0.05, ..SiameseConfig::default() };
        let mut proj = SiameseProjection::new(4, &cfg);
        let losses = proj.train(&pairs, &cfg);
        assert!(losses.last().unwrap() < &losses[0], "loss should decrease: {losses:?}");

        let pos = cosine(&proj.project(&a1), &proj.project(&a2));
        let neg = cosine(&proj.project(&a1), &proj.project(&b1));
        assert!(pos > neg, "pos {pos} should exceed neg {neg}");
    }

    #[test]
    fn empty_pairs_is_a_noop() {
        let cfg = SiameseConfig::default();
        let mut proj = SiameseProjection::new(3, &cfg);
        let before = proj.project(&[1.0, 2.0, 3.0]);
        assert!(proj.train(&[], &cfg).is_empty());
        assert_eq!(before, proj.project(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn projection_output_is_normalized() {
        let cfg = SiameseConfig::default();
        let proj = SiameseProjection::new(3, &cfg);
        let p = proj.project(&[4.0, -2.0, 7.0]);
        assert!((vector::norm(&p) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = SiameseConfig { epochs: 3, ..SiameseConfig::default() };
        let pairs =
            vec![(unit(vec![1.0, 0.0]), unit(vec![0.8, 0.2]), true)];
        let mut p1 = SiameseProjection::new(2, &cfg);
        let mut p2 = SiameseProjection::new(2, &cfg);
        p1.train(&pairs, &cfg);
        p2.train(&pairs, &cfg);
        assert_eq!(p1.project(&[0.3, 0.7]), p2.project(&[0.3, 0.7]));
    }
}
