//! Mini-batch training loop.

use crate::mlp::Mlp;
use crate::optim::{Adam, AdamConfig};
use serde::{Deserialize, Serialize};
use wym_linalg::{Matrix, Rng64};

/// Mini-batch training configuration.
///
/// Defaults mirror the paper's relevance-scorer recipe (§4.2): 40 epochs,
/// batch size 256. The default learning rate is higher than the paper's
/// 3·10⁻⁵ because that value was tuned for BERT-sized (768-d) inputs; callers
/// reproducing the paper exactly can set `lr: 3e-5`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Stop early when the epoch loss drops below this value.
    pub loss_target: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 40,
            batch_size: 256,
            lr: 1e-3,
            weight_decay: 0.0,
            seed: 0,
            loss_target: 0.0,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean batch loss of each completed epoch.
    pub epoch_losses: Vec<f32>,
    /// Loss of the last completed epoch.
    pub final_loss: f32,
    /// Epochs actually run (may be fewer than configured on early stop).
    pub epochs_run: usize,
}

/// Trains `mlp` on `(x, y)` with shuffled mini-batches and Adam.
///
/// # Panics
/// Panics if `x` and `y` disagree on the number of rows or `x` is empty.
pub fn fit(mlp: &mut Mlp, x: &Matrix, y: &Matrix, config: &TrainConfig) -> TrainReport {
    assert_eq!(x.rows(), y.rows(), "x / y row mismatch");
    assert!(x.rows() > 0, "cannot train on an empty dataset");
    let _span = wym_obs::span("nn_fit");
    let telemetry = wym_obs::enabled();
    let n = x.rows();
    let bs = config.batch_size.clamp(1, n);
    let mut rng = Rng64::new(config.seed);
    let mut adam = Adam::new(
        AdamConfig { lr: config.lr, weight_decay: config.weight_decay, ..AdamConfig::default() },
        mlp.layers(),
    );

    let mut order: Vec<usize> = (0..n).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        rng.shuffle(&mut order);
        let mut total = 0.0f64;
        let mut batches = 0usize;
        let mut grad_sq = 0.0f64;
        for chunk in order.chunks(bs) {
            let bx = x.select_rows(chunk);
            let by = y.select_rows(chunk);
            let (loss, grads) = mlp.loss_and_grads(&bx, &by);
            if telemetry {
                for g in &grads {
                    grad_sq +=
                        g.dw.as_slice().iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>();
                    grad_sq += g.db.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>();
                }
            }
            adam.step(mlp.layers_mut(), &grads);
            total += loss as f64;
            batches += 1;
        }
        let epoch_loss = (total / batches.max(1) as f64) as f32;
        epoch_losses.push(epoch_loss);
        if telemetry {
            wym_obs::hist_observe("nn.epoch_loss", epoch_loss as f64);
            // RMS per-batch gradient L2 norm: batch count cancels scale so
            // epochs of different batch counts stay comparable.
            wym_obs::hist_observe(
                "nn.epoch_grad_norm",
                (grad_sq / batches.max(1) as f64).sqrt(),
            );
        }
        if epoch_loss <= config.loss_target {
            break;
        }
    }
    let final_loss = epoch_losses.last().copied().unwrap_or(f32::INFINITY);
    if telemetry {
        wym_obs::gauge_set("nn.final_loss", final_loss as f64);
        wym_obs::counter_add("nn.epochs_run", epoch_losses.len() as u64);
    }
    TrainReport { epochs_run: epoch_losses.len(), epoch_losses, final_loss }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::MlpConfig;

    #[test]
    fn loss_decreases_over_epochs() {
        let mut rng = Rng64::new(1);
        let x = Matrix::randn(128, 3, 1.0, &mut rng);
        let y = Matrix::from_vec(128, 1, x.iter_rows().map(|r| r[0] * 0.5 + r[1]).collect());
        let mut mlp = Mlp::new(&MlpConfig {
            layer_sizes: vec![3, 8, 1],
            hidden: crate::Activation::Relu,
            output: crate::Activation::Identity,
            loss: crate::Loss::Mse,
            seed: 0,
        });
        let report = fit(
            &mut mlp,
            &x,
            &y,
            &TrainConfig { epochs: 30, batch_size: 16, lr: 0.01, ..TrainConfig::default() },
        );
        assert!(report.final_loss < report.epoch_losses[0] * 0.3);
        assert_eq!(report.epochs_run, 30);
    }

    #[test]
    fn early_stop_on_loss_target() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let y = x.clone();
        let mut mlp = Mlp::new(&MlpConfig {
            layer_sizes: vec![1, 1],
            hidden: crate::Activation::Identity,
            output: crate::Activation::Identity,
            loss: crate::Loss::Mse,
            seed: 0,
        });
        let report = fit(
            &mut mlp,
            &x,
            &y,
            &TrainConfig {
                epochs: 5000,
                batch_size: 4,
                lr: 0.05,
                loss_target: 0.01,
                ..TrainConfig::default()
            },
        );
        assert!(report.epochs_run < 5000, "should stop early, ran {}", report.epochs_run);
        assert!(report.final_loss <= 0.01);
    }

    #[test]
    fn deterministic_given_seeds() {
        let mut rng = Rng64::new(3);
        let x = Matrix::randn(64, 2, 1.0, &mut rng);
        let y = Matrix::from_vec(64, 1, x.iter_rows().map(|r| r[0]).collect());
        let run = |seed| {
            let mut mlp = Mlp::new(&MlpConfig {
                layer_sizes: vec![2, 4, 1],
                hidden: crate::Activation::Relu,
                output: crate::Activation::Identity,
                loss: crate::Loss::Mse,
                seed: 11,
            });
            let r = fit(
                &mut mlp,
                &x,
                &y,
                &TrainConfig { epochs: 5, batch_size: 8, seed, ..TrainConfig::default() },
            );
            r.final_loss
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn telemetry_records_per_epoch_loss_and_grad_norm() {
        use std::sync::Arc;
        let mut rng = Rng64::new(2);
        let x = Matrix::randn(32, 2, 1.0, &mut rng);
        let y = Matrix::from_vec(32, 1, x.iter_rows().map(|r| r[0]).collect());
        let mut mlp = Mlp::new(&MlpConfig {
            layer_sizes: vec![2, 4, 1],
            hidden: crate::Activation::Relu,
            output: crate::Activation::Identity,
            loss: crate::Loss::Mse,
            seed: 0,
        });
        let obs = Arc::new(wym_obs::Recorder::new_enabled());
        let report = wym_obs::with_recorder(Arc::clone(&obs), || {
            fit(
                &mut mlp,
                &x,
                &y,
                &TrainConfig { epochs: 7, batch_size: 8, lr: 0.01, ..TrainConfig::default() },
            )
        });
        let snap = obs.snapshot();
        assert_eq!(snap.counter("nn.epochs_run"), Some(7));
        let losses = snap.histogram("nn.epoch_loss").expect("loss histogram");
        assert_eq!(losses.count(), 7, "one loss observation per epoch");
        assert!((losses.sum()
            - report.epoch_losses.iter().map(|&l| l as f64).sum::<f64>())
        .abs()
            < 1e-6);
        let grads = snap.histogram("nn.epoch_grad_norm").expect("grad-norm histogram");
        assert_eq!(grads.count(), 7);
        assert!(grads.min() > 0.0, "gradients should be nonzero while learning");
        assert_eq!(snap.gauge("nn.final_loss"), Some(report.final_loss as f64));
        assert_eq!(snap.span_count("nn_fit"), 1);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty_training_set() {
        let mut mlp = Mlp::new(&MlpConfig::classifier(vec![2, 1], 0));
        let x = Matrix::zeros(0, 2);
        let y = Matrix::zeros(0, 1);
        let _ = fit(&mut mlp, &x, &y, &TrainConfig::default());
    }
}
