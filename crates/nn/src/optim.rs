//! Optimizers: Adam (default, as used for the relevance scorer) and plain SGD.

use crate::layer::{Dense, DenseGrad};
use serde::{Deserialize, Serialize};
use wym_linalg::Matrix;

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate (the paper uses 3e-5 for the scorer).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// L2 weight decay applied to weights (not biases).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }
}

/// Per-layer Adam state.
#[derive(Debug, Clone)]
struct AdamSlot {
    mw: Matrix,
    vw: Matrix,
    mb: Vec<f32>,
    vb: Vec<f32>,
}

/// Adam optimizer over a stack of dense layers.
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
    slots: Vec<AdamSlot>,
    t: u64,
}

impl Adam {
    /// Creates optimizer state matching the given layer stack.
    pub fn new(config: AdamConfig, layers: &[Dense]) -> Self {
        let slots = layers
            .iter()
            .map(|l| AdamSlot {
                mw: Matrix::zeros(l.w.rows(), l.w.cols()),
                vw: Matrix::zeros(l.w.rows(), l.w.cols()),
                mb: vec![0.0; l.b.len()],
                vb: vec![0.0; l.b.len()],
            })
            .collect();
        Self { config, slots, t: 0 }
    }

    /// Applies one Adam step given per-layer gradients.
    ///
    /// # Panics
    /// Panics if `grads.len()` differs from the layer count at construction.
    pub fn step(&mut self, layers: &mut [Dense], grads: &[DenseGrad]) {
        assert_eq!(layers.len(), self.slots.len(), "layer count changed under optimizer");
        assert_eq!(grads.len(), self.slots.len(), "gradient count mismatch");
        self.t += 1;
        let c = self.config;
        let bc1 = 1.0 - c.beta1.powi(self.t as i32);
        let bc2 = 1.0 - c.beta2.powi(self.t as i32);
        for ((layer, grad), slot) in layers.iter_mut().zip(grads).zip(&mut self.slots) {
            // Weights.
            let n = layer.w.as_slice().len();
            for k in 0..n {
                let g = grad.dw.as_slice()[k] + c.weight_decay * layer.w.as_slice()[k];
                let m = &mut slot.mw.as_mut_slice()[k];
                *m = c.beta1 * *m + (1.0 - c.beta1) * g;
                let v = &mut slot.vw.as_mut_slice()[k];
                *v = c.beta2 * *v + (1.0 - c.beta2) * g * g;
                let m_hat = slot.mw.as_slice()[k] / bc1;
                let v_hat = slot.vw.as_slice()[k] / bc2;
                layer.w.as_mut_slice()[k] -= c.lr * m_hat / (v_hat.sqrt() + c.eps);
            }
            // Biases (no weight decay).
            for k in 0..layer.b.len() {
                let g = grad.db[k];
                slot.mb[k] = c.beta1 * slot.mb[k] + (1.0 - c.beta1) * g;
                slot.vb[k] = c.beta2 * slot.vb[k] + (1.0 - c.beta2) * g * g;
                let m_hat = slot.mb[k] / bc1;
                let v_hat = slot.vb[k] / bc2;
                layer.b[k] -= c.lr * m_hat / (v_hat.sqrt() + c.eps);
            }
        }
    }
}

/// Plain SGD step (used by the siamese trainer, where Adam's adaptivity is
/// unnecessary and determinism across refactors is more valuable).
pub fn sgd_step(layers: &mut [Dense], grads: &[DenseGrad], lr: f32) {
    for (layer, grad) in layers.iter_mut().zip(grads) {
        for (w, g) in layer.w.as_mut_slice().iter_mut().zip(grad.dw.as_slice()) {
            *w -= lr * g;
        }
        for (b, g) in layer.b.iter_mut().zip(&grad.db) {
            *b -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use wym_linalg::Rng64;

    /// Minimizing f(w) = (w - 3)^2 with Adam should converge near 3.
    #[test]
    fn adam_minimizes_quadratic() {
        let mut rng = Rng64::new(0);
        let mut layers = vec![Dense::new(1, 1, Activation::Identity, &mut rng)];
        layers[0].w[(0, 0)] = 0.0;
        layers[0].b[0] = 0.0;
        let mut adam = Adam::new(AdamConfig { lr: 0.05, ..AdamConfig::default() }, &layers);
        for _ in 0..500 {
            let w = layers[0].w[(0, 0)];
            let grad = DenseGrad {
                dw: Matrix::from_rows(&[&[2.0 * (w - 3.0)]]),
                db: vec![0.0],
            };
            adam.step(&mut layers, &[grad]);
        }
        assert!((layers[0].w[(0, 0)] - 3.0).abs() < 0.05, "w = {}", layers[0].w[(0, 0)]);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = Rng64::new(0);
        let mut layers = vec![Dense::new(1, 1, Activation::Identity, &mut rng)];
        layers[0].w[(0, 0)] = 5.0;
        let mut adam = Adam::new(
            AdamConfig { lr: 0.1, weight_decay: 1.0, ..AdamConfig::default() },
            &layers,
        );
        for _ in 0..200 {
            let grad = DenseGrad { dw: Matrix::zeros(1, 1), db: vec![0.0] };
            adam.step(&mut layers, &[grad]);
        }
        assert!(layers[0].w[(0, 0)].abs() < 0.5, "decay should pull weight toward 0");
    }

    #[test]
    fn sgd_step_moves_against_gradient() {
        let mut rng = Rng64::new(2);
        let mut layers = vec![Dense::new(1, 1, Activation::Identity, &mut rng)];
        layers[0].w[(0, 0)] = 1.0;
        layers[0].b[0] = 1.0;
        let grad = DenseGrad { dw: Matrix::from_rows(&[&[2.0]]), db: vec![-4.0] };
        sgd_step(&mut layers, &[grad], 0.5);
        assert_eq!(layers[0].w[(0, 0)], 0.0);
        assert_eq!(layers[0].b[0], 3.0);
    }
}
