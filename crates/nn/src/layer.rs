//! A dense (fully connected) layer with manual backpropagation.

use crate::activation::Activation;
use serde::{Deserialize, Serialize};
use wym_linalg::{Matrix, Rng64};

/// A dense layer `A = act(X · W + b)` with `W: in × out`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    /// Weight matrix, `in_dim × out_dim`.
    pub w: Matrix,
    /// Bias vector, length `out_dim`.
    pub b: Vec<f32>,
    /// Activation applied to the pre-activation.
    pub activation: Activation,
}

/// Per-layer cache produced by the forward pass and consumed by backward.
#[derive(Debug, Clone)]
pub struct DenseCache {
    /// Input to the layer (`n × in_dim`).
    pub input: Matrix,
    /// Pre-activation `X·W + b` (`n × out_dim`).
    pub pre: Matrix,
}

/// Gradients of a dense layer's parameters.
#[derive(Debug, Clone)]
pub struct DenseGrad {
    /// `∂L/∂W`, same shape as `w`.
    pub dw: Matrix,
    /// `∂L/∂b`, same length as `b`.
    pub db: Vec<f32>,
}

impl Dense {
    /// He-initialized dense layer (suited to ReLU hidden units).
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut Rng64) -> Self {
        let std = (2.0 / in_dim.max(1) as f32).sqrt();
        Self { w: Matrix::randn(in_dim, out_dim, std, rng), b: vec![0.0; out_dim], activation }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass; returns the activated output and a cache for backward.
    pub fn forward(&self, x: &Matrix) -> (Matrix, DenseCache) {
        let mut pre = x.matmul(&self.w);
        pre.add_row_broadcast(&self.b);
        let act = self.activation;
        let out = pre.map(|z| act.apply(z));
        (out, DenseCache { input: x.clone(), pre })
    }

    /// Forward pass without caching (inference).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut pre = x.matmul(&self.w);
        pre.add_row_broadcast(&self.b);
        let act = self.activation;
        pre.map_inplace(|z| act.apply(z));
        pre
    }

    /// Backward pass.
    ///
    /// `d_out` is `∂L/∂A` (gradient w.r.t. the activated output). Returns the
    /// parameter gradients and `∂L/∂X` to propagate to the previous layer.
    pub fn backward(&self, cache: &DenseCache, d_out: &Matrix) -> (DenseGrad, Matrix) {
        // δ = ∂L/∂Z = ∂L/∂A ⊙ act'(Z)
        let act = self.activation;
        let mut delta = d_out.clone();
        for i in 0..delta.rows() {
            let pre_row = cache.pre.row(i).to_vec();
            for (d, z) in delta.row_mut(i).iter_mut().zip(pre_row) {
                *d *= act.derivative(z);
            }
        }
        let dw = cache.input.t_matmul(&delta);
        let db = delta.col_sum();
        let dx = delta.matmul_t(&self.w);
        (DenseGrad { dw, db }, dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let mut layer = Dense::new(2, 1, Activation::Identity, &mut Rng64::new(0));
        layer.w = Matrix::from_rows(&[&[2.0], &[3.0]]);
        layer.b = vec![1.0];
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 2.0]]);
        let (out, _) = layer.forward(&x);
        assert_eq!(out.row(0), &[6.0]);
        assert_eq!(out.row(1), &[7.0]);
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = Rng64::new(1);
        let layer = Dense::new(4, 3, Activation::Relu, &mut rng);
        let x = Matrix::randn(5, 4, 1.0, &mut rng);
        let (out, _) = layer.forward(&x);
        let inf = layer.infer(&x);
        assert_eq!(out, inf);
    }

    #[test]
    fn gradient_check_weights() {
        // Numeric vs analytic gradient of L = sum(A) for a tanh layer.
        let mut rng = Rng64::new(5);
        let mut layer = Dense::new(3, 2, Activation::Tanh, &mut rng);
        let x = Matrix::randn(4, 3, 1.0, &mut rng);

        let loss = |l: &Dense| -> f32 { l.infer(&x).as_slice().iter().sum() };
        let (out, cache) = layer.forward(&x);
        let d_out = Matrix::filled(out.rows(), out.cols(), 1.0); // dL/dA = 1
        let (grad, _) = layer.backward(&cache, &d_out);

        let eps = 1e-3;
        for i in 0..layer.w.rows() {
            for j in 0..layer.w.cols() {
                let orig = layer.w[(i, j)];
                layer.w[(i, j)] = orig + eps;
                let up = loss(&layer);
                layer.w[(i, j)] = orig - eps;
                let down = loss(&layer);
                layer.w[(i, j)] = orig;
                let numeric = (up - down) / (2.0 * eps);
                let analytic = grad.dw[(i, j)];
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "dW[{i},{j}]: numeric {numeric} analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn gradient_check_bias_and_input() {
        let mut rng = Rng64::new(6);
        let mut layer = Dense::new(2, 2, Activation::Sigmoid, &mut rng);
        let x = Matrix::randn(3, 2, 1.0, &mut rng);
        let (out, cache) = layer.forward(&x);
        let d_out = Matrix::filled(out.rows(), out.cols(), 1.0);
        let (grad, dx) = layer.backward(&cache, &d_out);

        let eps = 1e-3;
        // Bias gradient.
        for j in 0..layer.b.len() {
            let orig = layer.b[j];
            layer.b[j] = orig + eps;
            let up: f32 = layer.infer(&x).as_slice().iter().sum();
            layer.b[j] = orig - eps;
            let down: f32 = layer.infer(&x).as_slice().iter().sum();
            layer.b[j] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!((numeric - grad.db[j]).abs() < 1e-2, "db[{j}]");
        }
        // Input gradient.
        let mut x2 = x.clone();
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                let orig = x2[(i, j)];
                x2[(i, j)] = orig + eps;
                let up: f32 = layer.infer(&x2).as_slice().iter().sum();
                x2[(i, j)] = orig - eps;
                let down: f32 = layer.infer(&x2).as_slice().iter().sum();
                x2[(i, j)] = orig;
                let numeric = (up - down) / (2.0 * eps);
                assert!((numeric - dx[(i, j)]).abs() < 1e-2, "dx[{i},{j}]");
            }
        }
    }
}
