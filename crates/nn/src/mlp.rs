//! Multi-layer perceptron with manual backpropagation.

use crate::activation::{sigmoid, Activation};
use crate::layer::{Dense, DenseCache, DenseGrad};
use serde::{Deserialize, Serialize};
use wym_linalg::{Matrix, Rng64};

/// Training loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error over all outputs (regression — the relevance scorer).
    Mse,
    /// Binary cross entropy on a single logit output (classification — the
    /// baseline matchers). The output layer must be `Identity`; the sigmoid
    /// is fused into the loss for numerical stability.
    BceWithLogits,
}

/// Architecture description of an [`Mlp`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Layer widths from input to output, e.g. `[130, 300, 64, 32, 1]` for
    /// the paper's relevance scorer over 130-dimensional unit features.
    pub layer_sizes: Vec<usize>,
    /// Activation of every hidden layer.
    pub hidden: Activation,
    /// Activation of the output layer.
    pub output: Activation,
    /// Loss minimized during training.
    pub loss: Loss,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl MlpConfig {
    /// The paper's relevance-scorer architecture over `in_dim` inputs:
    /// hidden layers 300-64-32 with ReLU, tanh output, MSE loss (§4.2).
    pub fn scorer(in_dim: usize, seed: u64) -> Self {
        Self {
            layer_sizes: vec![in_dim, 300, 64, 32, 1],
            hidden: Activation::Relu,
            output: Activation::Tanh,
            loss: Loss::Mse,
            seed,
        }
    }

    /// A binary classifier head: hidden ReLU layers, single logit output.
    pub fn classifier(layer_sizes: Vec<usize>, seed: u64) -> Self {
        Self {
            layer_sizes,
            hidden: Activation::Relu,
            output: Activation::Identity,
            loss: Loss::BceWithLogits,
            seed,
        }
    }
}

/// A fully connected feed-forward network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    loss: Loss,
}

impl Mlp {
    /// Builds the network with He initialization.
    ///
    /// # Panics
    /// Panics if fewer than two layer sizes are given.
    pub fn new(config: &MlpConfig) -> Self {
        assert!(config.layer_sizes.len() >= 2, "need at least input and output sizes");
        let mut rng = Rng64::new(config.seed);
        let n = config.layer_sizes.len() - 1;
        let mut layers = Vec::with_capacity(n);
        for i in 0..n {
            let act = if i + 1 == n { config.output } else { config.hidden };
            layers.push(Dense::new(
                config.layer_sizes[i],
                config.layer_sizes[i + 1],
                act,
                &mut rng,
            ));
        }
        Self { layers, loss: config.loss }
    }

    /// Reassembles a network from an explicit layer stack and loss — the
    /// inverse of [`Mlp::layers`] + [`Mlp::loss_kind`], used by the model
    /// artifact loader to rebuild a trained network from exported tensors.
    ///
    /// # Panics
    /// Panics when `layers` is empty or consecutive layer shapes disagree.
    pub fn from_parts(layers: Vec<Dense>, loss: Loss) -> Self {
        assert!(!layers.is_empty(), "an Mlp needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_dim(),
                pair[1].in_dim(),
                "consecutive layer shapes must chain"
            );
        }
        Self { layers, loss }
    }

    /// The layer stack (read-only).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable access to the layer stack (used by the optimizer and the
    /// embedding fine-tuner, which reuses a trained first layer).
    pub fn layers_mut(&mut self) -> &mut Vec<Dense> {
        &mut self.layers
    }

    /// The configured loss.
    pub fn loss_kind(&self) -> Loss {
        self.loss
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Forward pass returning raw network outputs (post output-activation).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut a = x.clone();
        for layer in &self.layers {
            a = layer.infer(&a);
        }
        a
    }

    /// Predicted values for single-output networks, applying the sigmoid when
    /// the loss is BCE-with-logits (so the result is a probability).
    pub fn predict(&self, x: &Matrix) -> Vec<f32> {
        let out = self.forward(x);
        assert_eq!(out.cols(), 1, "predict expects a single-output network");
        match self.loss {
            Loss::Mse => out.col(0),
            Loss::BceWithLogits => out.col(0).into_iter().map(sigmoid).collect(),
        }
    }

    /// Forward with caches, loss evaluation, and full backward pass.
    ///
    /// Returns `(loss, per-layer gradients)`. Gradients are averaged over the
    /// batch.
    pub fn loss_and_grads(&self, x: &Matrix, y: &Matrix) -> (f32, Vec<DenseGrad>) {
        assert_eq!(x.rows(), y.rows(), "x / y row mismatch");
        let n = x.rows().max(1) as f32;

        // Forward, caching pre-activations.
        let mut caches: Vec<DenseCache> = Vec::with_capacity(self.layers.len());
        let mut a = x.clone();
        for layer in &self.layers {
            let (out, cache) = layer.forward(&a);
            caches.push(cache);
            a = out;
        }

        // Loss and ∂L/∂(output activation). For BCE-with-logits we instead
        // compute ∂L/∂Z directly (the fused form) and rely on the output
        // layer being Identity so backward's act' = 1 leaves it untouched.
        let (loss, d_out) = match self.loss {
            Loss::Mse => {
                let mut d = a.clone();
                d.sub_assign(y);
                let loss =
                    d.as_slice().iter().map(|v| (v * v) as f64).sum::<f64>() as f32 / n;
                d.scale_inplace(2.0 / n);
                (loss, d)
            }
            Loss::BceWithLogits => {
                assert_eq!(a.cols(), 1, "BCE expects a single logit output");
                let mut d = Matrix::zeros(a.rows(), 1);
                let mut loss = 0.0f64;
                for i in 0..a.rows() {
                    let z = a[(i, 0)];
                    let t = y[(i, 0)];
                    // log(1 + e^z) - t*z, stable form.
                    let log1pe = if z > 0.0 { z + (-z).exp().ln_1p() } else { z.exp().ln_1p() };
                    loss += (log1pe - t * z) as f64;
                    d[(i, 0)] = (sigmoid(z) - t) / n;
                }
                (loss as f32 / n, d)
            }
        };

        // Backward.
        let mut grads: Vec<DenseGrad> = Vec::with_capacity(self.layers.len());
        let mut d = d_out;
        for (layer, cache) in self.layers.iter().zip(&caches).rev() {
            let (g, dx) = layer.backward(cache, &d);
            grads.push(g);
            d = dx;
        }
        grads.reverse();
        (loss, grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, AdamConfig};
    use crate::train::TrainConfig;

    #[test]
    fn forward_shapes() {
        let mlp = Mlp::new(&MlpConfig::scorer(10, 0));
        let x = Matrix::zeros(4, 10);
        let out = mlp.forward(&x);
        assert_eq!(out.shape(), (4, 1));
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_degenerate_architecture() {
        let _ = Mlp::new(&MlpConfig {
            layer_sizes: vec![3],
            hidden: Activation::Relu,
            output: Activation::Identity,
            loss: Loss::Mse,
            seed: 0,
        });
    }

    #[test]
    fn mse_gradient_check_end_to_end() {
        let cfg = MlpConfig {
            layer_sizes: vec![3, 4, 1],
            hidden: Activation::Tanh,
            output: Activation::Identity,
            loss: Loss::Mse,
            seed: 3,
        };
        let mut mlp = Mlp::new(&cfg);
        let mut rng = Rng64::new(17);
        let x = Matrix::randn(5, 3, 1.0, &mut rng);
        let y = Matrix::randn(5, 1, 1.0, &mut rng);
        let (_, grads) = mlp.loss_and_grads(&x, &y);

        let eps = 1e-3;
        #[allow(clippy::needless_range_loop)]
        for li in 0..mlp.layers.len() {
            for i in 0..mlp.layers[li].w.rows() {
                for j in 0..mlp.layers[li].w.cols() {
                    let orig = mlp.layers[li].w[(i, j)];
                    mlp.layers[li].w[(i, j)] = orig + eps;
                    let (up, _) = mlp.loss_and_grads(&x, &y);
                    mlp.layers[li].w[(i, j)] = orig - eps;
                    let (down, _) = mlp.loss_and_grads(&x, &y);
                    mlp.layers[li].w[(i, j)] = orig;
                    let numeric = (up - down) / (2.0 * eps);
                    let analytic = grads[li].dw[(i, j)];
                    assert!(
                        (numeric - analytic).abs() < 2e-2,
                        "layer {li} dW[{i},{j}]: numeric {numeric} vs analytic {analytic}"
                    );
                }
            }
        }
    }

    #[test]
    fn bce_gradient_check_end_to_end() {
        let cfg = MlpConfig::classifier(vec![2, 3, 1], 9);
        let mut mlp = Mlp::new(&cfg);
        let mut rng = Rng64::new(23);
        let x = Matrix::randn(6, 2, 1.0, &mut rng);
        let y = Matrix::from_vec(6, 1, vec![1.0, 0.0, 1.0, 0.0, 1.0, 1.0]);
        let (_, grads) = mlp.loss_and_grads(&x, &y);
        let eps = 1e-3;
        let li = 0;
        for i in 0..mlp.layers[li].w.rows() {
            for j in 0..mlp.layers[li].w.cols() {
                let orig = mlp.layers[li].w[(i, j)];
                mlp.layers[li].w[(i, j)] = orig + eps;
                let (up, _) = mlp.loss_and_grads(&x, &y);
                mlp.layers[li].w[(i, j)] = orig - eps;
                let (down, _) = mlp.loss_and_grads(&x, &y);
                mlp.layers[li].w[(i, j)] = orig;
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (numeric - grads[li].dw[(i, j)]).abs() < 1e-2,
                    "dW[{i},{j}] numeric {numeric} vs {}",
                    grads[li].dw[(i, j)]
                );
            }
        }
    }

    #[test]
    fn adam_training_reduces_loss_on_xor() {
        // XOR is not linearly separable: passing this requires working
        // hidden-layer backprop, not just a linear fit.
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = Matrix::from_vec(4, 1, vec![0.0, 1.0, 1.0, 0.0]);
        let cfg = MlpConfig::classifier(vec![2, 16, 1], 7);
        let mut mlp = Mlp::new(&cfg);
        let mut adam = Adam::new(AdamConfig { lr: 0.05, ..AdamConfig::default() }, mlp.layers());
        let (initial, _) = mlp.loss_and_grads(&x, &y);
        for _ in 0..400 {
            let (_, grads) = mlp.loss_and_grads(&x, &y);
            adam.step(mlp.layers_mut(), &grads);
        }
        let (fin, _) = mlp.loss_and_grads(&x, &y);
        assert!(fin < initial * 0.2, "loss {initial} -> {fin}");
        let p = mlp.predict(&x);
        assert!(p[0] < 0.5 && p[3] < 0.5 && p[1] > 0.5 && p[2] > 0.5, "{p:?}");
    }

    #[test]
    fn fit_learns_sign_regression() {
        // Regression smoke test through the high-level training loop.
        let mut rng = Rng64::new(31);
        let x = Matrix::randn(256, 4, 1.0, &mut rng);
        let targets: Vec<f32> = x.iter_rows().map(|r| if r[0] > 0.0 { 1.0 } else { -1.0 }).collect();
        let y = Matrix::from_vec(256, 1, targets);
        let cfg = MlpConfig {
            layer_sizes: vec![4, 32, 1],
            hidden: Activation::Relu,
            output: Activation::Tanh,
            loss: Loss::Mse,
            seed: 2,
        };
        let mut mlp = Mlp::new(&cfg);
        let report = crate::train::fit(
            &mut mlp,
            &x,
            &y,
            &TrainConfig { epochs: 60, batch_size: 32, lr: 0.01, seed: 5, ..TrainConfig::default() },
        );
        assert!(report.final_loss < 0.2, "final loss {}", report.final_loss);
        let preds = mlp.predict(&x);
        let correct = preds
            .iter()
            .zip(y.col(0))
            .filter(|(p, t)| (p.signum() - t.signum()).abs() < 0.5)
            .count();
        assert!(correct as f32 / 256.0 > 0.95, "accuracy {correct}/256");
    }
}
