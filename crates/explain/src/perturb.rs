//! MoRF / LeRF / Random unit-removal curves (paper §5.2.3, Figure 8).
//!
//! "MoRF, where we eliminate for each record the k decision units that
//! contribute most to the prediction …, LeRF, where the k decision units
//! that contribute less … are removed …, and Random." Removing MoRF units
//! should collapse the F1; removing LeRF units should not.

use crate::rebuild::{remove_units, units_by_support};
use wym_core::{WymModel};
use wym_data::RecordPair;
use wym_linalg::Rng64;
use wym_ml::f1_score;

/// Which units to remove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovalStrategy {
    /// Most relevant first (by impact, in the direction of the prediction).
    MoRF,
    /// Least relevant first (against the direction of the prediction).
    LeRF,
    /// Uniformly random units.
    Random,
}

impl RemovalStrategy {
    /// Display name used in Figure 8.
    pub fn as_str(self) -> &'static str {
        match self {
            RemovalStrategy::MoRF => "MoRF",
            RemovalStrategy::LeRF => "LeRF",
            RemovalStrategy::Random => "Random",
        }
    }
}

/// Removes `k` units from one record according to the strategy and returns
/// the perturbed pair.
pub fn perturb_record(
    model: &WymModel,
    pair: &RecordPair,
    k: usize,
    strategy: RemovalStrategy,
    seed: u64,
) -> RecordPair {
    let proc = model.process(pair);
    if proc.units.is_empty() {
        return pair.clone();
    }
    let impacts = model.matcher().impacts(&proc.units, &proc.relevances);
    let predicted = model.predict_processed(&proc).label;
    let order = match strategy {
        RemovalStrategy::MoRF => units_by_support(&impacts, predicted),
        RemovalStrategy::LeRF => {
            let mut o = units_by_support(&impacts, predicted);
            o.reverse();
            o
        }
        RemovalStrategy::Random => {
            let mut rng = Rng64::new(seed ^ u64::from(pair.id));
            let mut o: Vec<usize> = (0..proc.units.len()).collect();
            rng.shuffle(&mut o);
            o
        }
    };
    let chosen: Vec<usize> = order.into_iter().take(k).collect();
    remove_units(pair, &proc, &chosen)
}

/// F1 on `pairs` after removing `k` units per record with the given
/// strategy (the Figure 8 measurement at one `k`).
pub fn f1_after_removal(
    model: &WymModel,
    pairs: &[RecordPair],
    k: usize,
    strategy: RemovalStrategy,
    seed: u64,
) -> f32 {
    let perturbed: Vec<RecordPair> =
        pairs.iter().map(|p| perturb_record(model, p, k, strategy, seed)).collect();
    let preds: Vec<u8> =
        perturbed.iter().map(|p| u8::from(model.predict(p).label)).collect();
    let gold: Vec<u8> = pairs.iter().map(|p| u8::from(p.label)).collect();
    f1_score(&preds, &gold)
}

/// The full Figure 8 sweep: F1 after removing `k = 0..=k_max` units for
/// each strategy. Index 0 is the unperturbed F1 for every strategy.
pub fn removal_curves(
    model: &WymModel,
    pairs: &[RecordPair],
    k_max: usize,
    seed: u64,
) -> Vec<(RemovalStrategy, Vec<f32>)> {
    [RemovalStrategy::MoRF, RemovalStrategy::LeRF, RemovalStrategy::Random]
        .into_iter()
        .map(|strategy| {
            let curve: Vec<f32> = (0..=k_max)
                .map(|k| {
                    if k == 0 {
                        model.f1_on(pairs)
                    } else {
                        f1_after_removal(model, pairs, k, strategy, seed)
                    }
                })
                .collect();
            (strategy, curve)
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use wym_core::WymConfig;
    use wym_data::{magellan, split::paper_split, EmDataset};
    use wym_embed::EmbedderKind;
    use wym_ml::ClassifierKind;
    use wym_nn::TrainConfig;

    fn fitted() -> (WymModel, EmDataset, Vec<RecordPair>) {
        let dataset = magellan::generate_by_name("S-IA", 7).unwrap().subsample(400, 0);
        let split = paper_split(&dataset, 0);
        let mut cfg = WymConfig::default();
        cfg.embed_dim = 32;
        cfg.embedder_kind = EmbedderKind::Static;
        cfg.scorer.train = TrainConfig { epochs: 12, batch_size: 128, lr: 2e-3, ..Default::default() };
        cfg.matcher.kinds = vec![ClassifierKind::LogisticRegression, ClassifierKind::GradientBoosting];
        let model = WymModel::fit(&dataset, &split, cfg);
        let test: Vec<RecordPair> = split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
        (model, dataset, test)
    }

    #[test]
    fn morf_hurts_more_than_lerf() {
        let (model, _d, test) = fitted();
        let base = model.f1_on(&test);
        let morf = f1_after_removal(&model, &test, 4, RemovalStrategy::MoRF, 0);
        let lerf = f1_after_removal(&model, &test, 4, RemovalStrategy::LeRF, 0);
        assert!(base > 0.5, "base F1 {base}");
        assert!(
            morf < lerf - 0.1,
            "removing the most relevant units (F1 {morf}) must hurt clearly more than the \
             least relevant (F1 {lerf})"
        );
        assert!(lerf >= base - 0.1, "LeRF must barely move the F1: base {base}, lerf {lerf}");
    }

    #[test]
    fn curves_have_expected_shape() {
        let (model, _d, test) = fitted();
        let curves = removal_curves(&model, &test, 2, 0);
        assert_eq!(curves.len(), 3);
        for (_, c) in &curves {
            assert_eq!(c.len(), 3);
        }
        // All strategies share the k=0 baseline.
        let baselines: Vec<f32> = curves.iter().map(|(_, c)| c[0]).collect();
        assert!(baselines.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-6));
    }

    #[test]
    fn perturbing_zero_units_is_identity() {
        let (model, _d, test) = fitted();
        let p = perturb_record(&model, &test[0], 0, RemovalStrategy::MoRF, 0);
        assert_eq!(
            crate::enumerate_tokens(&p).len(),
            crate::enumerate_tokens(&test[0]).len()
        );
    }
}
