//! Explanation-quality evaluation and post-hoc explainer baselines.
//!
//! Implements everything the paper's §5.2 needs:
//!
//! * [`pareto`] — conciseness curves (Figure 6);
//! * [`sufficiency`] — post-hoc accuracy of top-v units (Figure 7, Eq. 4);
//! * [`perturb`] — MoRF / LeRF / Random unit-removal curves (Figure 8);
//! * [`lime`], [`landmark`], [`lemon`] — from-scratch perturbation-based
//!   post-hoc explainers used as comparison points;
//! * [`correlation`] — Pearson agreement between WYM impacts and Landmark
//!   scores (Figure 9);
//! * [`readability`] — the automated proxy for the §5.4 user study.

pub mod correlation;
pub mod errors;
pub mod landmark;
pub mod lemon;
pub mod lime;
pub mod pareto;
pub mod perturb;
pub mod readability;
pub mod rebuild;
pub mod sufficiency;

pub use landmark::Landmark;
pub use lemon::LemonLite;
pub use lime::LimeText;
pub use perturb::RemovalStrategy;

use wym_data::RecordPair;

/// A token location within a record pair, as used by the token-granularity
/// explainers (side 0 = left, 1 = right; positions index the *word* tokens
/// of the attribute value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TokenLoc {
    /// 0 = left entity, 1 = right entity.
    pub side: usize,
    /// Attribute index.
    pub attr: usize,
    /// Word index within the attribute.
    pub pos: usize,
}

/// A token-level attribution produced by a post-hoc explainer.
#[derive(Debug, Clone)]
pub struct TokenAttribution {
    /// Where the token is.
    pub loc: TokenLoc,
    /// The token's surface form.
    pub token: String,
    /// Attribution weight (positive pushes toward match).
    pub weight: f32,
}

/// Enumerates the word tokens of a record pair with their locations,
/// using the same tokenizer the models use.
pub fn enumerate_tokens(pair: &RecordPair) -> Vec<(TokenLoc, String)> {
    let tokenizer = wym_tokenize::Tokenizer::default();
    let mut out = Vec::new();
    for (side, entity) in [&pair.left, &pair.right].into_iter().enumerate() {
        for (attr, value) in entity.values.iter().enumerate() {
            for (pos, tok) in tokenizer.tokenize(value).into_iter().enumerate() {
                out.push((TokenLoc { side, attr, pos }, tok));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wym_data::Entity;

    #[test]
    fn enumerate_tokens_covers_both_sides() {
        let pair = RecordPair {
            id: 0,
            label: true,
            left: Entity::new(vec!["digital camera", "37.63"]),
            right: Entity::new(vec!["camera", "36"]),
        };
        let toks = enumerate_tokens(&pair);
        assert_eq!(toks.len(), 5);
        assert_eq!(toks[0].0, TokenLoc { side: 0, attr: 0, pos: 0 });
        assert_eq!(toks[0].1, "digital");
        assert!(toks.iter().any(|(l, t)| l.side == 1 && t == "camera"));
    }
}
