//! LEMON-style explainer, from scratch (Barlaug, TKDE 2022), at single-token
//! granularity — the configuration the paper's Figure 7 uses for DITTO.
//!
//! LEMON improves LIME for EM with (1) *dual explanations* — each side is
//! perturbed while the other is kept, like Landmark — and (2) *attribution
//! potential*: besides dropping a token, a perturbation may *copy* it into
//! the other entity, measuring how much the token could contribute if it
//! were matched. The attribution of a token combines both signals.

use crate::rebuild::keep_tokens;
use crate::{enumerate_tokens, TokenAttribution, TokenLoc};
use std::collections::HashSet;
use wym_core::pipeline::EmPredictor;
use wym_data::{Entity, RecordPair};
use wym_linalg::solve::ridge_weighted;
use wym_linalg::{Matrix, Rng64};

/// LEMON-lite configuration.
#[derive(Debug, Clone)]
pub struct LemonLite {
    /// Perturbation samples per side.
    pub n_samples: usize,
    /// Ridge regularization.
    pub ridge_lambda: f32,
    /// Weight of the injection (attribution-potential) signal in the final
    /// attribution.
    pub potential_weight: f32,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for LemonLite {
    fn default() -> Self {
        Self { n_samples: 150, ridge_lambda: 1.0, potential_weight: 0.5, seed: 0 }
    }
}

impl LemonLite {
    /// Explains the prediction at single-token granularity.
    pub fn explain(&self, model: &dyn EmPredictor, pair: &RecordPair) -> Vec<TokenAttribution> {
        let _span = wym_obs::span("lemon");
        let tokens = enumerate_tokens(pair);
        if tokens.is_empty() {
            return Vec::new();
        }
        // Drop-based surrogate per side (dual explanation).
        let mut drop_weights = vec![0.0f32; tokens.len()];
        for side in [0usize, 1usize] {
            self.fit_side_surrogate(model, pair, side, &tokens, &mut drop_weights);
        }
        // Attribution potential: inject each token into the other side and
        // measure the probability delta — all injections in one batched
        // model call.
        let base = model.proba(pair);
        let injected: Vec<RecordPair> = tokens
            .iter()
            .map(|(loc, token)| inject_token(pair, loc.attr, loc.side, token))
            .collect();
        let injected_probas = model.proba_batch(&injected);
        tokens
            .into_iter()
            .zip(injected_probas)
            .enumerate()
            .map(|(i, ((loc, token), p_inj))| {
                let potential = p_inj - base;
                let weight =
                    drop_weights[i] * (1.0 - self.potential_weight) + potential * self.potential_weight;
                TokenAttribution { loc, token, weight }
            })
            .collect()
    }

    /// Fills `out[i]` for the tokens of `side` with drop-surrogate weights.
    fn fit_side_surrogate(
        &self,
        model: &dyn EmPredictor,
        pair: &RecordPair,
        side: usize,
        tokens: &[(TokenLoc, String)],
        out: &mut [f32],
    ) {
        let side_idx: Vec<usize> =
            (0..tokens.len()).filter(|&i| tokens[i].0.side == side).collect();
        let d = side_idx.len();
        if d == 0 {
            return;
        }
        let mut rng = Rng64::new(self.seed ^ (u64::from(pair.id) << 2) ^ side as u64);
        let all_locs: HashSet<TokenLoc> = tokens.iter().map(|(l, _)| *l).collect();
        let mut masks = Matrix::zeros(0, d);
        let mut queries = Vec::with_capacity(self.n_samples + 1);
        let mut ws = Vec::new();
        masks.push_row(&vec![1.0; d]);
        queries.push(pair.clone());
        ws.push(1.0);
        for _ in 0..self.n_samples {
            let n_drop = 1 + rng.gen_range(d.max(2) - 1);
            let drop: HashSet<usize> = rng.sample_indices(d, n_drop).into_iter().collect();
            let mut keep = all_locs.clone();
            for (k, &ti) in side_idx.iter().enumerate() {
                if drop.contains(&k) {
                    keep.remove(&tokens[ti].0);
                }
            }
            let mask: Vec<f32> =
                (0..d).map(|k| if drop.contains(&k) { 0.0 } else { 1.0 }).collect();
            let kept = (d - drop.len()) as f32 / d as f32;
            let dist = 1.0 - kept;
            masks.push_row(&mask);
            queries.push(keep_tokens(pair, &keep));
            ws.push((-(dist * dist) / 0.25).exp());
        }
        // One batched model call for the side's whole perturbation set.
        let ys = model.proba_batch(&queries);
        if let Ok(beta) = ridge_weighted(&masks, &ys, &ws, self.ridge_lambda) {
            for (k, &ti) in side_idx.iter().enumerate() {
                out[ti] = beta[k];
            }
        }
    }
}

/// Appends `token` to the same attribute of the *other* entity.
fn inject_token(pair: &RecordPair, attr: usize, from_side: usize, token: &str) -> RecordPair {
    let mut out = pair.clone();
    let target: &mut Entity = if from_side == 0 { &mut out.right } else { &mut out.left };
    if let Some(v) = target.values.get_mut(attr) {
        if v.is_empty() {
            *v = token.to_string();
        } else {
            *v = format!("{v} {token}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lime::test_model::OverlapModel;

    fn pair() -> RecordPair {
        RecordPair {
            id: 12,
            label: true,
            left: Entity::new(vec!["camera zoom lens"]),
            right: Entity::new(vec!["camera zoom filter"]),
        }
    }

    #[test]
    fn inject_appends_to_other_side() {
        let p = pair();
        let out = inject_token(&p, 0, 0, "lens");
        assert_eq!(out.right.values[0], "camera zoom filter lens");
        assert_eq!(out.left.values[0], p.left.values[0]);
        let out2 = inject_token(&p, 0, 1, "filter");
        assert_eq!(out2.left.values[0], "camera zoom lens filter");
    }

    #[test]
    fn unique_tokens_gain_from_injection_signal() {
        // Under the overlap model, injecting "lens" into the right side
        // raises the score, so its potential is positive even though its
        // drop weight is negative.
        let lemon = LemonLite { potential_weight: 1.0, ..Default::default() };
        let atts = lemon.explain(&OverlapModel, &pair());
        let lens = atts.iter().find(|a| a.token == "lens").unwrap();
        assert!(lens.weight > 0.0, "pure-potential weight must be positive: {}", lens.weight);
    }

    #[test]
    fn combined_signal_still_ranks_shared_tokens_high() {
        let lemon = LemonLite::default();
        let atts = lemon.explain(&OverlapModel, &pair());
        let w = |t: &str, s: usize| {
            atts.iter().find(|a| a.token == t && a.loc.side == s).unwrap().weight
        };
        assert!(w("camera", 0) > 0.0);
        assert!(w("zoom", 1) > 0.0);
    }

    #[test]
    fn empty_pair() {
        let p = RecordPair {
            id: 0,
            label: false,
            left: Entity::new(vec![""]),
            right: Entity::new(vec![""]),
        };
        assert!(LemonLite::default().explain(&OverlapModel, &p).is_empty());
    }
}
