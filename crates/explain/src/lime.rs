//! LIME-style perturbation explainer, from scratch.
//!
//! Classic LIME over text: sample random token-drop perturbations, query the
//! black-box model, and fit a locality-weighted ridge surrogate on the
//! binary keep/drop mask. Weights of the surrogate are the attributions.

use crate::rebuild::keep_tokens;
use crate::{enumerate_tokens, TokenAttribution, TokenLoc};
use std::collections::HashSet;
use wym_core::pipeline::EmPredictor;
use wym_data::RecordPair;
use wym_linalg::solve::ridge_weighted;
use wym_linalg::{Matrix, Rng64};

/// LIME configuration.
#[derive(Debug, Clone)]
pub struct LimeText {
    /// Number of perturbation samples.
    pub n_samples: usize,
    /// Ridge regularization of the surrogate.
    pub ridge_lambda: f32,
    /// Kernel width of the locality weighting (on cosine distance between
    /// masks).
    pub kernel_width: f32,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for LimeText {
    fn default() -> Self {
        Self { n_samples: 200, ridge_lambda: 1.0, kernel_width: 0.5, seed: 0 }
    }
}

impl LimeText {
    /// Explains `model`'s prediction on `pair`, returning one attribution
    /// per word token. Positive weights push toward *match*.
    pub fn explain(&self, model: &dyn EmPredictor, pair: &RecordPair) -> Vec<TokenAttribution> {
        let _span = wym_obs::span("lime");
        let tokens = enumerate_tokens(pair);
        let d = tokens.len();
        if d == 0 {
            return Vec::new();
        }
        let mut rng = Rng64::new(self.seed ^ u64::from(pair.id));

        let mut masks = Matrix::zeros(0, d);
        let mut weights = Vec::with_capacity(self.n_samples + 1);
        let mut queries = Vec::with_capacity(self.n_samples + 1);

        // The unperturbed instance anchors the surrogate.
        masks.push_row(&vec![1.0; d]);
        queries.push(pair.clone());
        weights.push(1.0);

        for _ in 0..self.n_samples {
            // Drop a uniform number of tokens in 1..d (LIME's sampling).
            let n_drop = 1 + rng.gen_range(d.max(2) - 1);
            let drop_idx: HashSet<usize> =
                rng.sample_indices(d, n_drop).into_iter().collect();
            let mask: Vec<f32> =
                (0..d).map(|i| if drop_idx.contains(&i) { 0.0 } else { 1.0 }).collect();
            let keep: HashSet<TokenLoc> = tokens
                .iter()
                .enumerate()
                .filter(|(i, _)| !drop_idx.contains(i))
                .map(|(_, (l, _))| *l)
                .collect();
            let kept_frac = (d - drop_idx.len()) as f32 / d as f32;
            // Exponential kernel on the distance 1 − kept fraction.
            let dist = 1.0 - kept_frac;
            let w = (-(dist * dist) / (self.kernel_width * self.kernel_width)).exp();
            masks.push_row(&mask);
            queries.push(keep_tokens(pair, &keep));
            weights.push(w);
        }

        // One batched model call for the whole perturbation set.
        let ys = model.proba_batch(&queries);

        let beta = match ridge_weighted(&masks, &ys, &weights, self.ridge_lambda) {
            Ok(b) => b,
            Err(_) => vec![0.0; d],
        };
        tokens
            .into_iter()
            .zip(beta)
            .map(|((loc, token), weight)| TokenAttribution { loc, token, weight })
            .collect()
    }
}

#[cfg(test)]
pub(crate) mod test_model {
    use wym_core::pipeline::EmPredictor;
    use wym_data::RecordPair;
    use wym_strsim::jaccard_tokens;

    /// A transparent predictor: match probability = Jaccard overlap of the
    /// two token sets. Ideal for testing explainers because the ground-truth
    /// importance of a token is known (shared tokens raise the score).
    pub struct OverlapModel;

    impl EmPredictor for OverlapModel {
        fn proba(&self, pair: &RecordPair) -> f32 {
            let l = pair.left.full_text().to_lowercase();
            let r = pair.right.full_text().to_lowercase();
            let lt: Vec<&str> = l.split_whitespace().collect();
            let rt: Vec<&str> = r.split_whitespace().collect();
            jaccard_tokens(&lt, &rt)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_model::OverlapModel;
    use super::*;
    use wym_data::Entity;

    fn pair() -> RecordPair {
        RecordPair {
            id: 9,
            label: true,
            left: Entity::new(vec!["camera zoom lens"]),
            right: Entity::new(vec!["camera zoom filter"]),
        }
    }

    #[test]
    fn shared_tokens_get_positive_weight_unique_negative() {
        let lime = LimeText { n_samples: 300, ..Default::default() };
        let atts = lime.explain(&OverlapModel, &pair());
        assert_eq!(atts.len(), 6);
        let weight_of = |t: &str, side: usize| {
            atts.iter().find(|a| a.token == t && a.loc.side == side).unwrap().weight
        };
        // Shared tokens increase overlap: positive attribution.
        assert!(weight_of("camera", 0) > 0.0);
        assert!(weight_of("zoom", 1) > 0.0);
        // Unique tokens shrink the Jaccard union: negative attribution.
        assert!(weight_of("lens", 0) < weight_of("camera", 0));
        assert!(weight_of("filter", 1) < weight_of("zoom", 1));
    }

    #[test]
    fn deterministic_per_seed() {
        let lime = LimeText { n_samples: 50, ..Default::default() };
        let a = lime.explain(&OverlapModel, &pair());
        let b = lime.explain(&OverlapModel, &pair());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.weight, y.weight);
        }
    }

    #[test]
    fn empty_pair_yields_no_attributions() {
        let p = RecordPair {
            id: 0,
            label: false,
            left: Entity::new(vec![""]),
            right: Entity::new(vec![""]),
        };
        assert!(LimeText::default().explain(&OverlapModel, &p).is_empty());
    }
}
