//! Error analysis — the tooling behind the paper's §5.1.1 discussion.
//!
//! "The detailed error analysis showed that WYM makes a large number of
//! errors in recognizing product codes in the entity descriptions. In many
//! cases, they form a decision unit even if they are not the same." This
//! module classifies a model's test errors and measures exactly that
//! failure mode, so the effect of the code heuristic / unit rules can be
//! quantified rather than eyeballed.

use serde::Serialize;
use wym_core::{DecisionUnit, WymModel};
use wym_data::RecordPair;
use wym_strsim::looks_like_code;

/// One misclassified record with its diagnosis.
#[derive(Debug, Clone, Serialize)]
pub struct ErrorCase {
    /// Record id.
    pub record_id: u32,
    /// Gold label.
    pub gold: bool,
    /// Predicted probability of match.
    pub probability: f32,
    /// Number of paired units whose two code-like surfaces differ — the
    /// §5.1.1 failure signature.
    pub mismatched_code_pairs: usize,
    /// Number of paired units in the record.
    pub paired_units: usize,
    /// Number of unpaired units in the record.
    pub unpaired_units: usize,
}

/// Aggregate error report over a test set.
#[derive(Debug, Clone, Serialize)]
pub struct ErrorReport {
    /// Records evaluated.
    pub total: usize,
    /// False positives (predicted match, gold non-match).
    pub false_positives: Vec<ErrorCase>,
    /// False negatives (predicted non-match, gold match).
    pub false_negatives: Vec<ErrorCase>,
    /// How many false positives contain at least one mismatched code pair —
    /// the paper's headline error class.
    pub fp_with_code_confusion: usize,
}

impl ErrorReport {
    /// Error rate over the evaluated records.
    pub fn error_rate(&self) -> f32 {
        if self.total == 0 {
            return 0.0;
        }
        (self.false_positives.len() + self.false_negatives.len()) as f32 / self.total as f32
    }
}

/// Counts paired units whose two surfaces are *different* code-like tokens.
pub fn mismatched_code_pairs(record: &wym_core::TokenizedRecord, units: &[DecisionUnit]) -> usize {
    units
        .iter()
        .filter(|u| {
            if !u.is_paired() {
                return false;
            }
            let (l, r) = u.texts(record);
            l != r && looks_like_code(l) && looks_like_code(r)
        })
        .count()
}

/// Runs the model over `pairs` and classifies every error.
pub fn analyze_errors(model: &WymModel, pairs: &[RecordPair]) -> ErrorReport {
    let mut report = ErrorReport {
        total: pairs.len(),
        false_positives: Vec::new(),
        false_negatives: Vec::new(),
        fp_with_code_confusion: 0,
    };
    for pair in pairs {
        let proc = model.process(pair);
        let pred = model.predict_processed(&proc);
        if pred.label == pair.label {
            continue;
        }
        let case = ErrorCase {
            record_id: pair.id,
            gold: pair.label,
            probability: pred.probability,
            mismatched_code_pairs: mismatched_code_pairs(&proc.record, &proc.units),
            paired_units: proc.units.iter().filter(|u| u.is_paired()).count(),
            unpaired_units: proc.units.iter().filter(|u| !u.is_paired()).count(),
        };
        if pred.label {
            report.fp_with_code_confusion += usize::from(case.mismatched_code_pairs > 0);
            report.false_positives.push(case);
        } else {
            report.false_negatives.push(case);
        }
    }
    report
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use wym_core::WymConfig;
    use wym_data::{magellan, split::paper_split};
    use wym_embed::EmbedderKind;
    use wym_ml::ClassifierKind;
    use wym_nn::TrainConfig;
    use wym_tokenize::Tokenizer;

    #[test]
    fn mismatched_code_detection() {
        use wym_core::TokenizedRecord;
        use wym_embed::Embedder;
        let pair = RecordPair {
            id: 0,
            label: false,
            left: wym_data::Entity::new(vec!["camera 39400416"]),
            right: wym_data::Entity::new(vec!["camera 39400417"]),
        };
        let rec =
            TokenizedRecord::from_pair(&pair, &Tokenizer::default(), &Embedder::new_static(32, 0));
        let units = wym_core::discover_units(&rec, &wym_core::DiscoveryConfig::default());
        assert_eq!(mismatched_code_pairs(&rec, &units), 1, "{units:?}");
    }

    #[test]
    fn report_counts_are_consistent() {
        let dataset = magellan::generate_by_name("S-WA", 13).unwrap().subsample(250, 0);
        let split = paper_split(&dataset, 0);
        let mut cfg = WymConfig::default();
        cfg.embed_dim = 32;
        cfg.embedder_kind = EmbedderKind::Static;
        cfg.scorer.train = TrainConfig { epochs: 6, batch_size: 128, ..Default::default() };
        cfg.matcher.kinds = vec![ClassifierKind::LogisticRegression];
        let model = WymModel::fit(&dataset, &split, cfg);
        let test: Vec<RecordPair> =
            split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
        let report = analyze_errors(&model, &test);
        assert_eq!(report.total, test.len());
        assert!(report.error_rate() <= 1.0);
        assert!(report.fp_with_code_confusion <= report.false_positives.len());
        for fp in &report.false_positives {
            assert!(!fp.gold);
            assert!(fp.probability >= 0.5);
        }
        for fneg in &report.false_negatives {
            assert!(fneg.gold);
            assert!(fneg.probability < 0.5);
        }
    }
}
