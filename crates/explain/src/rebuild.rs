//! Rebuilding record pairs with tokens removed or retained.
//!
//! The perturbation experiments (Figures 7 and 8) and the surrogate
//! explainers all need the same primitive: a copy of a record pair in which
//! a chosen subset of word tokens survives. Rebuilt values are the surviving
//! tokens joined by spaces; the models re-tokenize them identically.

use crate::TokenLoc;
use std::collections::HashSet;
use wym_core::{DecisionUnit, ProcessedRecord, Side};
use wym_data::{Entity, RecordPair};

/// Rebuilds the pair keeping only the tokens in `keep`.
pub fn keep_tokens(pair: &RecordPair, keep: &HashSet<TokenLoc>) -> RecordPair {
    let tokenizer = wym_tokenize::Tokenizer::default();
    let rebuild = |entity: &Entity, side: usize| -> Entity {
        let values = entity
            .values
            .iter()
            .enumerate()
            .map(|(attr, value)| {
                tokenizer
                    .tokenize(value)
                    .into_iter()
                    .enumerate()
                    .filter(|(pos, _)| keep.contains(&TokenLoc { side, attr, pos: *pos }))
                    .map(|(_, t)| t)
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect();
        Entity { values }
    };
    RecordPair {
        id: pair.id,
        label: pair.label,
        left: rebuild(&pair.left, 0),
        right: rebuild(&pair.right, 1),
    }
}

/// Rebuilds the pair dropping exactly the tokens in `drop`.
pub fn drop_tokens(pair: &RecordPair, drop: &HashSet<TokenLoc>) -> RecordPair {
    let all: HashSet<TokenLoc> = crate::enumerate_tokens(pair).into_iter().map(|(l, _)| l).collect();
    let keep: HashSet<TokenLoc> = all.difference(drop).copied().collect();
    keep_tokens(pair, &keep)
}

/// The token locations owned by a set of decision units of a processed
/// record.
pub fn unit_token_locs(proc: &ProcessedRecord, unit_indices: &[usize]) -> HashSet<TokenLoc> {
    let mut out = HashSet::new();
    for &i in unit_indices {
        for (side, t) in proc.units[i].members() {
            out.insert(TokenLoc {
                side: match side {
                    Side::Left => 0,
                    Side::Right => 1,
                },
                attr: t.attr as usize,
                pos: t.pos as usize,
            });
        }
    }
    out
}

/// Rebuilds the original pair of a processed record without the tokens of
/// the chosen units.
pub fn remove_units(
    pair: &RecordPair,
    proc: &ProcessedRecord,
    unit_indices: &[usize],
) -> RecordPair {
    drop_tokens(pair, &unit_token_locs(proc, unit_indices))
}

/// Rebuilds the pair keeping only the tokens of the chosen units.
pub fn keep_units(
    pair: &RecordPair,
    proc: &ProcessedRecord,
    unit_indices: &[usize],
) -> RecordPair {
    keep_tokens(pair, &unit_token_locs(proc, unit_indices))
}

/// Maps token-granularity attributions onto a record's decision units by
/// averaging the weights of each unit's member tokens. Used to compare
/// post-hoc explainers with WYM at unit granularity (Figure 9).
pub fn token_weights_to_units(
    proc: &ProcessedRecord,
    weights: &[(TokenLoc, f32)],
) -> Vec<f32> {
    let lookup: std::collections::HashMap<TokenLoc, f32> = weights.iter().copied().collect();
    proc.units
        .iter()
        .map(|u| {
            let members = u.members();
            let mut total = 0.0f32;
            let mut n = 0usize;
            for (side, t) in members {
                let loc = TokenLoc {
                    side: match side {
                        Side::Left => 0,
                        Side::Right => 1,
                    },
                    attr: t.attr as usize,
                    pos: t.pos as usize,
                };
                if let Some(w) = lookup.get(&loc) {
                    total += w;
                    n += 1;
                }
            }
            if n == 0 {
                0.0
            } else {
                total / n as f32
            }
        })
        .collect()
}

/// Unit indices sorted so the units most supporting `predicted_match` come
/// first (high positive impact first for a match, most negative first for a
/// non-match) — the ordering MoRF relies on.
pub fn units_by_support(impacts: &[f32], predicted_match: bool) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..impacts.len()).collect();
    idx.sort_by(|&a, &b| {
        let (va, vb) = if predicted_match {
            (impacts[a], impacts[b])
        } else {
            (-impacts[a], -impacts[b])
        };
        vb.total_cmp(&va)
    });
    idx
}

/// Dummy reference to keep `DecisionUnit` in the public docs of this module.
#[doc(hidden)]
pub fn _unit_type_anchor(_: &DecisionUnit) {}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use wym_core::{WymConfig, WymModel};
    use wym_data::{magellan, split::paper_split};
    use wym_embed::EmbedderKind;
    use wym_ml::ClassifierKind;
    use wym_nn::TrainConfig;

    fn pair() -> RecordPair {
        RecordPair {
            id: 1,
            label: true,
            left: Entity::new(vec!["digital camera lens", "37.63"]),
            right: Entity::new(vec!["digital camera", "36"]),
        }
    }

    #[test]
    fn drop_tokens_removes_exactly_those() {
        let p = pair();
        let mut drop = HashSet::new();
        drop.insert(TokenLoc { side: 0, attr: 0, pos: 2 }); // "lens"
        let out = drop_tokens(&p, &drop);
        assert_eq!(out.left.values[0], "digital camera");
        assert_eq!(out.right.values[0], "digital camera");
        assert_eq!(out.left.values[1], "37.63");
    }

    #[test]
    fn keep_tokens_retains_exactly_those() {
        let p = pair();
        let mut keep = HashSet::new();
        keep.insert(TokenLoc { side: 0, attr: 0, pos: 0 });
        keep.insert(TokenLoc { side: 1, attr: 0, pos: 1 });
        let out = keep_tokens(&p, &keep);
        assert_eq!(out.left.values[0], "digital");
        assert_eq!(out.right.values[0], "camera");
        assert_eq!(out.left.values[1], "");
    }

    #[test]
    fn units_by_support_orders_by_prediction_direction() {
        let impacts = vec![0.5, -0.9, 0.1];
        assert_eq!(units_by_support(&impacts, true), vec![0, 2, 1]);
        assert_eq!(units_by_support(&impacts, false), vec![1, 2, 0]);
    }

    #[test]
    fn remove_and_keep_units_roundtrip_token_counts() {
        let dataset = magellan::generate_by_name("S-FZ", 3).unwrap().subsample(120, 0);
        let split = paper_split(&dataset, 0);
        let mut cfg = WymConfig::default();
        cfg.embed_dim = 32;
        cfg.embedder_kind = EmbedderKind::Static;
        cfg.scorer.train = TrainConfig { epochs: 4, batch_size: 64, ..Default::default() };
        cfg.matcher.kinds = vec![ClassifierKind::LogisticRegression];
        let model = WymModel::fit(&dataset, &split, cfg);
        let p = &dataset.pairs[split.test[0]];
        let proc = model.process(p);
        let n = proc.units.len();
        assert!(n > 0);
        let all: Vec<usize> = (0..n).collect();
        let removed_all = remove_units(p, &proc, &all);
        assert!(
            removed_all.left.values.iter().all(|v| v.is_empty()),
            "removing every unit must empty the left entity: {removed_all:?}"
        );
        let kept_all = keep_units(p, &proc, &all);
        let orig_tokens = crate::enumerate_tokens(p).len();
        let kept_tokens = crate::enumerate_tokens(&kept_all).len();
        assert_eq!(orig_tokens, kept_tokens, "keeping every unit must keep every token");
    }

    #[test]
    fn token_weights_to_units_averages_members() {
        let dataset = magellan::generate_by_name("S-FZ", 3).unwrap().subsample(60, 0);
        let split = paper_split(&dataset, 0);
        let mut cfg = WymConfig::default();
        cfg.embed_dim = 32;
        cfg.embedder_kind = EmbedderKind::Static;
        cfg.scorer.train = TrainConfig { epochs: 2, batch_size: 64, ..Default::default() };
        cfg.matcher.kinds = vec![ClassifierKind::LogisticRegression];
        let model = WymModel::fit(&dataset, &split, cfg);
        let p = &dataset.pairs[split.test[0]];
        let proc = model.process(p);
        // Uniform token weights of 1.0 must map every unit to 1.0.
        let weights: Vec<(TokenLoc, f32)> =
            crate::enumerate_tokens(p).into_iter().map(|(l, _)| (l, 1.0)).collect();
        let unit_w = token_weights_to_units(&proc, &weights);
        assert_eq!(unit_w.len(), proc.units.len());
        for w in unit_w {
            assert!((w - 1.0).abs() < 1e-6);
        }
    }
}
