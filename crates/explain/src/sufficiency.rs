//! Sufficiency / post-hoc accuracy (paper §5.2.2, Eq. 4, Figure 7).
//!
//! "For each test data, we select the top v important units based on the
//! impact attributions for the model to make a prediction and compare it
//! with the original prediction made on the whole input text."

use crate::rebuild::{keep_tokens, keep_units, units_by_support};
use crate::{TokenAttribution, TokenLoc};
use std::collections::HashSet;
use wym_core::pipeline::EmPredictor;
use wym_core::WymModel;
use wym_data::RecordPair;

/// Post-hoc accuracy of WYM explained by its own impact scores at several
/// `v` values at once: keep the top-`v` units, re-predict, compare with the
/// full-input prediction. Each record is processed and explained once.
pub fn post_hoc_accuracy_wym_multi(
    model: &WymModel,
    pairs: &[RecordPair],
    vs: &[usize],
) -> Vec<f32> {
    if pairs.is_empty() {
        return vec![0.0; vs.len()];
    }
    let mut agree = vec![0usize; vs.len()];
    for pair in pairs {
        let proc = model.process(pair);
        let full = model.predict_processed(&proc).label;
        if proc.units.is_empty() {
            for a in &mut agree {
                *a += usize::from(!full);
            }
            continue;
        }
        let impacts = model.matcher().impacts(&proc.units, &proc.relevances);
        let order = units_by_support(&impacts, full);
        for (k, &v) in vs.iter().enumerate() {
            let top: Vec<usize> = order.iter().copied().take(v).collect();
            let reduced = keep_units(pair, &proc, &top);
            if model.predict(&reduced).label == full {
                agree[k] += 1;
            }
        }
    }
    agree.into_iter().map(|a| a as f32 / pairs.len() as f32).collect()
}

/// Single-`v` convenience wrapper over [`post_hoc_accuracy_wym_multi`].
pub fn post_hoc_accuracy_wym(model: &WymModel, pairs: &[RecordPair], v: usize) -> f32 {
    post_hoc_accuracy_wym_multi(model, pairs, &[v])[0]
}

/// Post-hoc accuracy of any predictor explained by token-granularity
/// attributions, at several `v` values at once: keep the `v` tokens that
/// most support the full-input prediction (largest weights for a predicted
/// match, smallest for a predicted non-match), re-predict, compare.
///
/// `explain` is called once per record, regardless of how many `v` values
/// are requested — post-hoc explainers cost hundreds of model calls each.
pub fn post_hoc_accuracy_tokens_multi<F>(
    model: &dyn EmPredictor,
    pairs: &[RecordPair],
    vs: &[usize],
    mut explain: F,
) -> Vec<f32>
where
    F: FnMut(&RecordPair) -> Vec<TokenAttribution>,
{
    if pairs.is_empty() {
        return vec![0.0; vs.len()];
    }
    let mut agree = vec![0usize; vs.len()];
    for pair in pairs {
        let full = model.predict_label(pair);
        let mut atts = explain(pair);
        if atts.is_empty() {
            for a in &mut agree {
                *a += usize::from(model.predict_label(pair) == full);
            }
            continue;
        }
        atts.sort_by(|a, b| {
            let (x, y) = if full { (a.weight, b.weight) } else { (-a.weight, -b.weight) };
            y.total_cmp(&x)
        });
        for (k, &v) in vs.iter().enumerate() {
            let keep: HashSet<TokenLoc> = atts.iter().take(v).map(|a| a.loc).collect();
            let reduced = keep_tokens(pair, &keep);
            if model.predict_label(&reduced) == full {
                agree[k] += 1;
            }
        }
    }
    agree.into_iter().map(|a| a as f32 / pairs.len() as f32).collect()
}

/// Single-`v` convenience wrapper over [`post_hoc_accuracy_tokens_multi`].
pub fn post_hoc_accuracy_tokens<F>(
    model: &dyn EmPredictor,
    pairs: &[RecordPair],
    v: usize,
    explain: F,
) -> f32
where
    F: FnMut(&RecordPair) -> Vec<TokenAttribution>,
{
    post_hoc_accuracy_tokens_multi(model, pairs, &[v], explain)[0]
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::lime::test_model::OverlapModel;
    use crate::lime::LimeText;
    use wym_core::WymConfig;
    use wym_data::{magellan, split::paper_split, Entity};
    use wym_embed::EmbedderKind;
    use wym_ml::ClassifierKind;
    use wym_nn::TrainConfig;

    #[test]
    fn wym_posthoc_accuracy_increases_with_v() {
        let dataset = magellan::generate_by_name("S-FZ", 5).unwrap().subsample(300, 0);
        let split = paper_split(&dataset, 0);
        let mut cfg = WymConfig::default();
        cfg.embed_dim = 32;
        cfg.embedder_kind = EmbedderKind::Static;
        cfg.scorer.train = TrainConfig { epochs: 12, batch_size: 128, lr: 2e-3, ..Default::default() };
        cfg.matcher.kinds =
            vec![ClassifierKind::LogisticRegression, ClassifierKind::GradientBoosting];
        let model = WymModel::fit(&dataset, &split, cfg);
        let test: Vec<RecordPair> =
            split.test.iter().take(40).map(|&i| dataset.pairs[i].clone()).collect();
        let acc1 = post_hoc_accuracy_wym(&model, &test, 1);
        let acc10 = post_hoc_accuracy_wym(&model, &test, 10);
        assert!((0.0..=1.0).contains(&acc1));
        assert!(
            acc10 >= acc1,
            "keeping more top units should not collapse agreement: v=1 {acc1}, v=10 {acc10}"
        );
        assert!(
            acc10 > 0.7,
            "ten units cover most records, so agreement must be high, got {acc10}"
        );
    }

    #[test]
    fn token_posthoc_with_transparent_model() {
        // Overlap model + LIME: the top tokens are the shared ones, and a
        // pair of identical entities keeps predicting match from them.
        let pairs = vec![
            RecordPair {
                id: 0,
                label: true,
                left: Entity::new(vec!["camera zoom lens kit"]),
                right: Entity::new(vec!["camera zoom lens kit"]),
            },
            RecordPair {
                id: 1,
                label: false,
                left: Entity::new(vec!["beer ale stout"]),
                right: Entity::new(vec!["router modem switch"]),
            },
        ];
        let lime = LimeText { n_samples: 150, ..Default::default() };
        let acc = post_hoc_accuracy_tokens(&OverlapModel, &pairs, 4, |p| {
            lime.explain(&OverlapModel, p)
        });
        assert!(acc >= 0.5, "post-hoc accuracy {acc}");
    }

    #[test]
    fn empty_pairs_slice_is_zero() {
        assert_eq!(
            post_hoc_accuracy_tokens(&OverlapModel, &[], 3, |_| Vec::new()),
            0.0
        );
    }
}
