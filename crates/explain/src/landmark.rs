//! Landmark Explanation, from scratch (Baraldi et al., CIKM/EDBT 2021).
//!
//! Landmark extends LIME to the EM setting by explaining one entity
//! description at a time while the *other* description — the landmark —
//! stays fixed. Perturbations therefore never destroy the reference entity,
//! which yields much better-behaved surrogates on pair inputs. The paper's
//! Figure 9 compares WYM impacts against these scores with 100
//! perturbations per entity.

use crate::rebuild::keep_tokens;
use crate::{enumerate_tokens, TokenAttribution, TokenLoc};
use std::collections::HashSet;
use wym_core::pipeline::EmPredictor;
use wym_data::RecordPair;
use wym_linalg::solve::ridge_weighted;
use wym_linalg::{Matrix, Rng64};

/// Landmark configuration.
#[derive(Debug, Clone)]
pub struct Landmark {
    /// Perturbations generated per entity (the paper's Fig. 9 uses 100).
    pub n_perturbations: usize,
    /// Ridge regularization of the per-side surrogate.
    pub ridge_lambda: f32,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for Landmark {
    fn default() -> Self {
        Self { n_perturbations: 100, ridge_lambda: 1.0, seed: 0 }
    }
}

impl Landmark {
    /// Explains the prediction, returning one attribution per word token of
    /// both sides (each side explained against the other as landmark).
    pub fn explain(&self, model: &dyn EmPredictor, pair: &RecordPair) -> Vec<TokenAttribution> {
        let _span = wym_obs::span("landmark");
        let tokens = enumerate_tokens(pair);
        let mut out = Vec::with_capacity(tokens.len());
        for side in [0usize, 1usize] {
            out.extend(self.explain_side(model, pair, side, &tokens));
        }
        out
    }

    /// LIME restricted to one side's tokens; the other side never changes.
    fn explain_side(
        &self,
        model: &dyn EmPredictor,
        pair: &RecordPair,
        side: usize,
        tokens: &[(TokenLoc, String)],
    ) -> Vec<TokenAttribution> {
        let side_tokens: Vec<(usize, &(TokenLoc, String))> =
            tokens.iter().enumerate().filter(|(_, (l, _))| l.side == side).collect();
        let d = side_tokens.len();
        if d == 0 {
            return Vec::new();
        }
        let mut rng = Rng64::new(self.seed ^ (u64::from(pair.id) << 1) ^ side as u64);
        let all_locs: HashSet<TokenLoc> = tokens.iter().map(|(l, _)| *l).collect();

        let mut masks = Matrix::zeros(0, d);
        let mut queries = Vec::with_capacity(self.n_perturbations + 1);
        let mut weights = Vec::with_capacity(self.n_perturbations + 1);
        masks.push_row(&vec![1.0; d]);
        queries.push(pair.clone());
        weights.push(1.0);

        for _ in 0..self.n_perturbations {
            let n_drop = 1 + rng.gen_range(d.max(2) - 1);
            let drop: HashSet<usize> = rng.sample_indices(d, n_drop).into_iter().collect();
            let mut keep = all_locs.clone();
            for (k, tok) in side_tokens.iter().enumerate().take(d) {
                if drop.contains(&k) {
                    keep.remove(&tok.1 .0);
                }
            }
            let mask: Vec<f32> =
                (0..d).map(|k| if drop.contains(&k) { 0.0 } else { 1.0 }).collect();
            let kept_frac = (d - drop.len()) as f32 / d as f32;
            let dist = 1.0 - kept_frac;
            let w = (-(dist * dist) / 0.25).exp();
            masks.push_row(&mask);
            queries.push(keep_tokens(pair, &keep));
            weights.push(w);
        }

        // One batched model call for the side's whole perturbation set.
        let ys = model.proba_batch(&queries);

        let beta = match ridge_weighted(&masks, &ys, &weights, self.ridge_lambda) {
            Ok(b) => b,
            Err(_) => vec![0.0; d],
        };
        side_tokens
            .into_iter()
            .zip(beta)
            .map(|((_, (loc, token)), weight)| TokenAttribution {
                loc: *loc,
                token: token.clone(),
                weight,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lime::test_model::OverlapModel;
    use wym_data::Entity;

    fn pair() -> RecordPair {
        RecordPair {
            id: 4,
            label: true,
            left: Entity::new(vec!["camera zoom lens"]),
            right: Entity::new(vec!["camera zoom filter"]),
        }
    }

    #[test]
    fn covers_all_tokens_of_both_sides() {
        let atts = Landmark::default().explain(&OverlapModel, &pair());
        assert_eq!(atts.len(), 6);
        assert_eq!(atts.iter().filter(|a| a.loc.side == 0).count(), 3);
        assert_eq!(atts.iter().filter(|a| a.loc.side == 1).count(), 3);
    }

    #[test]
    fn shared_tokens_outscore_unique_tokens() {
        let atts = Landmark { n_perturbations: 200, ..Default::default() }
            .explain(&OverlapModel, &pair());
        let w = |t: &str, s: usize| {
            atts.iter().find(|a| a.token == t && a.loc.side == s).unwrap().weight
        };
        assert!(w("camera", 0) > w("lens", 0), "{atts:?}");
        assert!(w("camera", 1) > w("filter", 1), "{atts:?}");
    }

    #[test]
    fn one_sided_empty_entity_still_works() {
        let p = RecordPair {
            id: 0,
            label: false,
            left: Entity::new(vec![""]),
            right: Entity::new(vec!["camera"]),
        };
        let atts = Landmark::default().explain(&OverlapModel, &p);
        assert_eq!(atts.len(), 1);
        assert_eq!(atts[0].loc.side, 1);
    }

    #[test]
    fn deterministic() {
        let lm = Landmark { n_perturbations: 40, ..Default::default() };
        let a = lm.explain(&OverlapModel, &pair());
        let b = lm.explain(&OverlapModel, &pair());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.weight, y.weight);
        }
    }
}
