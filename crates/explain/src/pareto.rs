//! Conciseness of explanations (paper §5.2.1, Figure 6).
//!
//! "Pareto analysis performed for each record … by ordering the decision
//! units per impact in descending order and plotting the cumulative values."
//! The figure's claim: ~3% of the units carry 18-40% of the impact, 20%
//! carry 50-83%.

use wym_core::Explanation;

/// Cumulative |impact| share at each unit rank of one explanation, i.e.
/// `curve[i]` = share of total absolute impact carried by the top `i + 1`
/// units. Empty explanations yield an empty curve.
pub fn cumulative_impact_curve(explanation: &Explanation) -> Vec<f32> {
    let mut mags: Vec<f32> = explanation.units.iter().map(|u| u.impact.abs()).collect();
    mags.sort_by(|a, b| b.total_cmp(a));
    let total: f32 = mags.iter().sum();
    if total <= 0.0 {
        return vec![0.0; mags.len()];
    }
    let mut acc = 0.0;
    mags.into_iter()
        .map(|m| {
            acc += m;
            acc / total
        })
        .collect()
}

/// Interpolated cumulative impact share at a unit *fraction* in `[0, 1]`
/// (e.g. 0.03 = "the top 3% of decision units").
pub fn share_at_fraction(curve: &[f32], fraction: f32) -> f32 {
    if curve.is_empty() {
        return 0.0;
    }
    let n = curve.len() as f32;
    // The top max(1, fraction·n) units.
    let k = ((fraction * n).ceil() as usize).clamp(1, curve.len());
    curve[k - 1]
}

/// Mean cumulative-impact share at the given fractions over many
/// explanations — one Figure 6 series.
pub fn mean_shares(explanations: &[Explanation], fractions: &[f32]) -> Vec<f32> {
    if explanations.is_empty() {
        return vec![0.0; fractions.len()];
    }
    let curves: Vec<Vec<f32>> =
        explanations.iter().map(cumulative_impact_curve).collect();
    fractions
        .iter()
        .map(|&f| {
            let sum: f32 = curves.iter().map(|c| share_at_fraction(c, f)).sum();
            sum / curves.len() as f32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wym_core::ExplainedUnit;

    fn explanation(impacts: &[f32]) -> Explanation {
        Explanation {
            record_id: 0,
            prediction: true,
            probability: 0.9,
            units: impacts
                .iter()
                .map(|&impact| ExplainedUnit {
                    left: "a".into(),
                    right: "b".into(),
                    attribute: "x".into(),
                    paired: true,
                    relevance: 0.0,
                    impact,
                })
                .collect(),
        }
    }

    #[test]
    fn curve_is_monotone_and_ends_at_one() {
        let ex = explanation(&[0.5, -0.3, 0.1, 0.1]);
        let c = cumulative_impact_curve(&ex);
        assert_eq!(c.len(), 4);
        assert!(c.windows(2).all(|w| w[0] <= w[1] + 1e-6));
        assert!((c[3] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn concentrated_impact_has_steep_curve() {
        let concentrated = explanation(&[10.0, 0.1, 0.1, 0.1, 0.1]);
        let uniform = explanation(&[1.0, 1.0, 1.0, 1.0, 1.0]);
        let cc = cumulative_impact_curve(&concentrated);
        let cu = cumulative_impact_curve(&uniform);
        assert!(cc[0] > 0.9);
        assert!((cu[0] - 0.2).abs() < 1e-6);
    }

    #[test]
    fn share_at_fraction_interpolates() {
        let ex = explanation(&[1.0; 10]);
        let c = cumulative_impact_curve(&ex);
        assert!((share_at_fraction(&c, 0.2) - 0.2).abs() < 1e-6);
        assert!((share_at_fraction(&c, 1.0) - 1.0).abs() < 1e-6);
        // Fractions below one unit round up to the first unit.
        assert!((share_at_fraction(&c, 0.01) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn zero_impact_explanation_is_flat_zero() {
        let ex = explanation(&[0.0, 0.0]);
        let c = cumulative_impact_curve(&ex);
        assert_eq!(c, vec![0.0, 0.0]);
    }

    #[test]
    fn mean_shares_averages() {
        let a = explanation(&[10.0, 0.0]);
        let b = explanation(&[1.0, 1.0]);
        let m = mean_shares(&[a, b], &[0.5]);
        // a: top 50% (1 unit) = 1.0 ; b: 0.5 → mean 0.75.
        assert!((m[0] - 0.75).abs() < 1e-6);
    }
}
