//! Agreement between WYM impacts and post-hoc explanations (Figure 9).
//!
//! "The explanations are post-processed by merging semantically similar
//! tokens and averaging their scores. The outputs are then compared with the
//! ones of WYM through the Pearson correlation measure." The merge step is
//! exactly [`crate::rebuild::token_weights_to_units`]: a post-hoc token
//! score vector is collapsed onto WYM's decision units.

use crate::rebuild::token_weights_to_units;
use crate::TokenAttribution;
use wym_core::WymModel;
use wym_data::RecordPair;
use wym_linalg::stats::pearson;

/// Per-record Pearson correlation between WYM unit impacts and a token-
/// granularity post-hoc explanation merged to unit granularity. `None` when
/// either attribution vector is constant (no defined correlation).
pub fn unit_correlation(
    model: &WymModel,
    pair: &RecordPair,
    token_attributions: &[TokenAttribution],
) -> Option<f32> {
    let proc = model.process(pair);
    if proc.units.len() < 2 {
        return None;
    }
    let impacts = model.matcher().impacts(&proc.units, &proc.relevances);
    let weights: Vec<(crate::TokenLoc, f32)> =
        token_attributions.iter().map(|a| (a.loc, a.weight)).collect();
    let merged = token_weights_to_units(&proc, &weights);
    pearson(&impacts, &merged)
}

/// Correlations of a set of records, split by gold label:
/// `(match_correlations, non_match_correlations)`.
pub fn correlations_by_label<F>(
    model: &WymModel,
    pairs: &[RecordPair],
    mut explain: F,
) -> (Vec<f32>, Vec<f32>)
where
    F: FnMut(&RecordPair) -> Vec<TokenAttribution>,
{
    let mut matches = Vec::new();
    let mut non_matches = Vec::new();
    for pair in pairs {
        let atts = explain(pair);
        if let Some(r) = unit_correlation(model, pair, &atts) {
            if pair.label {
                matches.push(r);
            } else {
                non_matches.push(r);
            }
        }
    }
    (matches, non_matches)
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::landmark::Landmark;
    use wym_core::pipeline::EmPredictor;
    use wym_core::WymConfig;
    use wym_data::{magellan, split::paper_split};
    use wym_embed::EmbedderKind;
    use wym_ml::ClassifierKind;
    use wym_nn::TrainConfig;

    fn fitted() -> (WymModel, Vec<RecordPair>) {
        let dataset = magellan::generate_by_name("S-FZ", 2).unwrap().subsample(140, 0);
        let split = paper_split(&dataset, 0);
        let mut cfg = WymConfig::default();
        cfg.embed_dim = 32;
        cfg.embedder_kind = EmbedderKind::Static;
        cfg.scorer.train = TrainConfig { epochs: 6, batch_size: 128, lr: 2e-3, ..Default::default() };
        cfg.matcher.kinds = vec![ClassifierKind::LogisticRegression];
        let model = WymModel::fit(&dataset, &split, cfg);
        let test: Vec<RecordPair> =
            split.test.iter().take(12).map(|&i| dataset.pairs[i].clone()).collect();
        (model, test)
    }

    #[test]
    fn self_correlation_is_perfect() {
        // Feed WYM's own impacts back as "token attributions": correlation 1.
        let (model, test) = fitted();
        let pair = &test[0];
        let proc = model.process(pair);
        let impacts = model.matcher().impacts(&proc.units, &proc.relevances);
        // Distribute the unit impact onto every member token.
        let mut atts = Vec::new();
        for (u, &imp) in proc.units.iter().zip(&impacts) {
            for (side, t) in u.members() {
                atts.push(TokenAttribution {
                    loc: crate::TokenLoc {
                        side: match side {
                            wym_core::Side::Left => 0,
                            wym_core::Side::Right => 1,
                        },
                        attr: t.attr as usize,
                        pos: t.pos as usize,
                    },
                    token: String::new(),
                    weight: imp,
                });
            }
        }
        let r = unit_correlation(&model, pair, &atts);
        if let Some(r) = r {
            assert!(r > 0.999, "self-correlation {r}");
        }
    }

    #[test]
    fn landmark_correlation_is_mostly_positive_on_matches() {
        let (model, test) = fitted();
        let landmark = Landmark { n_perturbations: 60, ..Default::default() };
        let (m, n) = correlations_by_label(&model, &test, |p| landmark.explain(&model, p));
        let mean = |v: &[f32]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f32>() / v.len() as f32
            }
        };
        // The paper reports moderate positive correlation for matches and a
        // weaker one for non-matches; at minimum both explainers must not be
        // systematically anti-correlated.
        assert!(mean(&m) > -0.2, "match correlations {m:?}");
        assert!(mean(&n) > -0.4, "non-match correlations {n:?}");
    }

    #[test]
    fn degenerate_records_return_none() {
        let (model, _) = fitted();
        let pair = RecordPair {
            id: 999,
            label: true,
            left: wym_data::Entity::new(vec!["", "", "", "", ""]),
            right: wym_data::Entity::new(vec!["", "", "", "", ""]),
        };
        assert_eq!(unit_correlation(&model, &pair, &[]), None);
        // Guard: the model still predicts something for the empty pair.
        let _ = model.proba(&pair);
    }
}
