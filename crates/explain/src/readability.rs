//! Automated readability proxy for the paper's §5.4 user study.
//!
//! The study itself (15 human raters) cannot be reproduced mechanically, but
//! the property the raters preferred can be measured: decision-unit
//! explanations are *shorter* (one element per concept instead of two) and
//! *duplication-free* (a shared term appears once with one score, instead of
//! twice with two different scores — the confusion the paper's introduction
//! calls out).

use crate::enumerate_tokens;
use serde::Serialize;
use wym_core::WymModel;
use wym_data::RecordPair;

/// Readability statistics of one record's explanations.
#[derive(Debug, Clone, Serialize)]
pub struct ReadabilityStats {
    /// Elements in a feature-based (token) explanation: every token scored.
    pub token_explanation_size: usize,
    /// Elements in the WYM explanation: one per decision unit.
    pub unit_explanation_size: usize,
    /// Tokens whose surface form appears in *both* descriptions — each such
    /// term gets two independent scores in a feature-based explanation.
    pub duplicated_terms: usize,
    /// Duplicated terms that WYM presents as a single paired unit.
    pub deduplicated_by_units: usize,
}

impl ReadabilityStats {
    /// Relative size reduction of the unit explanation vs the token one.
    pub fn compression(&self) -> f32 {
        if self.token_explanation_size == 0 {
            return 0.0;
        }
        1.0 - self.unit_explanation_size as f32 / self.token_explanation_size as f32
    }
}

/// Computes the readability proxy for one record.
pub fn readability(model: &WymModel, pair: &RecordPair) -> ReadabilityStats {
    let tokens = enumerate_tokens(pair);
    let token_explanation_size = tokens.len();
    let proc = model.process(pair);
    let unit_explanation_size = proc.units.len();

    // Surface forms present on both sides.
    let left: std::collections::HashSet<&str> =
        tokens.iter().filter(|(l, _)| l.side == 0).map(|(_, t)| t.as_str()).collect();
    let right: std::collections::HashSet<&str> =
        tokens.iter().filter(|(l, _)| l.side == 1).map(|(_, t)| t.as_str()).collect();
    let duplicated: std::collections::HashSet<&str> =
        left.intersection(&right).copied().collect();
    let duplicated_terms = duplicated.len();

    // Paired units whose two members share a surface form.
    let deduplicated_by_units = proc
        .units
        .iter()
        .filter(|u| {
            let (l, r) = u.texts(&proc.record);
            u.is_paired() && l == r
        })
        .map(|u| u.texts(&proc.record).0)
        .collect::<std::collections::HashSet<_>>()
        .len();

    ReadabilityStats {
        token_explanation_size,
        unit_explanation_size,
        duplicated_terms,
        deduplicated_by_units,
    }
}

/// Mean readability stats over a sample of records.
pub fn mean_readability(model: &WymModel, pairs: &[RecordPair]) -> (f32, f32, f32) {
    if pairs.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let stats: Vec<ReadabilityStats> = pairs.iter().map(|p| readability(model, p)).collect();
    let n = stats.len() as f32;
    let mean_tokens = stats.iter().map(|s| s.token_explanation_size as f32).sum::<f32>() / n;
    let mean_units = stats.iter().map(|s| s.unit_explanation_size as f32).sum::<f32>() / n;
    let mean_compression = stats.iter().map(ReadabilityStats::compression).sum::<f32>() / n;
    (mean_tokens, mean_units, mean_compression)
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use wym_core::WymConfig;
    use wym_data::{magellan, split::paper_split};
    use wym_embed::EmbedderKind;
    use wym_ml::ClassifierKind;
    use wym_nn::TrainConfig;

    #[test]
    fn unit_explanations_are_smaller_on_matches() {
        let dataset = magellan::generate_by_name("S-FZ", 4).unwrap().subsample(120, 0);
        let split = paper_split(&dataset, 0);
        let mut cfg = WymConfig::default();
        cfg.embed_dim = 32;
        cfg.embedder_kind = EmbedderKind::Static;
        cfg.scorer.train = TrainConfig { epochs: 3, batch_size: 128, ..Default::default() };
        cfg.matcher.kinds = vec![ClassifierKind::LogisticRegression];
        let model = WymModel::fit(&dataset, &split, cfg);

        let matches: Vec<_> = split
            .test
            .iter()
            .map(|&i| dataset.pairs[i].clone())
            .filter(|p| p.label)
            .take(8)
            .collect();
        assert!(!matches.is_empty());
        let (mean_tokens, mean_units, compression) = mean_readability(&model, &matches);
        assert!(
            mean_units < mean_tokens,
            "units {mean_units} must be fewer than tokens {mean_tokens}"
        );
        assert!(compression > 0.15, "compression {compression}");

        // Each matching record should deduplicate at least one shared term.
        let s = readability(&model, &matches[0]);
        assert!(s.duplicated_terms > 0);
        assert!(s.deduplicated_by_units > 0);
    }
}
