//! End-to-end artifact guarantees: randomized container round trips,
//! the full-model save→load bit-identity contract, error paths a serving
//! process must survive (truncation, corruption, version skew), and the
//! registry's LRU/byte-budget semantics.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use wym_artifact::{
    add_quantized, content_fnv, inspect, load_model, read_quantized, save_model,
    save_model_with_sketch, save_state, Artifact, ArtifactWriter, LoadMode,
};
use wym_core::state::WymModelState;
use wym_core::{WymConfig, WymModel};
use wym_data::{magellan, split::paper_split, EmDataset, SplitIndices};
use wym_embed::{EmbedderKind, QuantizedTable};
use wym_ml::ClassifierKind;
use wym_nn::TrainConfig;
use wym_obs::Manifest;

/// A scratch path unique to this test process and `name`.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("wym-artifact-{}-{name}", std::process::id()))
}

/// One small fitted model shared by every test in this binary (fitting
/// dominates test wall-clock; saving/loading is what's under test).
fn fitted() -> &'static (WymModel, EmDataset, SplitIndices) {
    static MODEL: OnceLock<(WymModel, EmDataset, SplitIndices)> = OnceLock::new();
    MODEL.get_or_init(|| {
        let dataset = magellan::generate_by_name("S-FZ", 42).unwrap().subsample(120, 0);
        let split = paper_split(&dataset, 0);
        let mut cfg = WymConfig::default();
        cfg.embed_dim = 24;
        cfg.embedder_kind = EmbedderKind::Siamese;
        cfg.scorer.train =
            TrainConfig { epochs: 4, batch_size: 128, lr: 2e-3, ..Default::default() };
        cfg.matcher.kinds =
            vec![ClassifierKind::LogisticRegression, ClassifierKind::DecisionTree];
        let model = WymModel::fit(&dataset, &split, cfg);
        (model, dataset, split)
    })
}

fn manifest() -> Manifest {
    Manifest::new("artifact-tests")
        .with_kernel(wym_linalg::kernels::active_name())
        .with_threads(1)
        .with_seed(7)
        .with_config_bytes(b"test config")
        .with_dataset_bytes(b"S-FZ subsample 120")
}

/// Asserts that `loaded` reproduces the shared model's verdicts,
/// probabilities, and impact scores to the bit on the test slice.
fn assert_bit_identical(loaded: &WymModel, tag: &str) {
    let (model, dataset, split) = fitted();
    for &i in split.test.iter().take(25) {
        let pair = &dataset.pairs[i];
        let a = model.explain(pair);
        let b = loaded.explain(pair);
        assert_eq!(a.prediction, b.prediction, "{tag}: verdict of pair {i}");
        assert_eq!(
            a.probability.to_bits(),
            b.probability.to_bits(),
            "{tag}: probability of pair {i}"
        );
        assert_eq!(a.units.len(), b.units.len(), "{tag}: unit count of pair {i}");
        for (ua, ub) in a.units.iter().zip(&b.units) {
            assert_eq!(
                ua.impact.to_bits(),
                ub.impact.to_bits(),
                "{tag}: impact of unit {}/{} in pair {i}",
                ua.left,
                ua.right
            );
        }
    }
}

#[test]
fn saved_model_reloads_bit_identical_under_both_load_modes() {
    let (model, _, _) = fitted();
    let path = scratch("model.wyma");
    let bytes = save_model(&path, model, &manifest()).expect("save");
    assert_eq!(bytes, std::fs::metadata(&path).expect("saved file").len());
    for mode in [LoadMode::Read, LoadMode::Mmap] {
        let loaded = load_model(&path, mode).expect("load");
        assert_eq!(loaded.file_bytes, bytes);
        assert_eq!(loaded.manifest.seed, 7);
        assert_eq!(loaded.manifest.tool, "artifact-tests");
        assert_bit_identical(&loaded.model, &format!("{mode:?}"));
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sketch_section_round_trips_and_is_optional() {
    let (model, dataset, split) = fitted();
    let train_pairs: Vec<_> =
        split.train.iter().take(60).map(|&i| dataset.pairs[i].clone()).collect();
    let baseline = model.sketch_on(&train_pairs);
    assert!(!baseline.is_empty());

    let with = scratch("sketched.wyma");
    let without = scratch("sketchless.wyma");
    save_model_with_sketch(&with, model, &manifest(), Some(&baseline)).expect("save");
    save_model(&without, model, &manifest()).expect("save");

    for mode in [LoadMode::Read, LoadMode::Mmap] {
        let loaded = load_model(&with, mode).expect("load");
        let got = loaded.sketch.as_ref().expect("sketch must survive the round trip");
        assert_eq!(*got, baseline, "{mode:?}");
        // Baseline vs itself is the no-drift fixed point.
        assert!(!baseline.compare(got).tripped);
        assert_bit_identical(&loaded.model, &format!("sketched {mode:?}"));
    }

    // An artifact saved without a sketch (or predating the section) loads
    // with `None` — the section is additive, never required.
    let plain = load_model(&without, LoadMode::Read).expect("load");
    assert!(plain.sketch.is_none());

    // The content fingerprint covers the sketch section but not the
    // manifest: adding a sketch changes it; it matches what inspect folds.
    let a = inspect(&with).expect("inspect");
    let b = inspect(&without).expect("inspect");
    assert_ne!(content_fnv(&a.sections), content_fnv(&b.sections));
    assert!(a.render().contains("drift baseline:"));
    assert!(b.render().contains("drift baseline: none"));

    let _ = std::fs::remove_file(&with);
    let _ = std::fs::remove_file(&without);
}

#[test]
fn model_with_no_tensors_round_trips() {
    // Edge case: a head that promises no network and no projection — the
    // artifact holds only JSON sections, and the loader must not demand a
    // tensor heap. (A `Static` embedder with a parameterless scorer is the
    // real-world shape; here we strip a fitted state down to it.)
    let (model, _, _) = fitted();
    let mut state = WymModelState::from_model(model);
    state.head.scorer_net = None;
    state.head.embedder.kind = EmbedderKind::Static;
    state.head.config.embedder_kind = EmbedderKind::Static;
    state.tensors.clear();
    let path = scratch("headonly.wyma");
    save_state(&path, &state, &manifest()).expect("save head-only state");
    let loaded = load_model(&path, LoadMode::Read).expect("head-only artifact must load");
    assert!(loaded.model.scorer().model().is_none());
    assert!(loaded.model.embedder().projection().is_none());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_artifact_is_an_actionable_error() {
    let (model, _, _) = fitted();
    let path = scratch("trunc.wyma");
    let bytes = save_model(&path, model, &manifest()).expect("save");
    let full = std::fs::read(&path).expect("read back");
    // Cut the file at several depths: inside the prelude, inside a payload,
    // and inside the TOC. Every cut must fail verification with a message
    // that names the file and suggests re-saving.
    for cut in [8, bytes as usize / 2, bytes as usize - 9] {
        std::fs::write(&path, &full[..cut]).expect("write truncated");
        let err = load_model(&path, LoadMode::Read)
            .err()
            .unwrap_or_else(|| panic!("cut at {cut} must fail"))
            .to_string();
        assert!(
            err.contains("corrupt or truncated") && err.contains("--save-model"),
            "cut at {cut}: {err}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn future_schema_version_is_refused_with_upgrade_hint() {
    let (model, _, _) = fitted();
    let path = scratch("future.wyma");
    save_model(&path, model, &manifest()).expect("save");
    let mut bytes = std::fs::read(&path).expect("read back");
    bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &bytes).expect("write future version");
    let err = load_model(&path, LoadMode::Read)
        .err()
        .expect("future schema version must be refused")
        .to_string();
    assert!(err.contains("schema version 99"), "{err}");
    assert!(err.contains("upgrade the tools"), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn registry_evicts_least_recently_used_past_byte_budget() {
    use wym_artifact::ModelRegistry;
    let (model, _, _) = fitted();
    let path = scratch("registry.wyma");
    let bytes = save_model(&path, model, &manifest()).expect("save");

    // Budget for two resident copies, not three.
    let mut reg = ModelRegistry::new(2 * bytes + bytes / 2);
    reg.load("a", &path, LoadMode::Read).expect("a");
    reg.load("b", &path, LoadMode::Read).expect("b");
    assert_eq!(reg.names(), vec!["a", "b"]);
    assert_eq!(reg.resident_bytes(), 2 * bytes);

    // Touch "a" so "b" becomes the LRU victim of the next load.
    assert!(reg.get("a").is_some());
    reg.load("c", &path, LoadMode::Read).expect("c");
    assert_eq!(reg.names(), vec!["a", "c"], "b must be evicted, not a");
    assert!(!reg.contains("b"));

    // A hit never touches the filesystem: delete the backing file and the
    // resident entries must still serve.
    std::fs::remove_file(&path).expect("remove backing file");
    let served = reg.load("a", &path, LoadMode::Read).expect("hit without file");
    assert_bit_identical(&served, "registry hit");
    assert!(reg.manifest("a").is_some());

    // A miss now fails (file is gone) without disturbing residents.
    assert!(reg.load("d", &path, LoadMode::Read).is_err());
    assert_eq!(reg.len(), 2);

    assert!(reg.evict("a"));
    assert!(!reg.evict("a"));
    assert_eq!(reg.names(), vec!["c"]);
}

#[test]
fn single_over_budget_model_still_serves() {
    use wym_artifact::ModelRegistry;
    let (model, _, _) = fitted();
    let path = scratch("overbudget.wyma");
    save_model(&path, model, &manifest()).expect("save");
    let mut reg = ModelRegistry::new(1); // absurdly small budget
    let served = reg.load("only", &path, LoadMode::Read).expect("load");
    assert_bit_identical(&served, "over-budget single");
    assert_eq!(reg.len(), 1, "the most recent model is never evicted");
    let _ = std::fs::remove_file(&path);
}

/// Random i8 rows with per-row scales, shaped like a quantized table.
fn quantized_strategy() -> impl Strategy<Value = (usize, Vec<i8>, Vec<f32>)> {
    (1usize..12, 1usize..20).prop_flat_map(|(dim, rows)| {
        (
            Just(dim),
            prop::collection::vec(any::<i8>(), dim * rows..dim * rows + 1),
            prop::collection::vec(1e-6f32..2.0, rows..rows + 1),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Container fuzz: arbitrary f32 bit patterns (including NaNs,
    /// infinities, and negative zero), arbitrary i8 tensors, and arbitrary
    /// JSON payload bytes all round-trip bit-exactly through a file, under
    /// both load modes.
    #[test]
    fn container_round_trips_arbitrary_sections(
        f32_bits in prop::collection::vec(any::<u32>(), 1..300),
        i8_data in prop::collection::vec(any::<i8>(), 1..200),
        json in "[ -~]{0,60}",
        case in any::<u32>(),
    ) {
        let floats: Vec<f32> = f32_bits.iter().map(|&b| f32::from_bits(b)).collect();
        let mut w = ArtifactWriter::new();
        w.add_json("meta", json.as_bytes());
        w.add_f32("weights", 1, floats.len(), &floats);
        w.add_i8("codes", 1, i8_data.len(), &i8_data);
        let path = scratch(&format!("prop-{case}.wyma"));
        w.write_to(&path).expect("write");
        for mode in [LoadMode::Read, LoadMode::Mmap] {
            let a = Artifact::open(&path, mode).expect("open");
            prop_assert_eq!(a.json_payload("meta").expect("meta"), json.as_bytes());
            let (_, cols, got) = a.tensor_f32("weights").expect("weights");
            prop_assert_eq!(cols, floats.len());
            let got_bits: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&got_bits, &f32_bits, "f32 payload must be bit-exact");
            let (_, _, codes) = a.tensor_i8("codes").expect("codes");
            prop_assert_eq!(&codes, &i8_data);
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Quantized embedding tables ride along bit-exact: codes and scales
    /// are adopted verbatim on load, never re-quantized.
    #[test]
    fn quantized_table_round_trips_verbatim(
        (dim, codes, scales) in quantized_strategy(),
        case in any::<u32>(),
    ) {
        let table = QuantizedTable::from_raw_parts(dim, codes, scales);
        let mut w = ArtifactWriter::new();
        add_quantized(&mut w, "ann", &table);
        let path = scratch(&format!("quant-{case}.wyma"));
        w.write_to(&path).expect("write");
        let a = Artifact::open(&path, LoadMode::Read).expect("open");
        let back = read_quantized(&a, "ann").expect("read_quantized");
        prop_assert_eq!(back.len(), table.len());
        prop_assert_eq!(back.dim(), table.dim());
        let (da, ca, sa) = table.raw_parts();
        let (db, cb, sb) = back.raw_parts();
        prop_assert_eq!(da, db);
        prop_assert_eq!(ca, cb);
        let sa_bits: Vec<u32> = sa.iter().map(|v| v.to_bits()).collect();
        let sb_bits: Vec<u32> = sb.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(sa_bits, sb_bits, "scales must be bit-exact");
        let _ = std::fs::remove_file(&path);
    }

    /// Randomized model perturbations: scribbling over any single byte of a
    /// saved model's payload area must either be caught by a checksum or
    /// land in padding (load still succeeds, bit-identical) — never a
    /// silently different model.
    #[test]
    fn single_byte_corruption_never_loads_silently(
        offset_seed in any::<u64>(),
        xor in 1u8..255,
    ) {
        let (model, _, _) = fitted();
        let path = scratch(&format!("flip-{offset_seed}-{xor}.wyma"));
        save_model(&path, model, &manifest()).expect("save");
        let clean = inspect(&path).expect("inspect clean");
        let mut bytes = std::fs::read(&path).expect("read back");
        let offset = 24 + (offset_seed as usize) % (bytes.len() - 24);
        bytes[offset] ^= xor;
        std::fs::write(&path, &bytes).expect("write corrupted");
        match load_model(&path, LoadMode::Read) {
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(
                    msg.contains("corrupt or truncated"),
                    "byte {offset}: error must be actionable: {msg}"
                );
            }
            Ok(_) => {
                // The flipped byte must have been alignment padding (or the
                // redundant TOC copy of a value re-derivable from it):
                // every section payload must still checksum identically.
                let dirty = inspect(&path).expect("inspect after padding flip");
                for (a, b) in clean.sections.iter().zip(&dirty.sections) {
                    prop_assert_eq!(a.fnv, b.fnv, "byte {} changed section {}", offset, &a.name);
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
