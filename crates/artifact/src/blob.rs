//! File-backed byte blobs: buffered read or memory map.
//!
//! The artifact loader needs the file's bytes either way; the two paths
//! trade copy cost against page-fault latency:
//!
//! * [`LoadMode::Read`] — `std::fs::read` into an owned `Vec<u8>`. One full
//!   copy up front, no page faults later, works everywhere.
//! * [`LoadMode::Mmap`] — `mmap(2)` the file read-only and let the OS page
//!   it in on demand. Tensor sections are page-aligned inside the artifact
//!   (see [`crate::format::TENSOR_ALIGN`]), so a mapped tensor payload can
//!   be byte-cast to `&[f32]` without copying. Unix-only; on other
//!   platforms (and on empty files, which `mmap` rejects) it silently falls
//!   back to the read path — the bytes, and therefore every downstream
//!   checksum and model bit, are identical either way.
//!
//! The mapping is private and read-only; the region is unmapped on drop.
//! No external crate is involved: the binding is two `extern "C"`
//! declarations against libc, which every unix target links anyway.

use std::io;
use std::path::Path;

/// How to get an artifact's bytes off disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Buffered read into an owned buffer.
    Read,
    /// Memory-map (unix); falls back to [`LoadMode::Read`] elsewhere.
    Mmap,
}

/// An immutable byte blob, owned or mapped. Dereferences to `&[u8]`.
pub struct Blob {
    repr: Repr,
}

enum Repr {
    Owned(Vec<u8>),
    #[cfg(unix)]
    Mapped(MapRegion),
}

impl Blob {
    /// Loads `path` with the requested mode.
    pub fn open(path: &Path, mode: LoadMode) -> io::Result<Blob> {
        match mode {
            LoadMode::Read => Ok(Blob { repr: Repr::Owned(std::fs::read(path)?) }),
            LoadMode::Mmap => Self::open_mapped(path),
        }
    }

    /// True when the blob is a live memory map (telemetry only).
    pub fn is_mapped(&self) -> bool {
        match &self.repr {
            Repr::Owned(_) => false,
            #[cfg(unix)]
            Repr::Mapped(_) => true,
        }
    }

    #[cfg(unix)]
    fn open_mapped(path: &Path) -> io::Result<Blob> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            // mmap(2) rejects zero-length mappings; an empty artifact is
            // rejected later by the format layer either way.
            return Ok(Blob { repr: Repr::Owned(Vec::new()) });
        }
        // SAFETY: we request a fresh private read-only mapping of `len`
        // bytes backed by an open fd; on success the kernel guarantees
        // `[ptr, ptr + len)` stays valid until `munmap`, which only the
        // `MapRegion` destructor issues.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(io::Error::other(format!(
                "mmap of {} ({len} bytes) failed",
                path.display()
            )));
        }
        Ok(Blob { repr: Repr::Mapped(MapRegion { ptr: ptr.cast::<u8>(), len }) })
    }

    #[cfg(not(unix))]
    fn open_mapped(path: &Path) -> io::Result<Blob> {
        Self::open(path, LoadMode::Read)
    }
}

impl std::ops::Deref for Blob {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.repr {
            Repr::Owned(v) => v,
            #[cfg(unix)]
            // SAFETY: the region is mapped readable for `len` bytes and
            // stays mapped for the lifetime of `self` (unmapped in Drop).
            Repr::Mapped(m) => unsafe { std::slice::from_raw_parts(m.ptr, m.len) },
        }
    }
}

#[cfg(unix)]
struct MapRegion {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is immutable (PROT_READ, MAP_PRIVATE) and owned
// exclusively by this region, so sharing references across threads is as
// safe as sharing a `&[u8]`.
#[cfg(unix)]
unsafe impl Send for MapRegion {}
#[cfg(unix)]
unsafe impl Sync for MapRegion {}

#[cfg(unix)]
impl Drop for MapRegion {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` came from a successful mmap and are unmapped
        // exactly once, here.
        unsafe {
            let _ = sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
        }
    }
}

/// Minimal libc surface. Kept private: the rest of the crate sees only
/// `Blob`.
#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::os::raw::c_int;

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("wym_blob_{name}_{}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn read_and_mmap_see_identical_bytes() {
        let path = tmp_file("ident", b"hello artifact");
        let read = Blob::open(&path, LoadMode::Read).unwrap();
        let mapped = Blob::open(&path, LoadMode::Mmap).unwrap();
        assert_eq!(&*read, &*mapped);
        assert!(!read.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_of_empty_file_falls_back_to_owned() {
        let path = tmp_file("empty", b"");
        let blob = Blob::open(&path, LoadMode::Mmap).unwrap();
        assert!(blob.is_empty());
        assert!(!blob.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = std::env::temp_dir().join("wym_blob_definitely_missing");
        assert!(Blob::open(&path, LoadMode::Read).is_err());
        assert!(Blob::open(&path, LoadMode::Mmap).is_err());
    }

    #[cfg(unix)]
    #[test]
    fn mmap_is_actually_mapped_on_unix() {
        let path = tmp_file("mapped", &[7u8; 9000]);
        let blob = Blob::open(&path, LoadMode::Mmap).unwrap();
        assert!(blob.is_mapped());
        assert_eq!(blob.len(), 9000);
        assert!(blob.iter().all(|&b| b == 7));
        std::fs::remove_file(&path).ok();
    }
}
