//! The WYMA container: a sectioned, checksummed, schema-versioned binary
//! file.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset 0   magic            b"WYMA"
//! offset 4   schema_version   u32
//! offset 8   toc_offset       u64   absolute offset of the TOC
//! offset 16  toc_len          u64   TOC bytes (incl. trailing TOC fnv)
//! offset 24  …section payloads…     (JSON 8-aligned, tensors 4096-aligned)
//! toc_offset TOC                    section table, see below
//! ```
//!
//! The TOC lives at the *end* of the file so the writer can stream payloads
//! without back-patching offsets; the 24-byte prelude is the only field
//! patched after the fact. TOC encoding: `u32` section count, then per
//! section `name_len:u16, name (utf-8), kind:u8, offset:u64, len:u64,
//! rows:u64, cols:u64, fnv:u64`, then one trailing `u64` — the FNV-1a of
//! all preceding TOC bytes, so a corrupted table is detected before any
//! offset in it is trusted. Per-section `fnv` covers that section's payload
//! bytes; [`Artifact::open`] verifies every one on load.
//!
//! Alignment rules: JSON sections are 8-aligned (cheap); `f32`/`i8` tensor
//! sections are [`TENSOR_ALIGN`]-aligned (one page), so inside a
//! memory-mapped artifact a tensor payload is page-aligned and byte-casts
//! to `&[f32]` without copying. Padding bytes are zero and excluded from
//! checksums.
//!
//! Forward compatibility: readers refuse files whose `schema_version` is
//! newer than [`ARTIFACT_SCHEMA_VERSION`] (fields they cannot know about
//! may have moved), and tolerate *unknown section names* within a known
//! version — adding a new optional section is a non-breaking change;
//! renaming, re-encoding, or removing one bumps the version.

use crate::blob::{Blob, LoadMode};
use crate::ArtifactError;
use std::path::Path;
use wym_obs::manifest::fnv1a;

/// File magic, the first four bytes of every artifact.
pub const MAGIC: [u8; 4] = *b"WYMA";

/// The container schema version this crate writes. History: 1 — initial
/// (prelude + end-of-file TOC + manifest/head/tensor/quant sections).
pub const ARTIFACT_SCHEMA_VERSION: u32 = 1;

/// Alignment of tensor payloads (one page, so mapped tensors byte-cast).
pub const TENSOR_ALIGN: usize = 4096;

/// Alignment of JSON payloads.
const JSON_ALIGN: usize = 8;

/// Prelude bytes before the first payload.
const PRELUDE: usize = 24;

/// Payload encoding of a section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// UTF-8 JSON text.
    Json,
    /// Row-major little-endian `f32`.
    F32,
    /// Row-major `i8`.
    I8,
}

impl SectionKind {
    fn code(self) -> u8 {
        match self {
            SectionKind::Json => 0,
            SectionKind::F32 => 1,
            SectionKind::I8 => 2,
        }
    }

    fn from_code(code: u8) -> Option<SectionKind> {
        match code {
            0 => Some(SectionKind::Json),
            1 => Some(SectionKind::F32),
            2 => Some(SectionKind::I8),
            _ => None,
        }
    }

    /// Human-readable kind name (`model inspect` output).
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Json => "json",
            SectionKind::F32 => "f32",
            SectionKind::I8 => "i8",
        }
    }
}

/// One TOC entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Section name, e.g. `head` or `tensor:scorer.layer0.w`.
    pub name: String,
    /// Payload encoding.
    pub kind: SectionKind,
    /// Absolute payload offset in the file.
    pub offset: u64,
    /// Payload bytes.
    pub len: u64,
    /// Rows (0 for JSON sections).
    pub rows: u64,
    /// Columns (0 for JSON sections).
    pub cols: u64,
    /// FNV-1a of the payload bytes.
    pub fnv: u64,
}

/// Streaming writer: append sections, then [`ArtifactWriter::finish`].
pub struct ArtifactWriter {
    buf: Vec<u8>,
    sections: Vec<Section>,
}

impl Default for ArtifactWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ArtifactWriter {
    /// An empty artifact at the current schema version.
    pub fn new() -> ArtifactWriter {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&ARTIFACT_SCHEMA_VERSION.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]); // toc_offset + toc_len, patched in finish
        debug_assert_eq!(buf.len(), PRELUDE);
        ArtifactWriter { buf, sections: Vec::new() }
    }

    fn pad_to(&mut self, align: usize) {
        let rem = self.buf.len() % align;
        if rem != 0 {
            self.buf.resize(self.buf.len() + (align - rem), 0);
        }
    }

    fn push_section(
        &mut self,
        name: &str,
        kind: SectionKind,
        rows: u64,
        cols: u64,
        payload: &[u8],
    ) {
        assert!(
            self.sections.iter().all(|s| s.name != name),
            "duplicate artifact section `{name}`"
        );
        assert!(name.len() <= u16::MAX as usize, "section name too long");
        self.pad_to(match kind {
            SectionKind::Json => JSON_ALIGN,
            SectionKind::F32 | SectionKind::I8 => TENSOR_ALIGN,
        });
        let offset = self.buf.len() as u64;
        self.buf.extend_from_slice(payload);
        self.sections.push(Section {
            name: name.to_string(),
            kind,
            offset,
            len: payload.len() as u64,
            rows,
            cols,
            fnv: fnv1a(payload),
        });
    }

    /// Appends a JSON section.
    pub fn add_json(&mut self, name: &str, json: &[u8]) {
        self.push_section(name, SectionKind::Json, 0, 0, json);
    }

    /// Appends a page-aligned `rows × cols` little-endian `f32` tensor.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols` or the name repeats.
    pub fn add_f32(&mut self, name: &str, rows: usize, cols: usize, data: &[f32]) {
        assert_eq!(data.len(), rows * cols, "tensor `{name}` shape/data mismatch");
        let mut payload = Vec::with_capacity(data.len() * 4);
        for v in data {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        self.push_section(name, SectionKind::F32, rows as u64, cols as u64, &payload);
    }

    /// Appends a page-aligned `rows × cols` `i8` tensor.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols` or the name repeats.
    pub fn add_i8(&mut self, name: &str, rows: usize, cols: usize, data: &[i8]) {
        assert_eq!(data.len(), rows * cols, "tensor `{name}` shape/data mismatch");
        let payload: Vec<u8> = data.iter().map(|&v| v as u8).collect();
        self.push_section(name, SectionKind::I8, rows as u64, cols as u64, &payload);
    }

    /// Seals the container: appends the TOC and patches the prelude.
    pub fn finish(mut self) -> Vec<u8> {
        self.pad_to(JSON_ALIGN);
        let toc_offset = self.buf.len() as u64;
        let mut toc = Vec::new();
        toc.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for s in &self.sections {
            toc.extend_from_slice(&(s.name.len() as u16).to_le_bytes());
            toc.extend_from_slice(s.name.as_bytes());
            toc.push(s.kind.code());
            for v in [s.offset, s.len, s.rows, s.cols, s.fnv] {
                toc.extend_from_slice(&v.to_le_bytes());
            }
        }
        let toc_fnv = fnv1a(&toc);
        toc.extend_from_slice(&toc_fnv.to_le_bytes());
        self.buf.extend_from_slice(&toc);
        self.buf[8..16].copy_from_slice(&toc_offset.to_le_bytes());
        self.buf[16..24].copy_from_slice(&(toc.len() as u64).to_le_bytes());
        self.buf
    }

    /// [`ArtifactWriter::finish`] + write to `path`. Returns file bytes.
    pub fn write_to(self, path: &Path) -> Result<u64, ArtifactError> {
        let bytes = self.finish();
        std::fs::write(path, &bytes)
            .map_err(|e| ArtifactError::io(&format!("writing {}", path.display()), e))?;
        Ok(bytes.len() as u64)
    }
}

/// An opened, checksum-verified artifact.
pub struct Artifact {
    blob: Blob,
    sections: Vec<Section>,
    schema_version: u32,
}

fn corrupt(path: &Path, what: &str) -> ArtifactError {
    ArtifactError::format(format!(
        "{}: {what}; the artifact is corrupt or truncated — re-save it with \
         `wym train --save-model`",
        path.display()
    ))
}

impl Artifact {
    /// Opens and fully verifies `path`: magic, schema version, TOC
    /// checksum, section bounds, and every section's payload checksum.
    pub fn open(path: &Path, mode: LoadMode) -> Result<Artifact, ArtifactError> {
        let blob = Blob::open(path, mode)
            .map_err(|e| ArtifactError::io(&format!("opening {}", path.display()), e))?;
        let data: &[u8] = &blob;
        if data.len() < PRELUDE {
            return Err(corrupt(path, &format!("file is {} bytes, shorter than the {PRELUDE}-byte prelude", data.len())));
        }
        if data[..4] != MAGIC {
            return Err(ArtifactError::format(format!(
                "{}: not a WYM model artifact (magic {:02x?}, expected {:02x?} = \"WYMA\")",
                path.display(),
                &data[..4],
                MAGIC
            )));
        }
        let schema_version = u32::from_le_bytes(data[4..8].try_into().unwrap());
        if schema_version == 0 || schema_version > ARTIFACT_SCHEMA_VERSION {
            return Err(ArtifactError::format(format!(
                "{}: artifact schema version {schema_version} is not supported (this \
                 build reads versions 1..={ARTIFACT_SCHEMA_VERSION}); re-save the model \
                 with this version of the tools, or upgrade the tools to read it",
                path.display()
            )));
        }
        let toc_offset = u64::from_le_bytes(data[8..16].try_into().unwrap()) as usize;
        let toc_len = u64::from_le_bytes(data[16..24].try_into().unwrap()) as usize;
        let toc_end = toc_offset
            .checked_add(toc_len)
            .filter(|&end| end <= data.len() && toc_offset >= PRELUDE && toc_len >= 12)
            .ok_or_else(|| {
                corrupt(path, &format!("TOC range {toc_offset}+{toc_len} exceeds the {}-byte file", data.len()))
            })?;
        let toc = &data[toc_offset..toc_end];
        let (body, tail) = toc.split_at(toc.len() - 8);
        let stored_fnv = u64::from_le_bytes(tail.try_into().unwrap());
        if fnv1a(body) != stored_fnv {
            return Err(corrupt(path, "TOC checksum mismatch"));
        }
        let sections = parse_toc(body).map_err(|what| corrupt(path, &what))?;
        for s in &sections {
            let end = s
                .offset
                .checked_add(s.len)
                .filter(|&end| end <= data.len() as u64)
                .ok_or_else(|| {
                    corrupt(path, &format!("section `{}` range {}+{} exceeds the {}-byte file", s.name, s.offset, s.len, data.len()))
                })?;
            let payload = &data[s.offset as usize..end as usize];
            if fnv1a(payload) != s.fnv {
                return Err(corrupt(path, &format!("section `{}` payload checksum mismatch", s.name)));
            }
            let elem = match s.kind {
                SectionKind::Json => continue,
                SectionKind::F32 => 4,
                SectionKind::I8 => 1,
            };
            if s.rows * s.cols * elem != s.len {
                return Err(corrupt(path, &format!("section `{}` claims shape {}×{} but holds {} bytes", s.name, s.rows, s.cols, s.len)));
            }
        }
        Ok(Artifact { blob, sections, schema_version })
    }

    /// The container schema version of the opened file.
    pub fn schema_version(&self) -> u32 {
        self.schema_version
    }

    /// Total file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.blob.len() as u64
    }

    /// True when the file is memory-mapped rather than read into memory.
    pub fn is_mapped(&self) -> bool {
        self.blob.is_mapped()
    }

    /// All sections, in file order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Looks a section up by name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    fn require(&self, name: &str, kind: SectionKind) -> Result<&Section, ArtifactError> {
        let s = self.section(name).ok_or_else(|| {
            ArtifactError::format(format!(
                "artifact has no `{name}` section (sections: {}); it was written by an \
                 incompatible tool or is not a model artifact",
                self.sections.iter().map(|s| s.name.as_str()).collect::<Vec<_>>().join(", ")
            ))
        })?;
        if s.kind != kind {
            return Err(ArtifactError::format(format!(
                "section `{name}` is {}-encoded, expected {}",
                s.kind.name(),
                kind.name()
            )));
        }
        Ok(s)
    }

    /// Raw payload bytes of a section (zero-copy view into the blob).
    pub fn payload(&self, s: &Section) -> &[u8] {
        &self.blob[s.offset as usize..(s.offset + s.len) as usize]
    }

    /// The payload of a JSON section.
    pub fn json_payload(&self, name: &str) -> Result<&[u8], ArtifactError> {
        Ok(self.payload(self.require(name, SectionKind::Json)?))
    }

    /// Decodes an `f32` tensor section to `(rows, cols, data)`.
    ///
    /// On little-endian targets where the payload happens to be 4-aligned
    /// in memory (always true for a mapped blob, since tensor payloads are
    /// page-aligned in the file) this is a straight `memcpy`; otherwise a
    /// per-element decode. Either way the bits are identical.
    pub fn tensor_f32(&self, name: &str) -> Result<(usize, usize, Vec<f32>), ArtifactError> {
        let s = self.require(name, SectionKind::F32)?;
        Ok((s.rows as usize, s.cols as usize, decode_f32(self.payload(s))))
    }

    /// Decodes an `i8` tensor section to `(rows, cols, data)`.
    pub fn tensor_i8(&self, name: &str) -> Result<(usize, usize, Vec<i8>), ArtifactError> {
        let s = self.require(name, SectionKind::I8)?;
        let data = self.payload(s).iter().map(|&b| b as i8).collect();
        Ok((s.rows as usize, s.cols as usize, data))
    }
}

fn parse_toc(body: &[u8]) -> Result<Vec<Section>, String> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
        let end = pos.checked_add(n).filter(|&e| e <= body.len()).ok_or("TOC truncated")?;
        let out = &body[*pos..end];
        *pos = end;
        Ok(out)
    };
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
    let mut sections = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
        let name = std::str::from_utf8(take(&mut pos, name_len)?)
            .map_err(|_| "section name is not UTF-8".to_string())?
            .to_string();
        let code = take(&mut pos, 1)?[0];
        let kind = SectionKind::from_code(code)
            .ok_or_else(|| format!("section `{name}` has unknown kind code {code}"))?;
        let mut vals = [0u64; 5];
        for v in &mut vals {
            *v = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        }
        let [offset, len, rows, cols, fnv] = vals;
        sections.push(Section { name, kind, offset, len, rows, cols, fnv });
    }
    if pos != body.len() {
        return Err("TOC has trailing bytes".to_string());
    }
    Ok(sections)
}

/// Little-endian `f32` decode with an aligned fast path.
fn decode_f32(bytes: &[u8]) -> Vec<f32> {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: every 4-byte bit pattern is a valid f32; align_to only
        // reinterprets the aligned middle of the byte slice.
        let (pre, mid, post) = unsafe { bytes.align_to::<f32>() };
        if pre.is_empty() && post.is_empty() {
            return mid.to_vec();
        }
    }
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("wym_fmt_{name}_{}.wym", std::process::id()))
    }

    fn sample() -> ArtifactWriter {
        let mut w = ArtifactWriter::new();
        w.add_json("manifest", br#"{"manifest": {"tool": "test"}}"#);
        w.add_f32("tensor:a", 2, 3, &[1.0, -2.5, 3.25, 0.0, f32::MIN_POSITIVE, -0.0]);
        w.add_i8("quant:codes", 1, 4, &[-127, 0, 64, 127]);
        w
    }

    #[test]
    fn round_trip_preserves_sections_and_bits() {
        let path = tmp("rt");
        sample().write_to(&path).unwrap();
        for mode in [LoadMode::Read, LoadMode::Mmap] {
            let a = Artifact::open(&path, mode).unwrap();
            assert_eq!(a.schema_version(), ARTIFACT_SCHEMA_VERSION);
            assert_eq!(a.sections().len(), 3);
            let (r, c, data) = a.tensor_f32("tensor:a").unwrap();
            assert_eq!((r, c), (2, 3));
            assert_eq!(data[1], -2.5);
            assert_eq!(data[4].to_bits(), f32::MIN_POSITIVE.to_bits());
            assert_eq!(data[5].to_bits(), (-0.0f32).to_bits());
            let (_, _, q) = a.tensor_i8("quant:codes").unwrap();
            assert_eq!(q, vec![-127, 0, 64, 127]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tensors_are_page_aligned() {
        let path = tmp("align");
        sample().write_to(&path).unwrap();
        let a = Artifact::open(&path, LoadMode::Read).unwrap();
        for s in a.sections() {
            if s.kind != SectionKind::Json {
                assert_eq!(s.offset as usize % TENSOR_ALIGN, 0, "section {}", s.name);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected_with_a_clear_message() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOPE----------------------------").unwrap();
        let err = Artifact::open(&path, LoadMode::Read).err().expect("open must fail").to_string();
        assert!(err.contains("not a WYM model artifact"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn future_schema_version_is_refused() {
        let path = tmp("vers");
        let mut bytes = sample().finish();
        bytes[4..8].copy_from_slice(&(ARTIFACT_SCHEMA_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = Artifact::open(&path, LoadMode::Read).err().expect("open must fail").to_string();
        assert!(err.contains("schema version") && err.contains("upgrade"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let full = sample().finish();
        let path = tmp("trunc");
        for keep in [0, 3, PRELUDE - 1, PRELUDE + 10, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..keep]).unwrap();
            let err = Artifact::open(&path, LoadMode::Read).err().expect("open must fail").to_string();
            assert!(
                err.contains("corrupt or truncated") || err.contains("not a WYM"),
                "keep={keep}: {err}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn payload_bitflip_is_detected() {
        let mut bytes = sample().finish();
        let path = tmp("flip");
        // Flip one bit inside the tensor payload (page-aligned at 4096).
        bytes[4096 + 5] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = Artifact::open(&path, LoadMode::Read).err().expect("open must fail").to_string();
        assert!(err.contains("checksum mismatch"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "duplicate artifact section")]
    fn duplicate_section_names_panic() {
        let mut w = ArtifactWriter::new();
        w.add_json("head", b"{}");
        w.add_json("head", b"{}");
    }

    #[test]
    fn unknown_sections_are_tolerated() {
        let mut w = sample();
        w.add_json("future:extension", b"{\"x\": 1}");
        let path = tmp("unk");
        w.write_to(&path).unwrap();
        let a = Artifact::open(&path, LoadMode::Read).unwrap();
        assert!(a.section("future:extension").is_some());
        std::fs::remove_file(&path).ok();
    }
}
