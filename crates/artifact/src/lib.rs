//! Versioned binary model artifacts — the train / serve split.
//!
//! The paper's pipeline trains and classifies in one process; a serving
//! system needs the two separated by a durable, fast-loading, *provenanced*
//! model file. This crate provides that file and the machinery around it:
//!
//! * [`mod@format`] — the WYMA container: magic + schema version, an
//!   end-of-file TOC, per-section FNV-1a checksums, JSON sections for the
//!   small irregular state, and page-aligned little-endian `f32`/`i8`
//!   tensor sections that byte-cast straight out of a memory map.
//! * [`blob`] — the two load paths, buffered [`LoadMode::Read`] and
//!   [`LoadMode::Mmap`] (`mmap(2)` via a two-function libc binding; no
//!   external crate).
//! * [`model`] — [`save_model`] / [`load_model`] bridging
//!   [`wym_core::WymModelState`] to the container, plus quantized-table
//!   sections for blocking-layer embeddings.
//! * [`registry`] — [`ModelRegistry`]: several models resident at once
//!   (per-dataset / per-tenant) behind an LRU with byte-budget eviction.
//! * [`mod@inspect`] — [`inspect()`] / [`diff`]
//!   powering the `wym model inspect` / `wym model diff` subcommands.
//!
//! **Determinism contract.** Saving and loading is pure data movement: the
//! head round-trips through the workspace's shortest-exact JSON writer and
//! tensors are copied bit-for-bit, so a reloaded model produces verdicts,
//! impact scores, and `score_checksum` identical to the in-memory model —
//! for either load mode, any `WYM_KERNEL` variant, and any thread count.
//! The smoke gate (`run_experiments.sh --smoke`) and the round-trip
//! proptests in this crate enforce exactly that.
//!
//! **Provenance.** Every artifact embeds a [`wym_obs::Manifest`] (git sha,
//! kernel, threads, seed, config/dataset FNV fingerprints) in its header
//! section, so any artifact can be traced to the run that produced it and
//! two artifacts can be compared field-by-field with `wym model diff`.

pub mod blob;
pub mod format;
pub mod inspect;
pub mod model;
pub mod registry;

pub use blob::{Blob, LoadMode};
pub use format::{Artifact, ArtifactWriter, Section, SectionKind, ARTIFACT_SCHEMA_VERSION};
pub use inspect::{content_fnv, diff, inspect, ArtifactInfo};
pub use model::{
    add_quantized, load_model, load_state, read_quantized, read_sketch, save_model,
    save_model_with_sketch, save_state, save_state_with_sketch, LoadedModel,
};
pub use registry::ModelRegistry;

/// Errors of the artifact layer. Every message is self-contained and names
/// the file plus the recovery action where one exists.
#[derive(Debug)]
pub enum ArtifactError {
    /// An underlying filesystem error, with context.
    Io {
        /// What was being attempted (e.g. `opening results/model.wym`).
        context: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// The file's contents violate the format (bad magic, unsupported
    /// schema version, checksum mismatch, missing section, bad shape …).
    Format(String),
}

impl ArtifactError {
    pub(crate) fn io(context: &str, source: std::io::Error) -> ArtifactError {
        ArtifactError::Io { context: context.to_string(), source }
    }

    pub(crate) fn format(msg: String) -> ArtifactError {
        ArtifactError::Format(msg)
    }
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io { context, source } => write!(f, "{context}: {source}"),
            ArtifactError::Format(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io { source, .. } => Some(source),
            ArtifactError::Format(_) => None,
        }
    }
}
