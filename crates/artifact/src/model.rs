//! Model ⇄ artifact binding: the section schema of a saved [`WymModel`].
//!
//! A model artifact holds four kinds of sections:
//!
//! | section               | kind  | contents                                  |
//! |-----------------------|-------|-------------------------------------------|
//! | `manifest`            | json  | [`wym_obs::Manifest`] provenance header   |
//! | `head`                | json  | [`WymModelHead`]: configs, tokenizer, pool |
//! | `tensor:<name>`       | f32   | one dense tensor of [`WymModelState`]     |
//! | `<prefix>:codes/scales` | i8/f32 | optional quantized embedding tables   |
//!
//! The JSON head round-trips bit-exactly (the vendored writer prints floats
//! shortest-exact), tensors are raw little-endian bits, and nothing is
//! recomputed on load — which is what makes the saved→loaded equality
//! contract (`score_checksum` and verdict bit-identity) hold by
//! construction rather than by tolerance.

use crate::format::{Artifact, ArtifactWriter};
use crate::{ArtifactError, LoadMode};
use std::path::Path;
use wym_core::pipeline::WymModel;
use wym_core::state::{NamedTensor, WymModelHead, WymModelState};
use wym_embed::QuantizedTable;
use wym_linalg::Matrix;
use wym_obs::{Json, Manifest, ModelSketch};

/// Section name of the provenance manifest.
pub const SECTION_MANIFEST: &str = "manifest";
/// Section name of the model head.
pub const SECTION_HEAD: &str = "head";
/// Section name of the train-time drift baseline sketch (optional).
pub const SECTION_SKETCH: &str = "sketch";
/// Prefix of model tensor sections.
pub const TENSOR_PREFIX: &str = "tensor:";

/// A model loaded back from an artifact, with its provenance.
pub struct LoadedModel {
    /// The reassembled model.
    pub model: WymModel,
    /// The provenance header the artifact was saved with.
    pub manifest: Manifest,
    /// The train-time drift baseline, when the artifact carries one.
    pub sketch: Option<ModelSketch>,
    /// Fold of the per-section payload checksums (manifest excluded) —
    /// the model-content fingerprint stamped into audit records.
    pub content_fnv: u64,
    /// Artifact size on disk.
    pub file_bytes: u64,
    /// True when the artifact was memory-mapped rather than read.
    pub mapped: bool,
}

/// Saves a fitted model (with its provenance manifest) to `path`.
/// Returns the artifact size in bytes.
pub fn save_model(
    path: &Path,
    model: &WymModel,
    manifest: &Manifest,
) -> Result<u64, ArtifactError> {
    save_model_with_sketch(path, model, manifest, None)
}

/// Saves a fitted model together with an optional train-time drift
/// baseline sketch (see [`wym_obs::sketch`]). See [`save_model`].
pub fn save_model_with_sketch(
    path: &Path,
    model: &WymModel,
    manifest: &Manifest,
    sketch: Option<&ModelSketch>,
) -> Result<u64, ArtifactError> {
    save_state_with_sketch(path, &WymModelState::from_model(model), manifest, sketch)
}

/// Saves an already-split model state. See [`save_model`].
pub fn save_state(
    path: &Path,
    state: &WymModelState,
    manifest: &Manifest,
) -> Result<u64, ArtifactError> {
    save_state_with_sketch(path, state, manifest, None)
}

/// Saves an already-split model state with an optional drift baseline.
pub fn save_state_with_sketch(
    path: &Path,
    state: &WymModelState,
    manifest: &Manifest,
    sketch: Option<&ModelSketch>,
) -> Result<u64, ArtifactError> {
    let _span = wym_obs::span("artifact_save");
    let mut w = ArtifactWriter::new();
    let manifest_json = Json::obj(vec![("manifest", manifest.to_json())]).pretty();
    w.add_json(SECTION_MANIFEST, manifest_json.as_bytes());
    let head = serde_json::to_vec(&state.head)
        .map_err(|e| ArtifactError::format(format!("serializing model head: {e}")))?;
    w.add_json(SECTION_HEAD, &head);
    if let Some(sk) = sketch {
        w.add_json(SECTION_SKETCH, sk.to_json().pretty().as_bytes());
    }
    for t in &state.tensors {
        w.add_f32(
            &format!("{TENSOR_PREFIX}{}", t.name),
            t.data.rows(),
            t.data.cols(),
            t.data.as_slice(),
        );
    }
    let bytes = w.write_to(path)?;
    wym_obs::counter_add("artifact.saves", 1);
    wym_obs::gauge_set("artifact.saved_bytes", bytes as f64);
    Ok(bytes)
}

/// Reads the drift baseline sketch out of an opened artifact, `None` when
/// the artifact predates (or was saved without) one.
pub fn read_sketch(artifact: &Artifact) -> Result<Option<ModelSketch>, ArtifactError> {
    if !artifact.sections().iter().any(|s| s.name == SECTION_SKETCH) {
        return Ok(None);
    }
    let bytes = artifact.json_payload(SECTION_SKETCH)?;
    let text = std::str::from_utf8(bytes)
        .map_err(|_| ArtifactError::format("sketch section is not UTF-8".to_string()))?;
    let json = wym_obs::json::parse(text)
        .map_err(|e| ArtifactError::format(format!("sketch section does not parse: {e}")))?;
    ModelSketch::from_json(&json)
        .map(Some)
        .map_err(|e| ArtifactError::format(format!("sketch section is malformed: {e}")))
}

/// Reads the provenance manifest out of an opened artifact.
pub fn read_manifest(artifact: &Artifact) -> Result<Manifest, ArtifactError> {
    let bytes = artifact.json_payload(SECTION_MANIFEST)?;
    let text = std::str::from_utf8(bytes)
        .map_err(|_| ArtifactError::format("manifest section is not UTF-8".to_string()))?;
    let json = wym_obs::json::parse(text)
        .map_err(|e| ArtifactError::format(format!("manifest section does not parse: {e}")))?;
    Manifest::from_file_json(&json).ok_or_else(|| {
        ArtifactError::format("manifest section has no `manifest` object".to_string())
    })
}

/// Reassembles the head + tensors of an opened artifact into a
/// [`WymModelState`].
pub fn load_state(artifact: &Artifact) -> Result<WymModelState, ArtifactError> {
    let head_bytes = artifact.json_payload(SECTION_HEAD)?;
    let head: WymModelHead = serde_json::from_slice(head_bytes)
        .map_err(|e| ArtifactError::format(format!("model head is malformed: {e}")))?;
    let mut tensors = Vec::new();
    for s in artifact.sections() {
        if let Some(name) = s.name.strip_prefix(TENSOR_PREFIX) {
            let (rows, cols, data) = artifact.tensor_f32(&s.name)?;
            tensors.push(NamedTensor {
                name: name.to_string(),
                data: Matrix::from_vec(rows, cols, data),
            });
        }
    }
    Ok(WymModelState { head, tensors })
}

/// Opens `path`, verifies it, and reassembles the model it holds.
pub fn load_model(path: &Path, mode: LoadMode) -> Result<LoadedModel, ArtifactError> {
    let _span = wym_obs::span("artifact_load");
    let artifact = Artifact::open(path, mode)?;
    let manifest = read_manifest(&artifact)?;
    let sketch = read_sketch(&artifact)?;
    let content_fnv = crate::inspect::content_fnv(artifact.sections());
    let state = load_state(&artifact)?;
    let model = state.into_model().map_err(|e| {
        ArtifactError::format(format!("{}: {e}", path.display()))
    })?;
    wym_obs::counter_add("artifact.loads", 1);
    Ok(LoadedModel {
        model,
        manifest,
        sketch,
        content_fnv,
        file_bytes: artifact.file_bytes(),
        mapped: artifact.is_mapped(),
    })
}

/// Appends a quantized embedding table as `<prefix>:codes` (i8, n × dim)
/// and `<prefix>:scales` (f32, n × 1) sections — the blocking layer's ANN
/// tables ride in the same container as the model that produced them.
pub fn add_quantized(w: &mut ArtifactWriter, prefix: &str, table: &QuantizedTable) {
    let (dim, codes, scales) = table.raw_parts();
    w.add_i8(&format!("{prefix}:codes"), table.len(), dim, codes);
    w.add_f32(&format!("{prefix}:scales"), scales.len(), 1, scales);
}

/// Reads a quantized table written by [`add_quantized`] back, bit-exact
/// (codes and scales are adopted verbatim; nothing is re-quantized).
pub fn read_quantized(
    artifact: &Artifact,
    prefix: &str,
) -> Result<QuantizedTable, ArtifactError> {
    let (n, dim, codes) = artifact.tensor_i8(&format!("{prefix}:codes"))?;
    let (sn, _, scales) = artifact.tensor_f32(&format!("{prefix}:scales"))?;
    if sn != n {
        return Err(ArtifactError::format(format!(
            "quantized table `{prefix}` has {n} code rows but {sn} scales; \
             the artifact is internally inconsistent"
        )));
    }
    Ok(QuantizedTable::from_raw_parts(dim, codes, scales))
}
