//! Artifact introspection: `wym model inspect` and `wym model diff`.
//!
//! Both operate on [`ArtifactInfo`], a cheap summary read with the normal
//! verified open (so an inspect doubles as an integrity check): schema
//! version, provenance manifest, and the full section table with shapes
//! and payload checksums. [`diff`] compares two summaries field by field —
//! because every section carries an FNV-1a of its payload, two artifacts
//! with an empty diff hold bit-identical models.

use crate::format::Artifact;
use crate::model::{read_manifest, read_sketch, SECTION_MANIFEST};
use crate::{ArtifactError, LoadMode, Section};
use std::path::Path;
use wym_obs::{Manifest, ModelSketch};

/// Folds the per-section payload checksums — excluding the provenance
/// `manifest` section — into one model-content fingerprint. Two artifacts
/// with equal `content_fnv` hold bit-identical model payloads even when
/// their provenance differs; this is the `model_fnv` stamped into audit
/// decision records.
pub fn content_fnv(sections: &[Section]) -> u64 {
    let mut fold = 0xcbf29ce484222325u64;
    for s in sections.iter().filter(|s| s.name != SECTION_MANIFEST) {
        for b in s.fnv.to_le_bytes() {
            fold ^= b as u64;
            fold = fold.wrapping_mul(0x100000001b3);
        }
    }
    fold
}

/// Summary of one artifact file.
pub struct ArtifactInfo {
    /// The inspected path, as given.
    pub path: String,
    /// Container schema version.
    pub schema_version: u32,
    /// File size in bytes.
    pub file_bytes: u64,
    /// Embedded provenance header.
    pub manifest: Manifest,
    /// The section table, in file order.
    pub sections: Vec<Section>,
    /// The train-time drift baseline, when the artifact carries one.
    pub sketch: Option<ModelSketch>,
}

/// Opens, verifies, and summarizes `path` (read mode — inspect should work
/// from any filesystem, mapped or not).
pub fn inspect(path: &Path) -> Result<ArtifactInfo, ArtifactError> {
    let artifact = Artifact::open(path, LoadMode::Read)?;
    let manifest = read_manifest(&artifact)?;
    let sketch = read_sketch(&artifact)?;
    Ok(ArtifactInfo {
        path: path.display().to_string(),
        schema_version: artifact.schema_version(),
        file_bytes: artifact.file_bytes(),
        manifest,
        sections: artifact.sections().to_vec(),
        sketch,
    })
}

impl ArtifactInfo {
    /// Multi-line human-readable rendering (the `model inspect` output).
    pub fn render(&self) -> String {
        let m = &self.manifest;
        let mut out = String::new();
        out.push_str(&format!(
            "{} — WYMA v{}, {} bytes, {} sections\n",
            self.path,
            self.schema_version,
            self.file_bytes,
            self.sections.len()
        ));
        out.push_str(&format!(
            "  provenance: tool={} git_sha={} kernel={} threads={} seed={}\n",
            m.tool, m.git_sha, m.kernel, m.threads, m.seed
        ));
        out.push_str(&format!(
            "  fingerprints: config={} dataset={}\n",
            m.config_hash, m.dataset_fingerprint
        ));
        for s in &self.sections {
            let shape = if s.rows > 0 || s.cols > 0 {
                format!(" {}×{}", s.rows, s.cols)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  section {:<28} {:>4}{shape:<12} {:>10} bytes  fnv {:016x}\n",
                s.name,
                s.kind.name(),
                s.len,
                s.fnv
            ));
        }
        out.push_str(&format!(
            "  content fnv: {:016x}\n",
            content_fnv(&self.sections)
        ));
        if let Some(sk) = &self.sketch {
            out.push_str(&format!(
                "  drift baseline: {} decisions, {} unit classes\n",
                sk.len(),
                sk.unit_mix().len()
            ));
        } else {
            out.push_str("  drift baseline: none\n");
        }
        out
    }
}

/// Compares two artifact summaries. Returns one human-readable line per
/// difference; an empty result means the two files hold bit-identical
/// payloads (same sections, shapes, and checksums) and matching
/// provenance.
pub fn diff(a: &ArtifactInfo, b: &ArtifactInfo) -> Vec<String> {
    let mut out = Vec::new();
    if a.schema_version != b.schema_version {
        out.push(format!(
            "schema version: {} vs {}",
            a.schema_version, b.schema_version
        ));
    }
    type Field<'a> = (&'a str, &'a dyn Fn(&Manifest) -> String);
    let fields: [Field; 7] = [
        ("tool", &|m| m.tool.clone()),
        ("git_sha", &|m| m.git_sha.clone()),
        ("kernel", &|m| m.kernel.clone()),
        ("threads", &|m| m.threads.to_string()),
        ("seed", &|m| m.seed.to_string()),
        ("config_hash", &|m| m.config_hash.clone()),
        ("dataset_fingerprint", &|m| m.dataset_fingerprint.clone()),
    ];
    for (name, get) in fields {
        let (va, vb) = (get(&a.manifest), get(&b.manifest));
        if va != vb {
            out.push(format!("manifest.{name}: {va} vs {vb}"));
        }
    }
    for sa in &a.sections {
        match b.sections.iter().find(|s| s.name == sa.name) {
            None => out.push(format!("section {}: only in {}", sa.name, a.path)),
            Some(sb) => {
                if (sa.rows, sa.cols) != (sb.rows, sb.cols) {
                    out.push(format!(
                        "section {}: shape {}×{} vs {}×{}",
                        sa.name, sa.rows, sa.cols, sb.rows, sb.cols
                    ));
                } else if sa.len != sb.len {
                    out.push(format!(
                        "section {}: {} vs {} bytes",
                        sa.name, sa.len, sb.len
                    ));
                } else if sa.fnv != sb.fnv {
                    out.push(format!(
                        "section {}: payload differs (fnv {:016x} vs {:016x})",
                        sa.name, sa.fnv, sb.fnv
                    ));
                }
            }
        }
    }
    for sb in &b.sections {
        if !a.sections.iter().any(|s| s.name == sb.name) {
            out.push(format!("section {}: only in {}", sb.name, b.path));
        }
    }
    out
}
