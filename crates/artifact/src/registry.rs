//! Multi-model residency: an LRU-with-byte-budget model registry.
//!
//! A serving process (the ROADMAP north-star) holds one model per dataset
//! or tenant. Models are cheap to *use* but not free to *hold* — the scorer
//! network plus projection of a default-config model is a few MB — so the
//! registry keeps the most recently used models resident and evicts from
//! the least recently used end once the configured byte budget is
//! exceeded. Byte accounting uses the artifact's on-disk size, which
//! tracks the resident tensor + head footprint closely (both are the same
//! bytes modulo JSON framing).
//!
//! Semantics, all deterministic:
//!
//! * [`ModelRegistry::load`] on a resident name is a hit: it refreshes
//!   recency and returns the cached [`Arc`] without touching the file.
//! * A miss loads the artifact, inserts it as most-recent, then evicts
//!   least-recently-used entries until the budget is met — but never the
//!   entry just inserted, so a single over-budget model still serves.
//! * Counters `artifact.registry.{hits,misses,evictions}` and the gauge
//!   `artifact.registry.resident_bytes` feed the usual obs exports.

use crate::model::{load_model, LoadedModel};
use crate::{ArtifactError, LoadMode};
use std::path::Path;
use std::sync::Arc;
use wym_core::pipeline::WymModel;
use wym_obs::Manifest;

struct Entry {
    name: String,
    model: Arc<WymModel>,
    manifest: Manifest,
    bytes: u64,
}

/// Several models resident behind an LRU with byte-budget eviction.
pub struct ModelRegistry {
    budget_bytes: u64,
    /// Recency order: least recently used first, most recent last.
    entries: Vec<Entry>,
}

impl ModelRegistry {
    /// A registry that evicts once resident artifacts exceed
    /// `budget_bytes` (the most recently loaded model is always kept).
    pub fn new(budget_bytes: u64) -> ModelRegistry {
        ModelRegistry { budget_bytes, entries: Vec::new() }
    }

    /// Returns the model registered under `name`, loading it from `path`
    /// on a miss. Hits refresh recency and never touch the filesystem.
    pub fn load(
        &mut self,
        name: &str,
        path: &Path,
        mode: LoadMode,
    ) -> Result<Arc<WymModel>, ArtifactError> {
        if let Some(model) = self.get(name) {
            return Ok(model);
        }
        wym_obs::counter_add("artifact.registry.misses", 1);
        let LoadedModel { model, manifest, file_bytes, .. } = load_model(path, mode)?;
        self.entries.push(Entry {
            name: name.to_string(),
            model: Arc::new(model),
            manifest,
            bytes: file_bytes,
        });
        while self.resident_bytes() > self.budget_bytes && self.entries.len() > 1 {
            let evicted = self.entries.remove(0);
            wym_obs::counter_add("artifact.registry.evictions", 1);
            drop(evicted);
        }
        wym_obs::gauge_set("artifact.registry.resident_bytes", self.resident_bytes() as f64);
        Ok(Arc::clone(&self.entries.last().expect("just inserted").model))
    }

    /// The resident model under `name`, refreshing its recency.
    pub fn get(&mut self, name: &str) -> Option<Arc<WymModel>> {
        let idx = self.entries.iter().position(|e| e.name == name)?;
        let entry = self.entries.remove(idx);
        let model = Arc::clone(&entry.model);
        self.entries.push(entry);
        wym_obs::counter_add("artifact.registry.hits", 1);
        Some(model)
    }

    /// The provenance manifest of a resident model (does not touch
    /// recency).
    pub fn manifest(&self, name: &str) -> Option<&Manifest> {
        self.entries.iter().find(|e| e.name == name).map(|e| &e.manifest)
    }

    /// Drops the model under `name`. Returns whether it was resident.
    pub fn evict(&mut self, name: &str) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.name != name);
        let evicted = self.entries.len() != before;
        if evicted {
            wym_obs::gauge_set(
                "artifact.registry.resident_bytes",
                self.resident_bytes() as f64,
            );
        }
        evicted
    }

    /// True when `name` is resident (does not touch recency).
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|e| e.name == name)
    }

    /// Number of resident models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of resident artifact sizes.
    pub fn resident_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Resident model names, least recently used first.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }
}
