//! A `wym-par` worker panic must still produce a parseable flight dump
//! containing the panicking span: the post-mortem guarantee the flight
//! recorder exists for, exercised through the real worker machinery
//! (scoped threads, context propagation, catch/re-raise) without relying
//! on the process-global panic hook.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use wym_obs::ring::{self, EventKind, Flight};
use wym_obs::Recorder;
use wym_par::map_indexed;

#[test]
fn worker_panic_leaves_a_parseable_dump_with_the_panicking_span() {
    let rec = Arc::new(Recorder::new_enabled());
    let flight = Arc::new(Flight::new_enabled(1024));
    let items: Vec<u32> = (0..16).collect();

    let result = wym_obs::with_recorder(Arc::clone(&rec), || {
        ring::with_flight(Arc::clone(&flight), || {
            catch_unwind(AssertUnwindSafe(|| {
                map_indexed(&items, 4, |i, &x| {
                    let _s = wym_obs::span("panicky_work");
                    if i == 7 {
                        panic!("poisoned record");
                    }
                    x + 1
                })
            }))
        })
    });
    assert!(result.is_err(), "the worker panic must re-raise on the caller");

    // The dump is taken *after* the panic — exactly what the panic hook
    // does — and must still be complete and serializable.
    let dump = flight.dump("test: worker panic");
    let all_events: Vec<_> = dump.threads.iter().flat_map(|t| t.events.iter()).collect();
    assert!(
        all_events.iter().any(|e| e.kind == EventKind::Enter && e.name == "panicky_work"),
        "the panicking span must appear in the dump"
    );
    assert!(
        all_events
            .iter()
            .any(|e| e.kind == EventKind::Mark && e.name == "par.worker_panic item 7"),
        "the worker panic mark must name the failing item; events: {:?}",
        all_events.iter().map(|e| &e.name).collect::<Vec<_>>()
    );

    // Chrome trace round trip: written JSON parses and names the span.
    let dir = std::env::temp_dir().join(format!("wym_par_flight_{}", std::process::id()));
    let (_txt, json_path) =
        wym_obs::chrome::write_dump_files(dir.to_str().unwrap(), "par", "panic", &dump)
            .expect("dump files written");
    let text = std::fs::read_to_string(&json_path).unwrap();
    let parsed = wym_obs::json::parse(&text).expect("trace JSON must parse");
    let summary = wym_obs::chrome::summarize(&parsed).expect("trace must summarize");
    assert!(text.contains("panicky_work"));
    assert!(summary.contains("par.worker_panic item 7"), "summary:\n{summary}");
    let _ = std::fs::remove_dir_all(&dir);

    // The aggregate side still recorded the panic counter.
    assert_eq!(rec.snapshot().counter("par.worker_panics"), Some(1));
}

#[test]
fn sequential_fallback_panic_also_marks_the_flight() {
    let flight = Arc::new(Flight::new_enabled(256));
    let items: Vec<u32> = (0..3).collect();
    let result = ring::with_flight(Arc::clone(&flight), || {
        catch_unwind(AssertUnwindSafe(|| {
            map_indexed(&items, 1, |i, &x| {
                if i == 1 {
                    panic!("seq boom");
                }
                x
            })
        }))
    });
    assert!(result.is_err());
    let dump = flight.dump("test");
    assert!(dump
        .threads
        .iter()
        .flat_map(|t| t.events.iter())
        .any(|e| e.kind == EventKind::Mark && e.name == "par.worker_panic item 1"));
}
