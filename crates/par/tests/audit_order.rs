//! Cross-thread determinism of the decision audit log under `map_indexed`:
//! workers emit records in whatever interleaving the scheduler produces,
//! but the sequence-pinned sink must render byte-identical JSONL for any
//! thread count — and stay usable when a worker panics mid-map.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use wym_obs::audit::{scope_seq, with_audit, KIND_CLASSIFY};
use wym_obs::{AuditLog, AuditOptions};
use wym_par::map_indexed;

fn emit_item(log: &AuditLog, i: usize) {
    // Pin the ambient sequence to the item index — the trace id and sort
    // order then depend only on the input position, never the scheduler.
    let _seq = scope_seq(i as u64);
    log.emit(
        KIND_CLASSIFY,
        1000 + i as u64,
        i % 2 == 0,
        (i as f32 / 64.0).min(1.0),
        4,
        3,
        Vec::new(),
        None,
    );
}

#[test]
fn audit_jsonl_is_byte_identical_across_thread_counts() {
    let items: Vec<usize> = (0..64).collect();
    let mut outputs = Vec::new();
    for threads in [1usize, 2, 4, 7] {
        let log = Arc::new(AuditLog::new(AuditOptions {
            model_fnv: 0xabad1dea,
            ..Default::default()
        }));
        // The map captures the ambient obs context — including the audit
        // log — and re-installs it inside every worker.
        with_audit(Arc::clone(&log), || {
            let active = wym_obs::audit::active().expect("log installed");
            map_indexed(&items, threads, |i, _| emit_item(&active, i));
        });
        assert_eq!(log.len(), items.len(), "thread count {threads}");
        outputs.push((threads, log.to_jsonl(), log.checksum()));
    }
    let (_, ref baseline, baseline_sum) = outputs[0];
    for (threads, jsonl, sum) in &outputs {
        assert_eq!(jsonl, baseline, "thread count {threads} reordered the log");
        assert_eq!(*sum, baseline_sum, "thread count {threads} checksum");
    }
}

#[test]
fn workers_see_the_callers_audit_log_through_context_propagation() {
    // The worker closure asks for the *ambient* log itself (as the real
    // pipeline does) instead of capturing an Arc — this only works if
    // `map_indexed` propagates the audit slot with the obs context.
    let log = Arc::new(AuditLog::new(AuditOptions::default()));
    let items: Vec<usize> = (0..16).collect();
    with_audit(Arc::clone(&log), || {
        map_indexed(&items, 4, |i, _| {
            let ambient = wym_obs::audit::active().expect("context must carry the log");
            emit_item(&ambient, i);
        });
    });
    let seqs: Vec<u64> = log.sorted().iter().map(|r| r.seq).collect();
    assert_eq!(seqs, (0..16).collect::<Vec<u64>>());
}

#[test]
fn worker_panic_leaves_the_log_sorted_and_usable() {
    let log = Arc::new(AuditLog::new(AuditOptions::default()));
    let items: Vec<usize> = (0..64).collect();
    let result = with_audit(Arc::clone(&log), || {
        catch_unwind(AssertUnwindSafe(|| {
            map_indexed(&items, 4, |i, _| {
                let ambient = wym_obs::audit::active().expect("log installed");
                emit_item(&ambient, i);
                if i == 20 {
                    panic!("poisoned record");
                }
            })
        }))
    });
    assert!(result.is_err(), "the map must re-raise the worker panic");
    // Which items ran before the abort is scheduling-dependent, but every
    // record that made it in is complete and the sink still sorts, renders,
    // and checksums — a panicking worker cannot wedge the audit trail.
    let records = log.sorted();
    assert!(!records.is_empty(), "item 20 itself emitted before panicking");
    assert!(records.windows(2).all(|w| w[0].seq < w[1].seq), "strictly ordered");
    for r in &records {
        assert_eq!(r.record_id, 1000 + r.seq);
    }
    assert_eq!(log.to_jsonl().lines().count(), records.len());
    let _ = log.checksum();
}
