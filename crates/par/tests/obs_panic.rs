//! Observability-context behaviour of `map_indexed` when workers panic,
//! with the tracking allocator really installed: a dying worker must not
//! leak its memory charge target onto the caller, and nothing — spans,
//! counters, or bytes — may be double-counted while the map aborts.

use std::hint::black_box;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use wym_obs::Recorder;
use wym_par::map_indexed;

wym_obs::install_tracking_alloc!();

/// Allocates and frees `n` heap bytes the optimizer can't elide.
fn churn(n: usize) {
    let v: Vec<u8> = black_box(vec![0x5Au8; n]);
    drop(black_box(v));
}

#[test]
fn worker_panic_keeps_memory_attribution_consistent() {
    wym_obs::prof::set_enabled(true);
    let rec = Arc::new(Recorder::new_enabled());
    wym_obs::with_recorder(Arc::clone(&rec), || {
        let _outer = wym_obs::span("outer");
        let items: Vec<u32> = (0..32).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            map_indexed(&items, 4, |_, &x| {
                churn(10_000); // charged to outer through the captured context
                if x == 7 {
                    panic!("poisoned record");
                }
                x
            })
        }));
        assert!(result.is_err(), "the map must re-raise the worker panic");
        // The caller's charge target survives the aborted map: allocations
        // made after it still land on `outer`, not on `(unattributed)`.
        churn(123_456);
    });
    let snap = rec.snapshot();
    assert_eq!(snap.span_count("outer"), 1, "outer span recorded exactly once");
    let outer_mem = snap
        .spans
        .iter()
        .find(|s| s.path == "outer")
        .and_then(|s| s.mem)
        .expect("outer carries memory attribution");
    assert!(
        outer_mem.alloc_bytes >= 123_456,
        "post-panic allocation missing from outer: {}B",
        outer_mem.alloc_bytes
    );
    assert_eq!(snap.counter("par.worker_panics"), Some(1), "one panic, counted once");
}

#[test]
fn aborted_map_never_double_counts_spans_or_counters() {
    wym_obs::prof::set_enabled(true);
    let rec = Arc::new(Recorder::new_enabled());
    wym_obs::with_recorder(Arc::clone(&rec), || {
        let _outer = wym_obs::span("outer");
        let items: Vec<u32> = (0..64).collect();
        let _ = catch_unwind(AssertUnwindSafe(|| {
            map_indexed(&items, 4, |_, &x| {
                let _s = wym_obs::span("item");
                wym_obs::counter_add("items_entered", 1);
                if x == 20 {
                    panic!("boom");
                }
                x
            })
        }));
    });
    let snap = rec.snapshot();
    // How many items ran before the abort is scheduling-dependent, but the
    // span count and the counter must agree exactly — each entered item
    // recorded once, including the panicking one (its guard drops during
    // unwind), and none twice.
    let entered = snap.counter("items_entered").expect("some items ran");
    assert_eq!(snap.span_count("outer/item"), entered, "span/counter mismatch");
    assert!(entered >= 1 && entered <= 64);
    assert_eq!(
        snap.spans.iter().filter(|s| s.path.contains("item")).count(),
        1,
        "no orphan-root item spans: {:?}",
        snap.spans.iter().map(|s| &s.path).collect::<Vec<_>>()
    );
}

#[test]
fn worker_allocations_aggregate_deterministically_across_thread_counts() {
    wym_obs::prof::set_enabled(true);
    // Fixed per-item allocation: the bytes charged to the caller's span
    // must cover items × size for every thread count (exact equality is
    // impossible process-wide — the runtime allocates too — but the lower
    // bound pins that no worker's traffic was dropped).
    for threads in [1, 2, 4] {
        let rec = Arc::new(Recorder::new_enabled());
        wym_obs::with_recorder(Arc::clone(&rec), || {
            let _outer = wym_obs::span("outer");
            let items: Vec<u32> = (0..20).collect();
            let got = map_indexed(&items, threads, |_, &x| {
                churn(50_000);
                x
            });
            assert_eq!(got.len(), 20);
        });
        let snap = rec.snapshot();
        let mem = snap
            .spans
            .iter()
            .find(|s| s.path == "outer")
            .and_then(|s| s.mem)
            .expect("outer carries memory attribution");
        assert!(
            mem.alloc_bytes >= 20 * 50_000,
            "thread count {threads}: only {}B attributed",
            mem.alloc_bytes
        );
    }
}
