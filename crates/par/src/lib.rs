//! Deterministic work-stealing parallelism for the WYM pipeline.
//!
//! The one primitive everything builds on is [`map_indexed`]: a parallel
//! map over a slice whose output is **identical to the sequential map for
//! any thread count**. Workers claim items one at a time from a shared
//! atomic counter (work stealing), so a few expensive records — common with
//! skewed entity descriptions — cannot straggle a whole pre-assigned chunk
//! the way static chunking does. Each worker keeps `(index, result)` pairs
//! locally; after the scope joins, results are merged into their input
//! positions. No locks, no channels, no ordering sensitivity.
//!
//! Workers run under the caller's observability context (`wym_obs::capture`
//! / `in_context`), so spans opened inside `f` aggregate beneath the span
//! that was open when `map_indexed` was called instead of becoming orphan
//! roots — totals stay deterministic for any thread count.
//!
//! A panic inside `f` aborts the map (other workers stop claiming items)
//! and is re-raised on the calling thread with the index of the failing
//! item, so a poisoned record is identifiable instead of surfacing as an
//! anonymous `worker thread panicked`. Panics are also counted on the
//! `par.worker_panics` obs counter and stamped into the flight recorder
//! (`wym_obs::ring`) as a `par.worker_panic item {i}` mark before the
//! worker's ring is last touched, so a post-mortem dump names the failing
//! item even when the enriched panic message is lost. The flight override
//! itself rides in the captured `ObsContext`, so worker events land in the
//! caller's rings for any thread count.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads implied by a configured thread count:
/// `0` means "use all available cores", anything else is taken literally.
pub fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        configured
    }
}

/// Wraps a panic payload with the index of the item whose closure panicked.
fn panic_with_index(i: usize, payload: Box<dyn std::any::Any + Send>) -> ! {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    panic!("wym-par worker panicked on item {i}: {msg}");
}

/// Maps `f` over `items` on `n_threads` workers, returning results in input
/// order. Output is identical to `items.iter().enumerate().map(f)` for any
/// thread count; `n_threads` of 0 or 1 (or tiny inputs) run sequentially.
///
/// # Panics
/// If `f` panics for some item, the panic is re-raised on the calling
/// thread as `wym-par worker panicked on item {i}: {message}`. When several
/// items panic concurrently, the first panic observed wins.
pub fn map_indexed<T, R, F>(items: &[T], n_threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n_threads = resolve_threads(n_threads).min(items.len().max(1));
    if n_threads <= 1 || items.len() < 2 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| match catch_unwind(AssertUnwindSafe(|| f(i, t))) {
                Ok(r) => r,
                Err(payload) => {
                    wym_obs::ring::mark(&format!("par.worker_panic item {i}"));
                    wym_obs::counter_add("par.worker_panics", 1);
                    panic_with_index(i, payload);
                }
            })
            .collect();
    }

    let ctx = wym_obs::capture();
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    // The first panic wins: (item index, payload) parked here and re-raised
    // on the calling thread after the scope joins.
    let first_panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);

    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                scope.spawn(|| {
                    wym_obs::in_context(&ctx, || {
                        let mut local = Vec::new();
                        loop {
                            if abort.load(Ordering::Relaxed) {
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                                Ok(r) => local.push((i, r)),
                                Err(payload) => {
                                    abort.store(true, Ordering::Relaxed);
                                    wym_obs::ring::mark(&format!("par.worker_panic item {i}"));
                                    wym_obs::counter_add("par.worker_panics", 1);
                                    let mut slot =
                                        first_panic.lock().unwrap_or_else(|e| e.into_inner());
                                    if slot.is_none() {
                                        *slot = Some((i, payload));
                                    }
                                    break;
                                }
                            }
                        }
                        local
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked outside the item closure"))
            .collect()
    });

    if let Some((i, payload)) = first_panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
        // Preserve &str/String payloads in the enriched message; anything
        // else propagates unchanged.
        if payload.is::<&str>() || payload.is::<String>() {
            panic_with_index(i, payload);
        }
        resume_unwind(payload);
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for chunk in per_worker {
        for (i, r) in chunk {
            debug_assert!(slots[i].is_none(), "item {i} claimed twice");
            slots[i] = Some(r);
        }
    }
    slots.into_iter().map(|s| s.expect("every item claimed")).collect()
}

/// The `n_shards` near-equal contiguous ranges covering `0..n` (the first
/// `n % n_shards` shards get one extra item). Empty ranges are omitted, so
/// tiny inputs produce fewer shards than requested.
pub fn shard_ranges(n: usize, n_shards: usize) -> Vec<std::ops::Range<usize>> {
    let n_shards = n_shards.max(1).min(n.max(1));
    let base = n / n_shards;
    let extra = n % n_shards;
    let mut out = Vec::with_capacity(n_shards);
    let mut start = 0;
    for s in 0..n_shards {
        let len = base + usize::from(s < extra);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Maps `f` over the [`shard_ranges`] of `0..n` on `n_threads` workers,
/// returning one result per shard in shard order. The sharded builders in
/// `wym-block` use this to construct per-shard structures in parallel and
/// merge them in a deterministic order: because results come back in shard
/// order, a shard-order merge is identical to the sequential build for any
/// thread count.
pub fn map_ranges<R, F>(n: usize, n_shards: usize, n_threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
{
    let ranges = shard_ranges(n, n_shards);
    map_indexed(&ranges, n_threads, |shard, range| f(shard, range.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for n in [0usize, 1, 2, 7, 64, 100] {
            for shards in [1usize, 2, 3, 8, 200] {
                let ranges = shard_ranges(n, shards);
                let mut covered = 0;
                for (i, r) in ranges.iter().enumerate() {
                    assert_eq!(r.start, covered, "n={n} shards={shards} range {i}");
                    assert!(!r.is_empty());
                    covered = r.end;
                }
                assert_eq!(covered, n, "n={n} shards={shards}");
                assert!(ranges.len() <= shards.max(1));
            }
        }
    }

    #[test]
    fn map_ranges_matches_sequential_for_every_thread_count() {
        let expected: Vec<usize> = shard_ranges(97, 8).iter().map(|r| r.len()).collect();
        for threads in 0..=6 {
            let got = map_ranges(97, 8, threads, |_, r| r.len());
            assert_eq!(got, expected, "thread count {threads}");
        }
        assert_eq!(got_sum(&map_ranges(97, 8, 4, |_, r| r.len())), 97);
    }

    fn got_sum(v: &[usize]) -> usize {
        v.iter().sum()
    }

    #[test]
    fn matches_sequential_for_every_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in 0..=8 {
            let got = map_indexed(&items, threads, |_, x| x * x + 1);
            assert_eq!(got, expected, "thread count {threads}");
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = map_indexed(&items, 3, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn skewed_workloads_complete() {
        // One item 1000× more expensive than the rest: work stealing keeps
        // the other workers busy instead of idling behind a static chunk.
        let items: Vec<usize> = (0..64).collect();
        let got = map_indexed(&items, 4, |_, &x| {
            let reps = if x == 0 { 100_000 } else { 100 };
            (0..reps).fold(x as u64, |acc, _| acc.wrapping_mul(31).wrapping_add(7))
        });
        assert_eq!(got.len(), items.len());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert_eq!(map_indexed(&empty, 4, |_, x| *x), Vec::<u32>::new());
        assert_eq!(map_indexed(&[9u32], 4, |_, x| *x), vec![9]);
    }

    #[test]
    fn resolve_threads_semantics() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn panic_propagates_with_item_index_parallel() {
        let items: Vec<u32> = (0..32).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            map_indexed(&items, 4, |_, &x| {
                if x == 13 {
                    panic!("bad record");
                }
                x
            })
        }))
        .expect_err("must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("item 13") && msg.contains("bad record"),
            "panic message must name the failing item: {msg}"
        );
    }

    #[test]
    fn panic_propagates_with_item_index_sequential() {
        let items: Vec<u32> = (0..4).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            map_indexed(&items, 1, |_, &x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        }))
        .expect_err("must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("item 2") && msg.contains("boom"), "{msg}");
    }

    #[test]
    fn panic_increments_obs_counter() {
        let rec = Arc::new(wym_obs::Recorder::new_enabled());
        wym_obs::with_recorder(Arc::clone(&rec), || {
            let items: Vec<u32> = (0..2).collect();
            let _ = catch_unwind(AssertUnwindSafe(|| {
                map_indexed(&items, 1, |_, _| panic!("x"))
            }));
        });
        assert_eq!(rec.snapshot().counter("par.worker_panics"), Some(1));
    }

    #[test]
    fn worker_spans_aggregate_under_callers_span_deterministically() {
        // Span *totals* must be identical for any thread count: every item
        // contributes exactly one `outer/item` span under the caller's path.
        for threads in [1, 2, 4, 7] {
            let rec = Arc::new(wym_obs::Recorder::new_enabled());
            wym_obs::with_recorder(Arc::clone(&rec), || {
                let _outer = wym_obs::span("outer");
                let items: Vec<u32> = (0..50).collect();
                let got = map_indexed(&items, threads, |_, &x| {
                    let _s = wym_obs::span("item");
                    wym_obs::counter_add("items_seen", 1);
                    x + 1
                });
                assert_eq!(got.len(), 50);
            });
            let snap = rec.snapshot();
            assert_eq!(snap.span_count("outer/item"), 50, "thread count {threads}");
            assert_eq!(snap.counter("items_seen"), Some(50), "thread count {threads}");
            assert_eq!(
                snap.spans.iter().filter(|s| s.path.contains("item")).count(),
                1,
                "no orphan-root item spans for thread count {threads}: {:?}",
                snap.spans.iter().map(|s| &s.path).collect::<Vec<_>>()
            );
        }
    }
}
