//! Deterministic work-stealing parallelism for the WYM pipeline.
//!
//! The one primitive everything builds on is [`map_indexed`]: a parallel
//! map over a slice whose output is **identical to the sequential map for
//! any thread count**. Workers claim items one at a time from a shared
//! atomic counter (work stealing), so a few expensive records — common with
//! skewed entity descriptions — cannot straggle a whole pre-assigned chunk
//! the way static chunking does. Each worker keeps `(index, result)` pairs
//! locally; after the scope joins, results are merged into their input
//! positions. No locks, no channels, no ordering sensitivity.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads implied by a configured thread count:
/// `0` means "use all available cores", anything else is taken literally.
pub fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        configured
    }
}

/// Maps `f` over `items` on `n_threads` workers, returning results in input
/// order. Output is identical to `items.iter().enumerate().map(f)` for any
/// thread count; `n_threads` of 0 or 1 (or tiny inputs) run sequentially.
pub fn map_indexed<T, R, F>(items: &[T], n_threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n_threads = resolve_threads(n_threads).min(items.len().max(1));
    if n_threads <= 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for chunk in per_worker {
        for (i, r) in chunk {
            debug_assert!(slots[i].is_none(), "item {i} claimed twice");
            slots[i] = Some(r);
        }
    }
    slots.into_iter().map(|s| s.expect("every item claimed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_for_every_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in 0..=8 {
            let got = map_indexed(&items, threads, |_, x| x * x + 1);
            assert_eq!(got, expected, "thread count {threads}");
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = map_indexed(&items, 3, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn skewed_workloads_complete() {
        // One item 1000× more expensive than the rest: work stealing keeps
        // the other workers busy instead of idling behind a static chunk.
        let items: Vec<usize> = (0..64).collect();
        let got = map_indexed(&items, 4, |_, &x| {
            let reps = if x == 0 { 100_000 } else { 100 };
            (0..reps).fold(x as u64, |acc, _| acc.wrapping_mul(31).wrapping_add(7))
        });
        assert_eq!(got.len(), items.len());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert_eq!(map_indexed(&empty, 4, |_, x| *x), Vec::<u32>::new());
        assert_eq!(map_indexed(&[9u32], 4, |_, x| *x), vec![9]);
    }

    #[test]
    fn resolve_threads_semantics() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
