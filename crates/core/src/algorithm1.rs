//! Algorithm 1 — `DecisionUnitDiscovery` (paper §4.1.2).
//!
//! Three successively broader search spaces, with increasing thresholds:
//!
//! 1. **Intra-attribute** (`θ`): tokens of matching attributes only — "the
//!    dataset structure guarantees that the found intra-attribute
//!    correspondences describe the same entity property";
//! 2. **Inter-attribute** (`η`): the tokens left unpaired by phase 1, across
//!    all attributes — handles dirty / misaligned data (challenge R2);
//! 3. **One-to-many** (`ε`): remaining unpaired tokens against the
//!    *already paired* tokens of the other entity — builds the chains that
//!    represent repetitions and periphrasis.
//!
//! The output satisfies the §3.1.1 constraints: every token belongs to at
//! least one decision unit, and a token in an unpaired unit belongs to no
//! paired unit.

use crate::pairing::{get_sm_pairs, get_sm_pairs_cached, PairingSim, SimMatrix, SmPair};
use crate::record::{Side, TokenRef, TokenizedRecord};
use crate::units::DecisionUnit;
use serde::{Deserialize, Serialize};

/// Thresholds and options of the decision unit generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiscoveryConfig {
    /// Intra-attribute similarity threshold (paper setting: 0.6).
    pub theta: f32,
    /// Inter-attribute similarity threshold (paper setting: 0.65).
    pub eta: f32,
    /// One-to-many similarity threshold (paper setting: 0.7).
    pub epsilon: f32,
    /// Preference measure (embedding cosine vs Jaro–Winkler ablation).
    pub sim: PairingSim,
    /// Product-code domain heuristic (§5.1.1 error analysis).
    pub code_heuristic: bool,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        Self {
            theta: 0.6,
            eta: 0.65,
            epsilon: 0.7,
            sim: PairingSim::Embedding,
            code_heuristic: false,
        }
    }
}

/// Runs Algorithm 1 on a tokenized record, returning paired units followed
/// by unpaired units.
pub fn discover_units(record: &TokenizedRecord, config: &DiscoveryConfig) -> Vec<DecisionUnit> {
    discover_units_with_threads(record, config, 1)
}

/// [`discover_units`] with an explicit worker-thread budget for the
/// similarity-matrix fill. Long-description records (thousands of token
/// pairs) shard the fill across workers; the resulting units are identical
/// for any thread count (see [`SimMatrix::build_tuned`]).
pub fn discover_units_with_threads(
    record: &TokenizedRecord,
    config: &DiscoveryConfig,
    n_threads: usize,
) -> Vec<DecisionUnit> {
    // All three phases (and their overlapping θ/η/ε probes) read from one
    // similarity matrix computed up front — see [`SimMatrix`]. The §5.1.1
    // code mask is only computed when this config will actually consult it.
    // Every probe filters at θ, η, or ε, so their minimum is a sound
    // similarity floor for the int8-screened fill — passed only when the
    // record is big enough for the screen to pay for its quantization pass
    // (`worth_i8_screening`); results are identical either way.
    let floor = config.theta.min(config.eta).min(config.epsilon);
    let entries = record.left.token_count() * record.right.token_count();
    let floor = crate::pairing::worth_i8_screening(record.left.embeds.dim(), entries)
        .then_some(floor);
    let matrix =
        SimMatrix::build_tuned(record, config.sim, config.code_heuristic, floor, n_threads);
    let units = discover_units_cached(record, &matrix, config);
    // The matrix computed entries() similarities once; the θ/η/ε probes
    // asked for lookups() of them. Their ratio is the per-record reuse
    // factor of the similarity cache (> 1 ⇒ the cache saved recomputation).
    if wym_obs::enabled() && matrix.entries() > 0 {
        wym_obs::hist_observe(
            "simmatrix.hit_rate",
            matrix.lookups() as f64 / matrix.entries() as f64,
        );
        wym_obs::counter_add("simmatrix.entries", matrix.entries() as u64);
        wym_obs::counter_add("simmatrix.lookups", matrix.lookups());
    }
    units
}

/// [`discover_units`] over a caller-supplied [`SimMatrix`] (which must have
/// been built from the same record and `config.sim`).
pub fn discover_units_cached(
    record: &TokenizedRecord,
    matrix: &SimMatrix,
    config: &DiscoveryConfig,
) -> Vec<DecisionUnit> {
    discover_units_with(record, config, |left, right, threshold| {
        get_sm_pairs_cached(matrix, left, right, threshold, config.code_heuristic)
    })
}

/// [`discover_units`] with per-lookup similarity — no caching anywhere.
///
/// This is the pre-[`SimMatrix`] implementation, retained so the property
/// suite can assert the cached pipeline is bit-identical to it and so the
/// benches can report the caching speedup against a live baseline. Not for
/// production use.
pub fn discover_units_reference(
    record: &TokenizedRecord,
    config: &DiscoveryConfig,
) -> Vec<DecisionUnit> {
    discover_units_with(record, config, |left, right, threshold| {
        get_sm_pairs(record, left, right, threshold, config.sim, config.code_heuristic)
    })
}

/// The three-phase Algorithm 1 skeleton, parameterized over the stable
/// marriage probe so the cached and reference variants share one body and
/// can only differ in how a similarity is produced.
fn discover_units_with(
    record: &TokenizedRecord,
    config: &DiscoveryConfig,
    probe: impl Fn(&[TokenRef], &[TokenRef], f32) -> Vec<SmPair>,
) -> Vec<DecisionUnit> {
    let _span = wym_obs::span("pair");
    let mut paired: Vec<DecisionUnit> = Vec::new();
    let mut nx: Vec<TokenRef> = Vec::new();
    let mut ny: Vec<TokenRef> = Vec::new();

    // Phase 1 — intra-attribute correspondences (lines 4-8).
    let attrs = record.left.attr_count().min(record.right.attr_count());
    for a in 0..attrs {
        let ex = record.left.attr_refs(a);
        let ey = record.right.attr_refs(a);
        let m = probe(&ex, &ey, config.theta);
        // Match lists are a handful of entries, so linear membership scans
        // beat hashing `TokenRef`s (here and in the phases below).
        nx.extend(ex.into_iter().filter(|t| !m.iter().any(|(l, _, _)| l == t)));
        ny.extend(ey.into_iter().filter(|t| !m.iter().any(|(_, r, _)| r == t)));
        paired.extend(m.into_iter().map(|(left, right, similarity)| DecisionUnit::Paired {
            left,
            right,
            similarity,
        }));
    }
    // Attributes present on only one side (ragged schemas) go straight to
    // the unpaired pools.
    for a in attrs..record.left.attr_count() {
        nx.extend(record.left.attr_refs(a));
    }
    for a in attrs..record.right.attr_count() {
        ny.extend(record.right.attr_refs(a));
    }

    let phase1_units = paired.len();

    // Phase 2 — inter-attribute correspondences (lines 9-12).
    let m = probe(&nx, &ny, config.eta);
    nx.retain(|t| !m.iter().any(|(l, _, _)| l == t));
    ny.retain(|t| !m.iter().any(|(_, r, _)| r == t));
    paired.extend(m.into_iter().map(|(left, right, similarity)| DecisionUnit::Paired {
        left,
        right,
        similarity,
    }));

    let phase2_units = paired.len() - phase1_units;

    // Phase 3 — one-to-many correspondences with already paired tokens
    // (lines 13-17).
    let paired_right: Vec<TokenRef> = paired
        .iter()
        .filter_map(|u| match u {
            DecisionUnit::Paired { right, .. } => Some(*right),
            _ => None,
        })
        .collect();
    let paired_left: Vec<TokenRef> = paired
        .iter()
        .filter_map(|u| match u {
            DecisionUnit::Paired { left, .. } => Some(*left),
            _ => None,
        })
        .collect();
    let mx = probe(&nx, &paired_right, config.epsilon);
    nx.retain(|t| !mx.iter().any(|(l, _, _)| l == t));

    // Symmetric call: unmatched right tokens propose to paired left tokens.
    // The probe is left→right directional, so swap roles at the call site
    // (similarity is symmetric for both measures) and un-swap the result.
    let my: Vec<(TokenRef, TokenRef, f32)> = if ny.is_empty() || paired_left.is_empty() {
        Vec::new()
    } else {
        let reversed = probe(&paired_left, &ny, config.epsilon);
        ny.retain(|t| !reversed.iter().any(|(_, r, _)| r == t));
        reversed
    };
    paired.extend(mx.into_iter().map(|(left, right, similarity)| DecisionUnit::Paired {
        left,
        right,
        similarity,
    }));
    paired.extend(my.into_iter().map(|(left, right, similarity)| DecisionUnit::Paired {
        left,
        right,
        similarity,
    }));

    let phase3_units = paired.len() - phase1_units - phase2_units;

    // N_r = N_x ∪ N_y (line 18).
    let mut units = paired;
    units.extend(nx.into_iter().map(|token| DecisionUnit::Unpaired { token, side: Side::Left }));
    units.extend(ny.into_iter().map(|token| DecisionUnit::Unpaired { token, side: Side::Right }));

    // Phase-by-phase accounting: the three paired-phase counters plus the
    // unpaired counter always sum to `pair.units` (asserted by tests).
    if wym_obs::enabled() {
        let unpaired = units.len() - phase1_units - phase2_units - phase3_units;
        wym_obs::counter_add("pair.phase1_units", phase1_units as u64);
        wym_obs::counter_add("pair.phase2_units", phase2_units as u64);
        wym_obs::counter_add("pair.phase3_units", phase3_units as u64);
        wym_obs::counter_add("pair.unpaired_units", unpaired as u64);
        wym_obs::counter_add("pair.units", units.len() as u64);
        wym_obs::hist_observe("pair.units_per_record", units.len() as f64);
    }
    units
}

/// Verifies the §3.1.1 decision-unit constraints; used by tests and the
/// property suite.
pub fn check_constraints(record: &TokenizedRecord, units: &[DecisionUnit]) -> Result<(), String> {
    use std::collections::HashMap;
    let mut seen: HashMap<(Side, TokenRef), (bool, bool)> = HashMap::new(); // (in_paired, in_unpaired)
    for u in units {
        match u {
            DecisionUnit::Paired { left, right, .. } => {
                seen.entry((Side::Left, *left)).or_default().0 = true;
                seen.entry((Side::Right, *right)).or_default().0 = true;
            }
            DecisionUnit::Unpaired { token, side } => {
                seen.entry((*side, *token)).or_default().1 = true;
            }
        }
    }
    for side in [Side::Left, Side::Right] {
        for t in record.view(side).all_refs() {
            match seen.get(&(side, t)) {
                None => {
                    return Err(format!(
                        "token {side:?} {t:?} ({}) belongs to no unit",
                        record.text(side, t)
                    ))
                }
                Some((true, true)) => {
                    return Err(format!(
                        "token {side:?} {t:?} ({}) is both paired and unpaired",
                        record.text(side, t)
                    ))
                }
                _ => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wym_data::{Entity, RecordPair};
    use wym_embed::Embedder;
    use wym_tokenize::Tokenizer;

    fn record(left: Vec<&str>, right: Vec<&str>) -> TokenizedRecord {
        let pair = RecordPair {
            id: 0,
            label: true,
            left: Entity::new(left),
            right: Entity::new(right),
        };
        TokenizedRecord::from_pair(&pair, &Tokenizer::default(), &Embedder::new_static(48, 0))
    }

    #[test]
    fn constraints_hold_on_running_example() {
        let rec = record(
            vec!["exch srvr external sa eng 39400416", "microsoft licenses", "42166"],
            vec!["39400416 exch svr external sa", "microsoft licenses", "22575"],
        );
        let units = discover_units(&rec, &DiscoveryConfig::default());
        check_constraints(&rec, &units).unwrap();
        let paired = units.iter().filter(|u| u.is_paired()).count();
        assert!(paired >= 4, "expected several paired units, got {paired}");
    }

    #[test]
    fn identical_descriptions_pair_everything() {
        let rec = record(vec!["digital camera kit", "sony"], vec!["digital camera kit", "sony"]);
        let units = discover_units(&rec, &DiscoveryConfig::default());
        check_constraints(&rec, &units).unwrap();
        assert!(units.iter().all(DecisionUnit::is_paired), "{units:?}");
        assert_eq!(units.len(), 4);
    }

    #[test]
    fn disjoint_descriptions_pair_nothing() {
        let rec = record(vec!["zzzz qqqq"], vec!["wwww kkkk"]);
        let units = discover_units(&rec, &DiscoveryConfig::default());
        check_constraints(&rec, &units).unwrap();
        assert!(units.iter().all(|u| !u.is_paired()));
        assert_eq!(units.len(), 4);
    }

    #[test]
    fn inter_attribute_phase_pairs_misaligned_values() {
        // "sony" sits in the title on the left but in the brand attribute on
        // the right: only phase 2 can pair it.
        let rec = record(vec!["sony camera", ""], vec!["camera", "sony"]);
        let units = discover_units(&rec, &DiscoveryConfig::default());
        check_constraints(&rec, &units).unwrap();
        let cross = units.iter().any(|u| match u {
            DecisionUnit::Paired { left, right, .. } => left.attr != right.attr,
            _ => false,
        });
        assert!(cross, "expected a cross-attribute pair: {units:?}");
    }

    #[test]
    fn one_to_many_phase_attaches_repetitions() {
        // Left repeats "camera" twice; right has it once. Phase 1 pairs one
        // occurrence; phase 3 should attach the second to the already-paired
        // right token.
        let rec = record(vec!["camera camera"], vec!["camera"]);
        let units = discover_units(&rec, &DiscoveryConfig::default());
        check_constraints(&rec, &units).unwrap();
        let paired = units.iter().filter(|u| u.is_paired()).count();
        assert_eq!(paired, 2, "{units:?}");
        assert_eq!(units.len(), 2);
    }

    #[test]
    fn empty_sides_are_all_unpaired() {
        let rec = record(vec![""], vec!["camera case"]);
        let units = discover_units(&rec, &DiscoveryConfig::default());
        check_constraints(&rec, &units).unwrap();
        assert_eq!(units.len(), 2);
        assert!(units.iter().all(|u| !u.is_paired()));
    }

    #[test]
    fn thresholds_monotonicity_more_units_paired_with_lower_theta() {
        let rec = record(
            vec!["digtal camra lens kit bundle"],
            vec!["digital camera lens pack"],
        );
        let loose = DiscoveryConfig { theta: 0.3, eta: 0.35, epsilon: 0.4, ..Default::default() };
        let strict = DiscoveryConfig { theta: 0.95, eta: 0.95, epsilon: 0.95, ..Default::default() };
        let n_loose =
            discover_units(&rec, &loose).iter().filter(|u| u.is_paired()).count();
        let n_strict =
            discover_units(&rec, &strict).iter().filter(|u| u.is_paired()).count();
        assert!(n_loose >= n_strict, "loose {n_loose} vs strict {n_strict}");
        assert!(n_loose >= 2);
    }

    #[test]
    fn jaro_winkler_generator_variant_works() {
        let rec = record(vec!["exchange server"], vec!["exchang servr"]);
        let cfg = DiscoveryConfig {
            sim: PairingSim::JaroWinkler,
            theta: 0.85,
            eta: 0.9,
            epsilon: 0.92,
            ..Default::default()
        };
        let units = discover_units(&rec, &cfg);
        check_constraints(&rec, &units).unwrap();
        assert_eq!(units.iter().filter(|u| u.is_paired()).count(), 2);
    }

    #[test]
    fn phase_counters_sum_to_total_unit_count() {
        use std::sync::Arc;
        // Mixed record: exercises all three phases plus unpaired leftovers.
        let recs = [
            record(
                vec!["exch srvr external sa eng 39400416", "microsoft licenses", "42166"],
                vec!["39400416 exch svr external sa", "microsoft licenses", "22575"],
            ),
            record(vec!["sony camera camera", ""], vec!["camera", "sony"]),
            record(vec!["zzzz qqqq"], vec!["wwww kkkk"]),
        ];
        let obs = Arc::new(wym_obs::Recorder::new_enabled());
        let total_units: usize = wym_obs::with_recorder(Arc::clone(&obs), || {
            recs.iter()
                .map(|rec| discover_units(rec, &DiscoveryConfig::default()).len())
                .sum()
        });
        let snap = obs.snapshot();
        let phases: u64 = ["pair.phase1_units", "pair.phase2_units", "pair.phase3_units"]
            .iter()
            .map(|c| snap.counter(c).unwrap_or(0))
            .sum();
        let unpaired = snap.counter("pair.unpaired_units").unwrap_or(0);
        assert_eq!(
            phases + unpaired,
            total_units as u64,
            "phase counters must account for every decision unit: {:?}",
            snap.counters
        );
        assert_eq!(snap.counter("pair.units"), Some(total_units as u64));
        assert!(phases > 0, "expected paired units across phases");
        assert_eq!(snap.span_count("pair"), recs.len() as u64);
    }

    #[test]
    fn simmatrix_cache_stats_report_reuse() {
        use std::sync::Arc;
        let rec = record(
            vec!["digital camera lens kit bundle", "sony"],
            vec!["digital camera lens pack", "sony"],
        );
        let obs = Arc::new(wym_obs::Recorder::new_enabled());
        wym_obs::with_recorder(Arc::clone(&obs), || {
            let _ = discover_units(&rec, &DiscoveryConfig::default());
        });
        let snap = obs.snapshot();
        let entries = snap.counter("simmatrix.entries").expect("entries counted");
        let lookups = snap.counter("simmatrix.lookups").expect("lookups counted");
        assert!(entries > 0);
        assert!(
            lookups >= entries,
            "θ/η/ε probes must consult each cached entry at least once \
             on this record (lookups {lookups} vs entries {entries})"
        );
        let h = snap.histogram("simmatrix.hit_rate").expect("hit-rate histogram");
        assert_eq!(h.count(), 1);
        assert!(h.mean() >= 1.0, "reuse factor {}", h.mean());
    }

    #[test]
    fn ragged_attribute_counts_are_tolerated() {
        // Right entity has fewer attributes than left.
        let pair = RecordPair {
            id: 0,
            label: false,
            left: Entity::new(vec!["camera", "sony"]),
            right: Entity::new(vec!["camera"]),
        };
        let rec =
            TokenizedRecord::from_pair(&pair, &Tokenizer::default(), &Embedder::new_static(48, 0));
        let units = discover_units(&rec, &DiscoveryConfig::default());
        check_constraints(&rec, &units).unwrap();
    }
}
