//! Feature engineering over relevance scores, with exact provenance for the
//! inverse transformation (paper §4.3).
//!
//! "There are three types of contextual and structural knowledge that we can
//! introduce, by aggregating features and scores per attribute, entity
//! description and record. The functions we apply include simple statistical
//! operators (such as max, min, count, sum, mean, median, and the difference
//! between max and min)."
//!
//! Every engineered feature is described by a [`FeatureSpec`]; the spec both
//! *computes* the feature value and *distributes* a trained coefficient back
//! onto the decision units that fed it ([`contributions`]) — the inverse
//! feature engineering that yields impact scores.

use crate::record::Side;
use crate::units::DecisionUnit;
use serde::{Deserialize, Serialize};
use wym_linalg::vector::{argmax, mean, median};

/// Sign-based grouping of relevance scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Polarity {
    /// All units.
    All,
    /// Units with positive relevance (pushing toward match).
    Positive,
    /// Units with negative relevance (pushing toward non-match).
    Negative,
}

/// Which units a feature aggregates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scope {
    /// Units assigned to one schema attribute, split by paired/unpaired.
    Attribute {
        /// Attribute index.
        attr: usize,
        /// Paired (`true`) or unpaired (`false`) units.
        paired: bool,
    },
    /// All units of the record, filtered by score polarity.
    Record {
        /// Polarity filter.
        polarity: Polarity,
    },
    /// Unpaired units of one entity description.
    EntityUnpaired {
        /// Which description.
        side: Side,
    },
}

/// The statistical operator applied to the scores in scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stat {
    /// Number of units in scope.
    Count,
    /// Sum of scores.
    Sum,
    /// Mean score.
    Mean,
    /// Minimum score.
    Min,
    /// Maximum score.
    Max,
    /// Median score.
    Median,
    /// `max − min`.
    Range,
}

/// One engineered feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSpec {
    /// Aggregation scope.
    pub scope: Scope,
    /// Statistical operator.
    pub stat: Stat,
}

const ATTR_STATS: [Stat; 7] =
    [Stat::Count, Stat::Sum, Stat::Mean, Stat::Min, Stat::Max, Stat::Median, Stat::Range];

/// The full WYM feature set for a schema with `n_attrs` attributes:
/// per-attribute × {paired, unpaired} × 7 stats, record-level × 3 polarities
/// × 7 stats, and per-entity unpaired {count, mean}.
pub fn full_specs(n_attrs: usize) -> Vec<FeatureSpec> {
    let mut specs = Vec::with_capacity(n_attrs * 14 + 25);
    for attr in 0..n_attrs {
        for paired in [true, false] {
            for stat in ATTR_STATS {
                specs.push(FeatureSpec { scope: Scope::Attribute { attr, paired }, stat });
            }
        }
    }
    for polarity in [Polarity::All, Polarity::Positive, Polarity::Negative] {
        for stat in ATTR_STATS {
            specs.push(FeatureSpec { scope: Scope::Record { polarity }, stat });
        }
    }
    for side in [Side::Left, Side::Right] {
        for stat in [Stat::Count, Stat::Mean] {
            specs.push(FeatureSpec { scope: Scope::EntityUnpaired { side }, stat });
        }
    }
    specs
}

/// The simplified 6-feature set of Table 4's "smp. feat." ablation: count
/// and mean over all, positive, and negative relevance scores.
pub fn simplified_specs() -> Vec<FeatureSpec> {
    let mut specs = Vec::with_capacity(6);
    for polarity in [Polarity::All, Polarity::Positive, Polarity::Negative] {
        for stat in [Stat::Count, Stat::Mean] {
            specs.push(FeatureSpec { scope: Scope::Record { polarity }, stat });
        }
    }
    specs
}

/// Indices of the units a spec's scope selects.
pub fn members(spec: &FeatureSpec, units: &[DecisionUnit], scores: &[f32]) -> Vec<usize> {
    debug_assert_eq!(units.len(), scores.len());
    match spec.scope {
        Scope::Attribute { attr, paired } => (0..units.len())
            .filter(|&i| units[i].is_paired() == paired && units[i].attribute() == attr)
            .collect(),
        Scope::Record { polarity } => (0..units.len())
            .filter(|&i| match polarity {
                Polarity::All => true,
                Polarity::Positive => scores[i] > 0.0,
                Polarity::Negative => scores[i] < 0.0,
            })
            .collect(),
        Scope::EntityUnpaired { side } => (0..units.len())
            .filter(|&i| matches!(&units[i], DecisionUnit::Unpaired { side: s, .. } if *s == side))
            .collect(),
    }
}

/// Evaluates one feature. Empty scopes yield 0.
pub fn evaluate(spec: &FeatureSpec, units: &[DecisionUnit], scores: &[f32]) -> f32 {
    let idx = members(spec, units, scores);
    if idx.is_empty() {
        return 0.0;
    }
    let vals: Vec<f32> = idx.iter().map(|&i| scores[i]).collect();
    match spec.stat {
        Stat::Count => idx.len() as f32,
        Stat::Sum => vals.iter().sum(),
        Stat::Mean => mean(&vals),
        Stat::Min => vals.iter().copied().fold(f32::INFINITY, f32::min),
        Stat::Max => vals.iter().copied().fold(f32::NEG_INFINITY, f32::max),
        Stat::Median => median(&vals),
        Stat::Range => {
            let max = vals.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let min = vals.iter().copied().fold(f32::INFINITY, f32::min);
            max - min
        }
    }
}

/// The full engineered feature vector of a record.
pub fn featurize(specs: &[FeatureSpec], units: &[DecisionUnit], scores: &[f32]) -> Vec<f32> {
    specs.iter().map(|s| evaluate(s, units, scores)).collect()
}

/// Inverse feature engineering: how a unit contributed to a feature.
///
/// Returns `(unit_index, weight)` pairs such that distributing a trained
/// coefficient `c` gives unit `i` the share `c · weight`:
///
/// * mean/count → `1/N` each (the paper's worked example);
/// * sum → `1` each;
/// * min/max → `1` on the extremal unit;
/// * median → `1` on the median unit (`0.5` each on the two middles);
/// * range → `+1` on the max unit, `−1` on the min unit.
pub fn contributions(
    spec: &FeatureSpec,
    units: &[DecisionUnit],
    scores: &[f32],
) -> Vec<(usize, f32)> {
    let idx = members(spec, units, scores);
    if idx.is_empty() {
        return Vec::new();
    }
    let vals: Vec<f32> = idx.iter().map(|&i| scores[i]).collect();
    match spec.stat {
        Stat::Count | Stat::Mean => {
            let w = 1.0 / idx.len() as f32;
            idx.into_iter().map(|i| (i, w)).collect()
        }
        Stat::Sum => idx.into_iter().map(|i| (i, 1.0)).collect(),
        Stat::Max => {
            let k = argmax(&vals).expect("non-empty");
            vec![(idx[k], 1.0)]
        }
        Stat::Min => {
            let k = argmax(&vals.iter().map(|v| -v).collect::<Vec<_>>()).expect("non-empty");
            vec![(idx[k], 1.0)]
        }
        Stat::Median => {
            let mut order: Vec<usize> = (0..vals.len()).collect();
            order.sort_by(|&a, &b| vals[a].total_cmp(&vals[b]));
            let n = order.len();
            if n % 2 == 1 {
                vec![(idx[order[n / 2]], 1.0)]
            } else {
                vec![(idx[order[n / 2 - 1]], 0.5), (idx[order[n / 2]], 0.5)]
            }
        }
        Stat::Range => {
            let kmax = argmax(&vals).expect("non-empty");
            let kmin = argmax(&vals.iter().map(|v| -v).collect::<Vec<_>>()).expect("non-empty");
            if kmax == kmin {
                vec![(idx[kmax], 0.0)]
            } else {
                vec![(idx[kmax], 1.0), (idx[kmin], -1.0)]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TokenRef;

    fn unit_paired(attr: usize, sim: f32) -> DecisionUnit {
        DecisionUnit::Paired {
            left: TokenRef::new(attr, 0),
            right: TokenRef::new(attr, 0),
            similarity: sim,
        }
    }

    fn unit_unpaired(attr: usize, side: Side) -> DecisionUnit {
        DecisionUnit::Unpaired { token: TokenRef::new(attr, 1), side }
    }

    fn sample() -> (Vec<DecisionUnit>, Vec<f32>) {
        let units = vec![
            unit_paired(0, 0.9),
            unit_paired(0, 0.7),
            unit_unpaired(0, Side::Left),
            unit_paired(1, 0.8),
            unit_unpaired(1, Side::Right),
        ];
        let scores = vec![0.8, 0.4, -0.6, 0.5, -0.9];
        (units, scores)
    }

    #[test]
    fn full_specs_counts() {
        // 2 attrs: 2*14 attribute features + 21 record + 4 entity = 53.
        assert_eq!(full_specs(2).len(), 53);
        assert_eq!(simplified_specs().len(), 6);
    }

    #[test]
    fn attribute_scope_selects_correct_units() {
        let (units, scores) = sample();
        let spec = FeatureSpec { scope: Scope::Attribute { attr: 0, paired: true }, stat: Stat::Count };
        assert_eq!(members(&spec, &units, &scores), vec![0, 1]);
        assert_eq!(evaluate(&spec, &units, &scores), 2.0);
    }

    #[test]
    fn record_polarity_scopes() {
        let (units, scores) = sample();
        let pos = FeatureSpec { scope: Scope::Record { polarity: Polarity::Positive }, stat: Stat::Count };
        let neg = FeatureSpec { scope: Scope::Record { polarity: Polarity::Negative }, stat: Stat::Count };
        assert_eq!(evaluate(&pos, &units, &scores), 3.0);
        assert_eq!(evaluate(&neg, &units, &scores), 2.0);
    }

    #[test]
    fn entity_scope_counts_unpaired_per_side() {
        let (units, scores) = sample();
        let l = FeatureSpec { scope: Scope::EntityUnpaired { side: Side::Left }, stat: Stat::Count };
        let r = FeatureSpec { scope: Scope::EntityUnpaired { side: Side::Right }, stat: Stat::Count };
        assert_eq!(evaluate(&l, &units, &scores), 1.0);
        assert_eq!(evaluate(&r, &units, &scores), 1.0);
    }

    #[test]
    fn stats_compute_correct_values() {
        let (units, scores) = sample();
        let scope = Scope::Record { polarity: Polarity::All };
        let get = |stat| evaluate(&FeatureSpec { scope, stat }, &units, &scores);
        assert_eq!(get(Stat::Count), 5.0);
        assert!((get(Stat::Sum) - 0.2).abs() < 1e-6);
        assert!((get(Stat::Mean) - 0.04).abs() < 1e-6);
        assert_eq!(get(Stat::Min), -0.9);
        assert_eq!(get(Stat::Max), 0.8);
        assert_eq!(get(Stat::Median), 0.4);
        assert!((get(Stat::Range) - 1.7).abs() < 1e-6);
    }

    #[test]
    fn empty_scope_is_zero_and_contribution_free() {
        let (units, scores) = sample();
        let spec = FeatureSpec { scope: Scope::Attribute { attr: 7, paired: true }, stat: Stat::Mean };
        assert_eq!(evaluate(&spec, &units, &scores), 0.0);
        assert!(contributions(&spec, &units, &scores).is_empty());
    }

    #[test]
    fn mean_contributions_are_one_over_n() {
        let (units, scores) = sample();
        let spec = FeatureSpec { scope: Scope::Record { polarity: Polarity::All }, stat: Stat::Mean };
        let c = contributions(&spec, &units, &scores);
        assert_eq!(c.len(), 5);
        for (_, w) in &c {
            assert!((w - 0.2).abs() < 1e-6);
        }
    }

    #[test]
    fn extremal_contributions_land_on_extremal_units() {
        let (units, scores) = sample();
        let scope = Scope::Record { polarity: Polarity::All };
        let max_c = contributions(&FeatureSpec { scope, stat: Stat::Max }, &units, &scores);
        assert_eq!(max_c, vec![(0, 1.0)]); // score 0.8
        let min_c = contributions(&FeatureSpec { scope, stat: Stat::Min }, &units, &scores);
        assert_eq!(min_c, vec![(4, 1.0)]); // score −0.9
        let range_c = contributions(&FeatureSpec { scope, stat: Stat::Range }, &units, &scores);
        assert!(range_c.contains(&(0, 1.0)) && range_c.contains(&(4, -1.0)));
    }

    #[test]
    fn median_contribution_splits_even_sets() {
        let (units, scores) = sample();
        let spec = FeatureSpec {
            scope: Scope::Record { polarity: Polarity::Positive },
            stat: Stat::Median,
        };
        // Positive scores: 0.8, 0.4, 0.5 → odd count, single median at 0.5.
        let c = contributions(&spec, &units, &scores);
        assert_eq!(c, vec![(3, 1.0)]);
    }

    #[test]
    fn contribution_mass_is_conserved_for_linear_stats() {
        // Sum: Σ w_i · score_i must equal the feature value.
        let (units, scores) = sample();
        for stat in [Stat::Sum, Stat::Mean] {
            let spec = FeatureSpec { scope: Scope::Record { polarity: Polarity::All }, stat };
            let value = evaluate(&spec, &units, &scores);
            let recon: f32 = contributions(&spec, &units, &scores)
                .iter()
                .map(|(i, w)| w * scores[*i])
                .sum();
            assert!((value - recon).abs() < 1e-5, "{stat:?}: {value} vs {recon}");
        }
    }

    #[test]
    fn featurize_matches_specwise_evaluation() {
        let (units, scores) = sample();
        let specs = full_specs(2);
        let v = featurize(&specs, &units, &scores);
        assert_eq!(v.len(), specs.len());
        for (spec, val) in specs.iter().zip(&v) {
            assert_eq!(*val, evaluate(spec, &units, &scores));
        }
    }
}
