//! The decision-unit relevance scorer (paper §4.2).
//!
//! Each unit is described by two symmetric features of its token embeddings
//! — their mean and their absolute difference (challenges R3/R5; the missing
//! side of an unpaired unit is the zero `[UNP]` embedding) — and a
//! supervised regressor maps those features to a relevance score in
//! `[-1, 1]`. Targets follow Eq. 2's label-mismatch correction (challenge
//! R1) and Eq. 3's per-unit averaging across occurrences.

use crate::record::{Side, TokenizedRecord};
use crate::units::{DecisionUnit, UnitKey};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wym_linalg::{Matrix, Rng64};
use wym_nn::{Mlp, MlpConfig, TrainConfig};

/// Bucket bounds for the `scorer.batch_rows` histogram (rows per forward
/// pass, not nanoseconds — the obs defaults are time-shaped).
const BATCH_ROWS_BOUNDS: &[f64] = &[1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0];

/// Scorer implementations compared in Table 4's "Scorer" ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScorerKind {
    /// The dense feed-forward network (WYM default).
    Neural,
    /// 1 for paired units, 0 for unpaired ("bin. scr." column).
    Binary,
    /// The raw cosine similarity of the unit's embeddings ("cos. sim.").
    CosineSim,
}

/// Relevance-scorer configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScorerConfig {
    /// Which scorer to use.
    pub kind: ScorerKind,
    /// Eq. 2 α: similarity above which a paired unit in a *matching* record
    /// gets target 1 (below: 0).
    pub alpha: f32,
    /// Eq. 2 β: similarity below which a paired unit in a *non-matching*
    /// record gets target −1 (above: 0).
    pub beta: f32,
    /// Training recipe for the neural scorer. Defaults to the paper's 40
    /// epochs × batch 256 (the paper's lr 3e-5 was tuned for 768-d BERT
    /// features; 1e-3 plays the same role at our dimensionality).
    pub train: TrainConfig,
    /// Cap on scorer training rows (occurrences); larger sets are
    /// deterministically subsampled.
    pub max_rows: usize,
    /// Seed for subsampling and weight init.
    pub seed: u64,
}

impl Default for ScorerConfig {
    fn default() -> Self {
        Self {
            kind: ScorerKind::Neural,
            alpha: 0.7,
            beta: 0.5,
            train: TrainConfig { epochs: 40, batch_size: 256, lr: 1e-3, ..TrainConfig::default() },
            max_rows: 30_000,
            seed: 0,
        }
    }
}

/// Symmetric feature vector of a decision unit: `[mean(e_l, e_r) ;
/// |e_l − e_r|]`, with the zero vector standing in for the missing side.
pub fn unit_features(record: &TokenizedRecord, unit: &DecisionUnit) -> Vec<f32> {
    let dim = match unit {
        DecisionUnit::Paired { left, .. } => record.embed(Side::Left, *left).len(),
        DecisionUnit::Unpaired { token, side } => record.embed(*side, *token).len(),
    };
    let mut out = vec![0.0f32; 2 * dim];
    unit_features_into(record, unit, &mut out);
    out
}

/// [`unit_features`] into a caller-provided slice — the batched scorer fills
/// feature-matrix rows directly instead of allocating one `Vec` per unit.
///
/// # Panics
/// Panics in debug builds if `out.len() != 2 * embedding_dim`.
pub fn unit_features_into(record: &TokenizedRecord, unit: &DecisionUnit, out: &mut [f32]) {
    match unit {
        DecisionUnit::Paired { left, right, .. } => {
            let el = record.embed(Side::Left, *left);
            let er = record.embed(Side::Right, *right);
            debug_assert_eq!(out.len(), 2 * el.len());
            let (mean, diff) = out.split_at_mut(el.len());
            for i in 0..el.len() {
                mean[i] = 0.5 * (el[i] + er[i]);
                diff[i] = (el[i] - er[i]).abs();
            }
        }
        DecisionUnit::Unpaired { token, side } => {
            let e = record.embed(*side, *token);
            debug_assert_eq!(out.len(), 2 * e.len());
            // mean(e, 0) = e/2 ; |e − 0| = |e|.
            let (mean, diff) = out.split_at_mut(e.len());
            for i in 0..e.len() {
                mean[i] = 0.5 * e[i];
                diff[i] = e[i].abs();
            }
        }
    }
}

/// Eq. 2 (and its unpaired analogue): the raw per-occurrence target.
pub fn eq2_target(unit: &DecisionUnit, label: bool, alpha: f32, beta: f32) -> f32 {
    let sim = unit.similarity();
    match (unit.is_paired(), label) {
        (true, true) => {
            if sim >= alpha {
                1.0
            } else {
                0.0
            }
        }
        (true, false) => {
            if sim < beta {
                -1.0
            } else {
                0.0
            }
        }
        // Unpaired in a matching record: moved from 1 to 0 (neutral).
        (false, true) => 0.0,
        // Unpaired in a non-matching record: consistent evidence, −1.
        (false, false) => -1.0,
    }
}

/// The fitted relevance scorer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelevanceScorer {
    config: ScorerConfig,
    model: Option<Mlp>,
}

impl RelevanceScorer {
    /// Fits the scorer on labeled records with their discovered units.
    ///
    /// Only the `Neural` kind trains anything; the ablation kinds are
    /// parameterless.
    pub fn fit(
        config: ScorerConfig,
        records: &[(&TokenizedRecord, &[DecisionUnit])],
    ) -> RelevanceScorer {
        let _span = wym_obs::span("score_train");
        if config.kind != ScorerKind::Neural {
            return RelevanceScorer { config, model: None };
        }
        // Pass 1: Eq. 3 aggregation of Eq. 2 targets by unit key.
        let mut sums: HashMap<UnitKey, (f64, usize)> = HashMap::new();
        for (record, units) in records {
            let Some(label) = record.label else { continue };
            for unit in *units {
                let t = eq2_target(unit, label, config.alpha, config.beta);
                let e = sums.entry(unit.key(record)).or_insert((0.0, 0));
                e.0 += t as f64;
                e.1 += 1;
            }
        }
        // Pass 2: one training row per occurrence, target = aggregated mean.
        let mut rows: Vec<(Vec<f32>, f32)> = Vec::new();
        for (record, units) in records {
            if record.label.is_none() {
                continue;
            }
            for unit in *units {
                let (sum, count) = sums[&unit.key(record)];
                let target = (sum / count as f64) as f32;
                rows.push((unit_features(record, unit), target));
            }
        }
        if rows.is_empty() {
            return RelevanceScorer { config, model: None };
        }
        // Deterministic cap.
        let mut rng = Rng64::new(config.seed ^ 0x5C0E);
        if rows.len() > config.max_rows {
            let keep = rng.sample_indices(rows.len(), config.max_rows);
            let mut kept: Vec<(Vec<f32>, f32)> = Vec::with_capacity(config.max_rows);
            for i in keep {
                kept.push(std::mem::take(&mut rows[i]));
            }
            rows = kept;
        }
        let dim = rows[0].0.len();
        let mut x = Matrix::zeros(0, dim);
        let mut y = Matrix::zeros(0, 1);
        for (f, t) in &rows {
            x.push_row(f);
            y.push_row(&[*t]);
        }
        wym_obs::counter_add("score.train_rows", rows.len() as u64);
        let mut mlp = Mlp::new(&MlpConfig::scorer(dim, config.seed));
        let mut train = config.train.clone();
        train.seed = config.seed;
        wym_nn::train::fit(&mut mlp, &x, &y, &train);
        RelevanceScorer { config, model: Some(mlp) }
    }

    /// The configuration the scorer was built with.
    pub fn config(&self) -> &ScorerConfig {
        &self.config
    }

    /// The trained network, when the kind has one (`Neural` with a
    /// non-empty training set; the ablation kinds are parameterless).
    pub fn model(&self) -> Option<&Mlp> {
        self.model.as_ref()
    }

    /// Reassembles a scorer from its configuration and (optional) trained
    /// network — the inverse of [`RelevanceScorer::config`] +
    /// [`RelevanceScorer::model`], used by the model artifact loader.
    pub fn from_parts(config: ScorerConfig, model: Option<Mlp>) -> RelevanceScorer {
        RelevanceScorer { config, model }
    }

    /// Scores every unit of a record, in `[-1, 1]`.
    ///
    /// One-record convenience over [`Self::score_batch`]; a single forward
    /// pass over one feature matrix either way.
    pub fn score_units(&self, record: &TokenizedRecord, units: &[DecisionUnit]) -> Vec<f32> {
        self.score_batch(&[(record, units)]).pop().unwrap_or_default()
    }

    /// Scores the units of many records through **one** batched forward
    /// pass: all units stack into a single feature matrix, the MLP runs
    /// once, and the score rows split back per record. Because every GEMM
    /// output row depends only on its own input row, the result is
    /// bit-identical to scoring each record separately — batching is purely
    /// a throughput lever (one blocked GEMM at full row count instead of
    /// many short ones). Emits the `scorer.batch_rows` histogram and
    /// `scorer.forward_ns` counter when obs recording is enabled.
    pub fn score_batch(
        &self,
        batch: &[(&TokenizedRecord, &[DecisionUnit])],
    ) -> Vec<Vec<f32>> {
        let _span = wym_obs::span("score");
        let fallback = |units: &[DecisionUnit]| -> Vec<f32> {
            units.iter().map(DecisionUnit::similarity).collect()
        };
        match self.config.kind {
            ScorerKind::Binary => batch
                .iter()
                .map(|(_, units)| {
                    units.iter().map(|u| if u.is_paired() { 1.0 } else { 0.0 }).collect()
                })
                .collect(),
            ScorerKind::CosineSim => batch.iter().map(|(_, units)| fallback(units)).collect(),
            ScorerKind::Neural => {
                let Some(model) = &self.model else {
                    // Untrained fallback: behave like the cosine scorer.
                    return batch.iter().map(|(_, units)| fallback(units)).collect();
                };
                let total: usize = batch.iter().map(|(_, units)| units.len()).sum();
                if total == 0 {
                    return vec![Vec::new(); batch.len()];
                }
                let mut x = Matrix::zeros(total, model.in_dim());
                let mut r = 0;
                for (record, units) in batch {
                    for u in *units {
                        unit_features_into(record, u, x.row_mut(r));
                        r += 1;
                    }
                }
                let obs = wym_obs::enabled();
                if obs {
                    wym_obs::hist_observe_with(
                        "scorer.batch_rows",
                        BATCH_ROWS_BOUNDS,
                        total as f64,
                    );
                }
                let t0 = obs.then(std::time::Instant::now);
                let scores = model.predict(&x);
                if let Some(t0) = t0 {
                    wym_obs::counter_add("scorer.forward_ns", t0.elapsed().as_nanos() as u64);
                }
                let mut out = Vec::with_capacity(batch.len());
                let mut it = scores.into_iter().map(|v| v.clamp(-1.0, 1.0));
                for (_, units) in batch {
                    out.push(it.by_ref().take(units.len()).collect());
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::{discover_units, DiscoveryConfig};
    use crate::record::TokenRef;
    use wym_data::{Entity, RecordPair};
    use wym_embed::Embedder;
    use wym_tokenize::Tokenizer;

    fn tokenized(left: &str, right: &str, label: bool) -> TokenizedRecord {
        let pair = RecordPair {
            id: 0,
            label,
            left: Entity::new(vec![left.to_string()]),
            right: Entity::new(vec![right.to_string()]),
        };
        TokenizedRecord::from_pair(&pair, &Tokenizer::default(), &Embedder::new_static(32, 0))
    }

    #[test]
    fn eq2_matches_the_paper_table() {
        let paired_hi = DecisionUnit::Paired {
            left: TokenRef::new(0, 0),
            right: TokenRef::new(0, 0),
            similarity: 0.9,
        };
        let paired_lo = DecisionUnit::Paired {
            left: TokenRef::new(0, 0),
            right: TokenRef::new(0, 0),
            similarity: 0.2,
        };
        let unpaired = DecisionUnit::Unpaired { token: TokenRef::new(0, 0), side: Side::Left };
        // y = 1
        assert_eq!(eq2_target(&paired_hi, true, 0.7, 0.5), 1.0);
        assert_eq!(eq2_target(&paired_lo, true, 0.7, 0.5), 0.0);
        assert_eq!(eq2_target(&unpaired, true, 0.7, 0.5), 0.0);
        // y = 0
        assert_eq!(eq2_target(&paired_hi, false, 0.7, 0.5), 0.0);
        assert_eq!(eq2_target(&paired_lo, false, 0.7, 0.5), -1.0);
        assert_eq!(eq2_target(&unpaired, false, 0.7, 0.5), -1.0);
    }

    #[test]
    fn unit_features_are_symmetric_under_side_swap() {
        // Swapping which side a surface form comes from must not change the
        // feature vector (challenge R3). Build two mirrored records.
        let r1 = tokenized("alpha", "beta", true);
        let r2 = tokenized("beta", "alpha", true);
        let u = DecisionUnit::Paired {
            left: TokenRef::new(0, 0),
            right: TokenRef::new(0, 0),
            similarity: 0.5,
        };
        let f1 = unit_features(&r1, &u);
        let f2 = unit_features(&r2, &u);
        for (a, b) in f1.iter().zip(&f2) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn unpaired_features_use_zero_unp_embedding() {
        let rec = tokenized("alpha", "zzz", true);
        let u = DecisionUnit::Unpaired { token: TokenRef::new(0, 0), side: Side::Left };
        let f = unit_features(&rec, &u);
        let e = rec.embed(Side::Left, TokenRef::new(0, 0));
        let dim = e.len();
        for i in 0..dim {
            assert!((f[i] - 0.5 * e[i]).abs() < 1e-6);
            assert!((f[dim + i] - e[i].abs()).abs() < 1e-6);
        }
    }

    #[test]
    fn binary_and_cosine_scorers_are_parameterless() {
        let rec = tokenized("camera lens", "camera", true);
        let units = discover_units(&rec, &DiscoveryConfig::default());
        let bin = RelevanceScorer::fit(
            ScorerConfig { kind: ScorerKind::Binary, ..Default::default() },
            &[],
        );
        let scores = bin.score_units(&rec, &units);
        for (u, s) in units.iter().zip(&scores) {
            assert_eq!(*s, if u.is_paired() { 1.0 } else { 0.0 });
        }
        let cos = RelevanceScorer::fit(
            ScorerConfig { kind: ScorerKind::CosineSim, ..Default::default() },
            &[],
        );
        let scores = cos.score_units(&rec, &units);
        for (u, s) in units.iter().zip(&scores) {
            assert_eq!(*s, u.similarity());
        }
    }

    #[test]
    fn neural_scorer_learns_the_eq2_signal() {
        // Matching records share tokens; non-matching do not. After
        // training, paired units from matches must outscore unpaired units
        // from non-matches.
        let cfg = DiscoveryConfig::default();
        let mut records: Vec<TokenizedRecord> = Vec::new();
        for i in 0..30 {
            records.push(tokenized(
                &format!("camera kit{i} zoom"),
                &format!("camera kit{i} zoom"),
                true,
            ));
            records.push(tokenized(&format!("router modem{i}"), &format!("beer ale{i}"), false));
        }
        let units: Vec<Vec<DecisionUnit>> =
            records.iter().map(|r| discover_units(r, &cfg)).collect();
        let train: Vec<(&TokenizedRecord, &[DecisionUnit])> =
            records.iter().zip(units.iter().map(Vec::as_slice)).collect();
        let scorer = RelevanceScorer::fit(
            ScorerConfig {
                train: TrainConfig { epochs: 25, batch_size: 64, lr: 2e-3, ..Default::default() },
                ..Default::default()
            },
            &train,
        );
        let probe_match = tokenized("camera kit5 zoom", "camera kit5 zoom", true);
        let probe_units = discover_units(&probe_match, &cfg);
        let s_paired = scorer.score_units(&probe_match, &probe_units);
        let probe_non = tokenized("router modem3", "beer ale3", false);
        let n_units = discover_units(&probe_non, &cfg);
        let s_unpaired = scorer.score_units(&probe_non, &n_units);
        let mean_p: f32 = s_paired.iter().sum::<f32>() / s_paired.len() as f32;
        let mean_n: f32 = s_unpaired.iter().sum::<f32>() / s_unpaired.len() as f32;
        assert!(
            mean_p > mean_n + 0.3,
            "paired-in-match {mean_p} must exceed unpaired-in-nonmatch {mean_n}"
        );
        // Range check.
        for s in s_paired.iter().chain(&s_unpaired) {
            assert!((-1.0..=1.0).contains(s));
        }
    }

    #[test]
    fn empty_units_score_empty() {
        let rec = tokenized("a", "b", true);
        let scorer = RelevanceScorer::fit(ScorerConfig::default(), &[]);
        assert!(scorer.score_units(&rec, &[]).is_empty());
    }
}
