//! `GetSMPairs` — relaxed Gale–Shapley stable marriage over token
//! similarities (paper §4.1.2).
//!
//! Each token is associated with "a preference list defined by the closest
//! embeddings in the BERT embedding space (according to a threshold applied
//! to their cosine similarity)"; with respect to the original problem the
//! lists have variable length and continuous preferences. Left tokens
//! propose, right tokens hold their best proposal — the classic
//! deferred-acceptance algorithm, O(n²) as the paper notes.

use crate::record::{Side, TokenRef, TokenizedRecord};
use serde::{Deserialize, Serialize};
use wym_linalg::vector::cosine;
use wym_strsim::{jaro_winkler, looks_like_code};

/// Which similarity drives the preference lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairingSim {
    /// Cosine similarity of contextual token embeddings (WYM default).
    Embedding,
    /// Jaro–Winkler over surface forms (Table 4's "j-w dist." ablation).
    JaroWinkler,
}

/// Similarity of a left/right token pair under the chosen measure, with the
/// optional product-code domain heuristic from §5.1.1 (codes only pair when
/// their surface forms are identical).
pub fn token_similarity(
    record: &TokenizedRecord,
    l: TokenRef,
    r: TokenRef,
    sim: PairingSim,
    code_heuristic: bool,
) -> f32 {
    let lt = record.text(Side::Left, l);
    let rt = record.text(Side::Right, r);
    if code_heuristic && (looks_like_code(lt) || looks_like_code(rt)) && lt != rt {
        return 0.0;
    }
    match sim {
        PairingSim::Embedding => cosine(record.embed(Side::Left, l), record.embed(Side::Right, r)),
        PairingSim::JaroWinkler => jaro_winkler(lt, rt),
    }
}

/// One stable assignment `(left, right, similarity)`.
pub type SmPair = (TokenRef, TokenRef, f32);

/// Stable marriage between two token sets: pairs with similarity ≥
/// `threshold`, stable w.r.t. the continuous preferences.
///
/// Returns pairs sorted by descending similarity (deterministic given the
/// inputs). Either side may be larger; leftover tokens simply stay single.
pub fn get_sm_pairs(
    record: &TokenizedRecord,
    left: &[TokenRef],
    right: &[TokenRef],
    threshold: f32,
    sim: PairingSim,
    code_heuristic: bool,
) -> Vec<SmPair> {
    if left.is_empty() || right.is_empty() {
        return Vec::new();
    }
    // Preference lists: candidates above threshold, best first.
    let mut prefs: Vec<Vec<(usize, f32)>> = Vec::with_capacity(left.len());
    for &l in left {
        let mut row: Vec<(usize, f32)> = right
            .iter()
            .enumerate()
            .filter_map(|(j, &r)| {
                let s = token_similarity(record, l, r, sim, code_heuristic);
                (s >= threshold).then_some((j, s))
            })
            .collect();
        row.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        prefs.push(row);
    }

    // Deferred acceptance: left proposes in preference order.
    let mut next: Vec<usize> = vec![0; left.len()];
    let mut engaged_to: Vec<Option<(usize, f32)>> = vec![None; right.len()];
    let mut free: Vec<usize> = (0..left.len()).rev().collect();
    while let Some(i) = free.pop() {
        while next[i] < prefs[i].len() {
            let (j, s) = prefs[i][next[i]];
            next[i] += 1;
            match engaged_to[j] {
                None => {
                    engaged_to[j] = Some((i, s));
                    break;
                }
                Some((other, other_s)) => {
                    // The right token prefers the higher similarity; ties go
                    // to the earlier proposer for determinism.
                    if s > other_s {
                        engaged_to[j] = Some((i, s));
                        free.push(other);
                        break;
                    }
                }
            }
        }
    }

    let mut out: Vec<SmPair> = engaged_to
        .into_iter()
        .enumerate()
        .filter_map(|(j, e)| e.map(|(i, s)| (left[i], right[j], s)))
        .collect();
    out.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.attr.cmp(&b.0.attr)).then(a.0.pos.cmp(&b.0.pos)));
    out
}

/// Checks stability of a matching: no unmatched pair `(l, r)` with
/// similarity above threshold prefers each other to their assigned partners.
/// Exposed for tests and property checks.
pub fn is_stable(
    record: &TokenizedRecord,
    left: &[TokenRef],
    right: &[TokenRef],
    pairs: &[SmPair],
    threshold: f32,
    sim: PairingSim,
) -> bool {
    let partner_sim_l = |l: &TokenRef| {
        pairs.iter().find(|(pl, _, _)| pl == l).map(|(_, _, s)| *s)
    };
    let partner_sim_r = |r: &TokenRef| {
        pairs.iter().find(|(_, pr, _)| pr == r).map(|(_, _, s)| *s)
    };
    for &l in left {
        for &r in right {
            let s = token_similarity(record, l, r, sim, false);
            if s < threshold {
                continue;
            }
            if pairs.iter().any(|(pl, pr, _)| *pl == l && *pr == r) {
                continue;
            }
            let l_better = partner_sim_l(&l).is_none_or(|cur| s > cur + 1e-6);
            let r_better = partner_sim_r(&r).is_none_or(|cur| s > cur + 1e-6);
            if l_better && r_better {
                return false; // blocking pair
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use wym_data::{Entity, RecordPair};
    use wym_embed::Embedder;
    use wym_tokenize::Tokenizer;

    fn record(left: &str, right: &str) -> TokenizedRecord {
        let pair = RecordPair {
            id: 0,
            label: true,
            left: Entity::new(vec![left.to_string()]),
            right: Entity::new(vec![right.to_string()]),
        };
        TokenizedRecord::from_pair(&pair, &Tokenizer::default(), &Embedder::new_static(48, 0))
    }

    #[test]
    fn identical_tokens_pair_with_top_similarity() {
        let rec = record("digital camera", "camera case");
        let pairs = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.6,
            PairingSim::Embedding,
            false,
        );
        assert_eq!(pairs.len(), 1);
        let (l, r, s) = pairs[0];
        assert_eq!(rec.text(Side::Left, l), "camera");
        assert_eq!(rec.text(Side::Right, r), "camera");
        assert!(s > 0.9);
    }

    #[test]
    fn threshold_filters_pairs() {
        let rec = record("sony", "panasonic");
        let pairs = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.9,
            PairingSim::Embedding,
            false,
        );
        assert!(pairs.is_empty());
    }

    #[test]
    fn one_to_one_within_a_call() {
        // Two identical left tokens compete for one right token: only one wins.
        let rec = record("camera camera", "camera");
        let pairs = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.5,
            PairingSim::Embedding,
            false,
        );
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn matching_is_stable() {
        let rec = record("exch srvr external sa eng", "exch svr external sa");
        let left = rec.left.all_refs();
        let right = rec.right.all_refs();
        let pairs = get_sm_pairs(&rec, &left, &right, 0.5, PairingSim::Embedding, false);
        assert!(is_stable(&rec, &left, &right, &pairs, 0.5, PairingSim::Embedding));
        assert!(!pairs.is_empty());
    }

    #[test]
    fn jaro_winkler_mode_pairs_surface_variants() {
        let rec = record("exchange server", "exchang srver");
        let pairs = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.8,
            PairingSim::JaroWinkler,
            false,
        );
        assert_eq!(pairs.len(), 2, "{pairs:?}");
    }

    #[test]
    fn code_heuristic_blocks_unequal_codes() {
        let rec = record("39400416", "39400417");
        let without = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.5,
            PairingSim::Embedding,
            false,
        );
        assert_eq!(without.len(), 1, "similar codes pair without the heuristic");
        let with = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.5,
            PairingSim::Embedding,
            true,
        );
        assert!(with.is_empty(), "the heuristic must block unequal codes");
    }

    #[test]
    fn code_heuristic_allows_equal_codes() {
        let rec = record("39400416", "39400416");
        let pairs = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.5,
            PairingSim::Embedding,
            true,
        );
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn empty_sides_yield_no_pairs() {
        let rec = record("a b", "c");
        assert!(get_sm_pairs(&rec, &[], &rec.right.all_refs(), 0.1, PairingSim::Embedding, false)
            .is_empty());
        assert!(get_sm_pairs(&rec, &rec.left.all_refs(), &[], 0.1, PairingSim::Embedding, false)
            .is_empty());
    }

    #[test]
    fn output_is_deterministic() {
        let rec = record("digital camera lens kit", "camera digital kit lens");
        let run = || {
            get_sm_pairs(
                &rec,
                &rec.left.all_refs(),
                &rec.right.all_refs(),
                0.3,
                PairingSim::Embedding,
                false,
            )
        };
        assert_eq!(run(), run());
    }
}
