//! `GetSMPairs` — relaxed Gale–Shapley stable marriage over token
//! similarities (paper §4.1.2).
//!
//! Each token is associated with "a preference list defined by the closest
//! embeddings in the BERT embedding space (according to a threshold applied
//! to their cosine similarity)"; with respect to the original problem the
//! lists have variable length and continuous preferences. Left tokens
//! propose, right tokens hold their best proposal — the classic
//! deferred-acceptance algorithm, O(n²) as the paper notes.

use crate::record::{Side, TokenRef, TokenizedRecord};
use serde::{Deserialize, Serialize};
use wym_linalg::kernels;
use wym_linalg::vector::cosine;
use wym_strsim::{jaro_winkler, looks_like_code};

/// Which similarity drives the preference lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairingSim {
    /// Cosine similarity of contextual token embeddings (WYM default).
    Embedding,
    /// Jaro–Winkler over surface forms (Table 4's "j-w dist." ablation).
    JaroWinkler,
}

/// Similarity of a left/right token pair under the chosen measure, with the
/// optional product-code domain heuristic from §5.1.1 (codes only pair when
/// their surface forms are identical).
pub fn token_similarity(
    record: &TokenizedRecord,
    l: TokenRef,
    r: TokenRef,
    sim: PairingSim,
    code_heuristic: bool,
) -> f32 {
    let lt = record.text(Side::Left, l);
    let rt = record.text(Side::Right, r);
    if code_heuristic && (looks_like_code(lt) || looks_like_code(rt)) && lt != rt {
        return 0.0;
    }
    match sim {
        PairingSim::Embedding => cosine(record.embed(Side::Left, l), record.embed(Side::Right, r)),
        PairingSim::JaroWinkler => jaro_winkler(lt, rt),
    }
}

/// One stable assignment `(left, right, similarity)`.
pub type SmPair = (TokenRef, TokenRef, f32);

/// All left×right token similarities of one record, computed once.
///
/// Algorithm 1 probes the same token pairs in up to three discovery passes
/// (θ/η/ε) plus stability checks; recomputing [`token_similarity`] each time
/// costs an O(d) cosine — and three O(d) norms — per probe. The matrix
/// computes every pair once, with per-token norms and `looks_like_code`
/// flags hoisted out of the inner loop.
///
/// Entries are **bit-identical** to [`token_similarity`]: the embedding path
/// evaluates the exact expression of [`wym_linalg::vector::cosine`]
/// (`(dot / (norm_l * norm_r)).clamp(-1, 1)` with the same zero-norm guard),
/// just with the two norms precomputed per token instead of per pair.
/// Embeddings are deliberately *not* pre-normalized into unit vectors —
/// that would reorder the float ops and could flip threshold comparisons.
pub struct SimMatrix {
    n_right: usize,
    left_offsets: Vec<usize>,
    right_offsets: Vec<usize>,
    /// Row-major `[flat_left × flat_right]` measure similarities.
    sims: Vec<f32>,
    /// Pairs suppressed by the §5.1.1 product-code heuristic; empty (= no
    /// pair blocked) when neither side contains a code-like token.
    blocked: Vec<bool>,
    /// Whether `blocked` was computed — [`Self::build_unmasked`] skips it,
    /// which makes `code_heuristic = true` lookups invalid.
    masked: bool,
    /// Similarity lookups served from this matrix (only counted while obs
    /// recording is enabled — see [`Self::note_lookups`]). Relaxed atomic:
    /// the count feeds a cache-reuse metric, never control flow.
    lookups: std::sync::atomic::AtomicU64,
}

impl SimMatrix {
    /// Computes the full similarity matrix of a record under `sim`,
    /// including the §5.1.1 code-heuristic mask (valid for lookups with
    /// either `code_heuristic` setting).
    pub fn build(record: &TokenizedRecord, sim: PairingSim) -> SimMatrix {
        Self::build_impl(record, sim, true)
    }

    /// [`Self::build`] without the §5.1.1 mask. [`Self::sim`] on the result
    /// must be called with `code_heuristic = false`; in exchange the token
    /// surface forms are never scanned. Discovery uses this when its config
    /// has the heuristic off (the default).
    pub fn build_unmasked(record: &TokenizedRecord, sim: PairingSim) -> SimMatrix {
        Self::build_impl(record, sim, false)
    }

    fn build_impl(record: &TokenizedRecord, sim: PairingSim, masked: bool) -> SimMatrix {
        let left_offsets = Self::offsets(&record.left.tokens);
        let right_offsets = Self::offsets(&record.right.tokens);
        let n_left = record.left.token_count();
        let n_right = record.right.token_count();

        let mut sims = vec![0.0f32; n_left * n_right];
        match sim {
            PairingSim::Embedding => {
                let left_emb: Vec<&[f32]> =
                    record.left.embeds.iter().flatten().map(Vec::as_slice).collect();
                let right_emb: Vec<&[f32]> =
                    record.right.embeds.iter().flatten().map(Vec::as_slice).collect();
                // `kernels::cosine` computes `a·b`, `a·a`, and `b·b` in one
                // fused pass, and its self-products are bit-identical to a
                // standalone `kernels::dot(e, e)` (same lane recipe). So
                // hoisting the norms — `dot(e, e).sqrt()` once per token
                // instead of once per pair — and taking only the cross dot
                // in the inner loop reproduces `vector::cosine` bit for bit
                // while the dispatched dot kernel does the O(d) work.
                let left_norm: Vec<f32> =
                    left_emb.iter().map(|e| kernels::dot(e, e).sqrt()).collect();
                let right_norm: Vec<f32> =
                    right_emb.iter().map(|e| kernels::dot(e, e).sqrt()).collect();
                for i in 0..n_left {
                    let row = &mut sims[i * n_right..(i + 1) * n_right];
                    if left_norm[i] <= f32::EPSILON {
                        continue; // cosine defines zero-vector similarity as 0
                    }
                    let a = left_emb[i];
                    for (j, slot) in row.iter_mut().enumerate() {
                        if right_norm[j] > f32::EPSILON {
                            let ab = kernels::dot(a, right_emb[j]);
                            *slot = (ab / (left_norm[i] * right_norm[j])).clamp(-1.0, 1.0);
                        }
                    }
                }
            }
            PairingSim::JaroWinkler => {
                let left_toks: Vec<&str> =
                    record.left.tokens.iter().flatten().map(String::as_str).collect();
                let right_toks: Vec<&str> =
                    record.right.tokens.iter().flatten().map(String::as_str).collect();
                for i in 0..n_left {
                    let row = &mut sims[i * n_right..(i + 1) * n_right];
                    for (j, slot) in row.iter_mut().enumerate() {
                        *slot = jaro_winkler(left_toks[i], right_toks[j]);
                    }
                }
            }
        }

        let mut blocked = Vec::new();
        if masked {
            let left_toks: Vec<&str> =
                record.left.tokens.iter().flatten().map(String::as_str).collect();
            let right_toks: Vec<&str> =
                record.right.tokens.iter().flatten().map(String::as_str).collect();
            let left_code: Vec<bool> = left_toks.iter().map(|t| looks_like_code(t)).collect();
            let right_code: Vec<bool> = right_toks.iter().map(|t| looks_like_code(t)).collect();
            if left_code.iter().any(|&c| c) || right_code.iter().any(|&c| c) {
                blocked = vec![false; n_left * n_right];
                for i in 0..n_left {
                    for j in 0..n_right {
                        blocked[i * n_right + j] = (left_code[i] || right_code[j])
                            && left_toks[i] != right_toks[j];
                    }
                }
            }
        }

        SimMatrix {
            n_right,
            left_offsets,
            right_offsets,
            sims,
            blocked,
            masked,
            lookups: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of similarity entries the matrix holds (`|L| × |R|`). Each was
    /// computed exactly once at build time, so `lookups() / entries()` is the
    /// matrix's reuse factor — the quantity the `simmatrix.hit_rate`
    /// histogram tracks per record.
    pub fn entries(&self) -> usize {
        self.sims.len()
    }

    /// Lookups served so far (0 unless obs recording was enabled).
    pub fn lookups(&self) -> u64 {
        self.lookups.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Counts `n` served lookups. Callers gate on [`wym_obs::enabled`] and
    /// report at probe granularity (`|left| × |right|` per stable-marriage
    /// probe), keeping the disabled path free of atomics in inner loops.
    pub fn note_lookups(&self, n: u64) {
        self.lookups.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    fn offsets(tokens: &[Vec<String>]) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(tokens.len());
        let mut acc = 0;
        for attr in tokens {
            offsets.push(acc);
            acc += attr.len();
        }
        offsets
    }

    #[inline]
    fn index(&self, l: TokenRef, r: TokenRef) -> usize {
        let li = self.left_offsets[l.attr as usize] + l.pos as usize;
        let rj = self.right_offsets[r.attr as usize] + r.pos as usize;
        li * self.n_right + rj
    }

    /// Cached similarity of a left/right token pair; identical to
    /// [`token_similarity`] with the same `code_heuristic` setting.
    #[inline]
    pub fn sim(&self, l: TokenRef, r: TokenRef, code_heuristic: bool) -> f32 {
        debug_assert!(
            !code_heuristic || self.masked,
            "code_heuristic lookup on a matrix from build_unmasked"
        );
        let idx = self.index(l, r);
        if code_heuristic && !self.blocked.is_empty() && self.blocked[idx] {
            return 0.0;
        }
        self.sims[idx]
    }
}

/// Stable marriage between two token sets: pairs with similarity ≥
/// `threshold`, stable w.r.t. the continuous preferences.
///
/// Returns pairs sorted by descending similarity (deterministic given the
/// inputs). Either side may be larger; leftover tokens simply stay single.
pub fn get_sm_pairs(
    record: &TokenizedRecord,
    left: &[TokenRef],
    right: &[TokenRef],
    threshold: f32,
    sim: PairingSim,
    code_heuristic: bool,
) -> Vec<SmPair> {
    sm_pairs_with(left, right, threshold, |l, r| {
        token_similarity(record, l, r, sim, code_heuristic)
    })
}

/// [`get_sm_pairs`] over a precomputed [`SimMatrix`]: identical output,
/// no similarity recomputation.
///
/// Builds the preference lists by walking matrix rows directly — the flat
/// right-token indices are resolved once per call instead of once per
/// (left, right) lookup in the O(|L|·|R|) scan. The list contents (values,
/// candidate order) are exactly what per-lookup [`SimMatrix::sim`] yields.
pub fn get_sm_pairs_cached(
    matrix: &SimMatrix,
    left: &[TokenRef],
    right: &[TokenRef],
    threshold: f32,
    code_heuristic: bool,
) -> Vec<SmPair> {
    if left.is_empty() || right.is_empty() {
        return Vec::new();
    }
    debug_assert!(
        !code_heuristic || matrix.masked,
        "code_heuristic lookup on a matrix from build_unmasked"
    );
    if wym_obs::enabled() {
        matrix.note_lookups((left.len() * right.len()) as u64);
    }
    // Discovery fires several probes per record; a thread-local scratch
    // keeps their working buffers warm instead of paying ~7 allocations
    // per probe. Every buffer is fully rewritten before use, so results
    // do not depend on what ran before on this thread.
    SM_SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        let SmScratch { rjs, pref_arena, pref_ranges, next, engaged_to, free } = scratch;
        rjs.clear();
        rjs.extend(
            right.iter().map(|r| matrix.right_offsets[r.attr as usize] + r.pos as usize),
        );
        let masked = code_heuristic && !matrix.blocked.is_empty();
        pref_arena.clear();
        pref_ranges.clear();
        for &l in left {
            let li = matrix.left_offsets[l.attr as usize] + l.pos as usize;
            let row = &matrix.sims[li * matrix.n_right..(li + 1) * matrix.n_right];
            let start = pref_arena.len();
            if masked {
                let brow = &matrix.blocked[li * matrix.n_right..(li + 1) * matrix.n_right];
                for (j, &rj) in rjs.iter().enumerate() {
                    let s = if brow[rj] { 0.0 } else { row[rj] };
                    if s >= threshold {
                        pref_arena.push((j, s));
                    }
                }
            } else {
                for (j, &rj) in rjs.iter().enumerate() {
                    let s = row[rj];
                    if s >= threshold {
                        pref_arena.push((j, s));
                    }
                }
            }
            pref_arena[start..].sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            pref_ranges.push((start, pref_arena.len()));
        }
        sm_pairs_from_prefs(left, right, pref_arena, pref_ranges, next, engaged_to, free)
    })
}

/// Reusable buffers for one stable-marriage probe (see
/// [`get_sm_pairs_cached`]); lives in a thread-local so repeated probes
/// recycle their allocations.
#[derive(Default)]
struct SmScratch {
    rjs: Vec<usize>,
    pref_arena: Vec<(usize, f32)>,
    pref_ranges: Vec<(usize, usize)>,
    next: Vec<usize>,
    engaged_to: Vec<Option<(usize, f32)>>,
    free: Vec<usize>,
}

thread_local! {
    static SM_SCRATCH: std::cell::RefCell<SmScratch> =
        std::cell::RefCell::new(SmScratch::default());
}

/// Deferred acceptance over an arbitrary similarity oracle — the shared
/// core of the cached and uncached entry points, so their outputs agree
/// by construction.
fn sm_pairs_with(
    left: &[TokenRef],
    right: &[TokenRef],
    threshold: f32,
    similarity: impl Fn(TokenRef, TokenRef) -> f32,
) -> Vec<SmPair> {
    if left.is_empty() || right.is_empty() {
        return Vec::new();
    }
    // Preference lists: candidates above threshold, best first. One flat
    // arena plus per-left ranges instead of a Vec per left token — same
    // lists, one allocation. The sorts are unstable: both comparators break
    // similarity ties by index, i.e. they are total orders over the rows,
    // so the sorted result is identical to a stable sort's.
    let mut pref_arena: Vec<(usize, f32)> = Vec::with_capacity(left.len() * right.len());
    let mut pref_ranges: Vec<(usize, usize)> = Vec::with_capacity(left.len());
    for &l in left {
        let start = pref_arena.len();
        for (j, &r) in right.iter().enumerate() {
            let s = similarity(l, r);
            if s >= threshold {
                pref_arena.push((j, s));
            }
        }
        pref_arena[start..].sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        pref_ranges.push((start, pref_arena.len()));
    }
    let (mut next, mut engaged_to, mut free) = (Vec::new(), Vec::new(), Vec::new());
    sm_pairs_from_prefs(
        left,
        right,
        &pref_arena,
        &pref_ranges,
        &mut next,
        &mut engaged_to,
        &mut free,
    )
}

/// Deferred acceptance over already-built preference lists (`pref_arena`
/// segment `pref_ranges[i]` = left token `i`'s candidates, best first).
/// `next`/`engaged_to`/`free` are caller-provided working buffers; their
/// incoming contents are discarded.
fn sm_pairs_from_prefs(
    left: &[TokenRef],
    right: &[TokenRef],
    pref_arena: &[(usize, f32)],
    pref_ranges: &[(usize, usize)],
    next: &mut Vec<usize>,
    engaged_to: &mut Vec<Option<(usize, f32)>>,
    free: &mut Vec<usize>,
) -> Vec<SmPair> {
    let prefs = |i: usize| -> &[(usize, f32)] {
        let (start, end) = pref_ranges[i];
        &pref_arena[start..end]
    };

    // Deferred acceptance: left proposes in preference order.
    next.clear();
    next.resize(left.len(), 0);
    engaged_to.clear();
    engaged_to.resize(right.len(), None);
    free.clear();
    free.extend((0..left.len()).rev());
    while let Some(i) = free.pop() {
        while next[i] < prefs(i).len() {
            let (j, s) = prefs(i)[next[i]];
            next[i] += 1;
            match engaged_to[j] {
                None => {
                    engaged_to[j] = Some((i, s));
                    break;
                }
                Some((other, other_s)) => {
                    // The right token prefers the higher similarity; ties go
                    // to the earlier proposer for determinism.
                    if s > other_s {
                        engaged_to[j] = Some((i, s));
                        free.push(other);
                        break;
                    }
                }
            }
        }
    }

    let mut out: Vec<SmPair> = engaged_to
        .iter()
        .enumerate()
        .filter_map(|(j, e)| e.map(|(i, s)| (left[i], right[j], s)))
        .collect();
    out.sort_unstable_by(|a, b| {
        b.2.total_cmp(&a.2).then(a.0.attr.cmp(&b.0.attr)).then(a.0.pos.cmp(&b.0.pos))
    });
    out
}

/// Checks stability of a matching: no unmatched pair `(l, r)` with
/// similarity above threshold prefers each other to their assigned partners.
/// Exposed for tests and property checks.
pub fn is_stable(
    record: &TokenizedRecord,
    left: &[TokenRef],
    right: &[TokenRef],
    pairs: &[SmPair],
    threshold: f32,
    sim: PairingSim,
) -> bool {
    is_stable_cached(&SimMatrix::build(record, sim), left, right, pairs, threshold)
}

/// [`is_stable`] over a precomputed [`SimMatrix`]. Partner similarities are
/// looked up in hash maps built once, so the check is O(|L|·|R|) instead of
/// O(|L|·|R|·|pairs|) — property tests on larger records stay fast.
pub fn is_stable_cached(
    matrix: &SimMatrix,
    left: &[TokenRef],
    right: &[TokenRef],
    pairs: &[SmPair],
    threshold: f32,
) -> bool {
    // Partner lookups keyed by position in `left`/`right` instead of by
    // hashing `TokenRef`s: the slices are a few dozen tokens at most, so a
    // linear position scan per pair beats SipHash and the verdict is the
    // same — each token appears in at most one pair.
    let mut partner_of_l: Vec<Option<(TokenRef, f32)>> = vec![None; left.len()];
    let mut partner_sim_r: Vec<Option<f32>> = vec![None; right.len()];
    for &(pl, pr, s) in pairs {
        if let Some(i) = left.iter().position(|&l| l == pl) {
            partner_of_l[i] = Some((pr, s));
        }
        if let Some(j) = right.iter().position(|&r| r == pr) {
            partner_sim_r[j] = Some(s);
        }
    }
    for (i, &l) in left.iter().enumerate() {
        for (j, &r) in right.iter().enumerate() {
            let s = matrix.sim(l, r, false);
            if s < threshold {
                continue;
            }
            let l_partner = partner_of_l[i];
            if l_partner.is_some_and(|(pr, _)| pr == r) {
                continue; // already matched to each other
            }
            let l_better = l_partner.is_none_or(|(_, cur)| s > cur + 1e-6);
            let r_better = partner_sim_r[j].is_none_or(|cur| s > cur + 1e-6);
            if l_better && r_better {
                return false; // blocking pair
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use wym_data::{Entity, RecordPair};
    use wym_embed::Embedder;
    use wym_tokenize::Tokenizer;

    fn record(left: &str, right: &str) -> TokenizedRecord {
        let pair = RecordPair {
            id: 0,
            label: true,
            left: Entity::new(vec![left.to_string()]),
            right: Entity::new(vec![right.to_string()]),
        };
        TokenizedRecord::from_pair(&pair, &Tokenizer::default(), &Embedder::new_static(48, 0))
    }

    #[test]
    fn identical_tokens_pair_with_top_similarity() {
        let rec = record("digital camera", "camera case");
        let pairs = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.6,
            PairingSim::Embedding,
            false,
        );
        assert_eq!(pairs.len(), 1);
        let (l, r, s) = pairs[0];
        assert_eq!(rec.text(Side::Left, l), "camera");
        assert_eq!(rec.text(Side::Right, r), "camera");
        assert!(s > 0.9);
    }

    #[test]
    fn threshold_filters_pairs() {
        let rec = record("sony", "panasonic");
        let pairs = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.9,
            PairingSim::Embedding,
            false,
        );
        assert!(pairs.is_empty());
    }

    #[test]
    fn one_to_one_within_a_call() {
        // Two identical left tokens compete for one right token: only one wins.
        let rec = record("camera camera", "camera");
        let pairs = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.5,
            PairingSim::Embedding,
            false,
        );
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn matching_is_stable() {
        let rec = record("exch srvr external sa eng", "exch svr external sa");
        let left = rec.left.all_refs();
        let right = rec.right.all_refs();
        let pairs = get_sm_pairs(&rec, &left, &right, 0.5, PairingSim::Embedding, false);
        assert!(is_stable(&rec, &left, &right, &pairs, 0.5, PairingSim::Embedding));
        assert!(!pairs.is_empty());
    }

    #[test]
    fn jaro_winkler_mode_pairs_surface_variants() {
        let rec = record("exchange server", "exchang srver");
        let pairs = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.8,
            PairingSim::JaroWinkler,
            false,
        );
        assert_eq!(pairs.len(), 2, "{pairs:?}");
    }

    #[test]
    fn code_heuristic_blocks_unequal_codes() {
        let rec = record("39400416", "39400417");
        let without = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.5,
            PairingSim::Embedding,
            false,
        );
        assert_eq!(without.len(), 1, "similar codes pair without the heuristic");
        let with = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.5,
            PairingSim::Embedding,
            true,
        );
        assert!(with.is_empty(), "the heuristic must block unequal codes");
    }

    #[test]
    fn code_heuristic_allows_equal_codes() {
        let rec = record("39400416", "39400416");
        let pairs = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.5,
            PairingSim::Embedding,
            true,
        );
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn empty_sides_yield_no_pairs() {
        let rec = record("a b", "c");
        assert!(get_sm_pairs(&rec, &[], &rec.right.all_refs(), 0.1, PairingSim::Embedding, false)
            .is_empty());
        assert!(get_sm_pairs(&rec, &rec.left.all_refs(), &[], 0.1, PairingSim::Embedding, false)
            .is_empty());
    }

    #[test]
    fn output_is_deterministic() {
        let rec = record("digital camera lens kit", "camera digital kit lens");
        let run = || {
            get_sm_pairs(
                &rec,
                &rec.left.all_refs(),
                &rec.right.all_refs(),
                0.3,
                PairingSim::Embedding,
                false,
            )
        };
        assert_eq!(run(), run());
    }
}
