//! `GetSMPairs` — relaxed Gale–Shapley stable marriage over token
//! similarities (paper §4.1.2).
//!
//! Each token is associated with "a preference list defined by the closest
//! embeddings in the BERT embedding space (according to a threshold applied
//! to their cosine similarity)"; with respect to the original problem the
//! lists have variable length and continuous preferences. Left tokens
//! propose, right tokens hold their best proposal — the classic
//! deferred-acceptance algorithm, O(n²) as the paper notes.

use crate::record::{Side, TokenRef, TokenizedRecord};
use serde::{Deserialize, Serialize};
use wym_embed::QuantizedTable;
use wym_linalg::kernels;
use wym_linalg::vector::cosine;
use wym_strsim::{jaro_winkler, looks_like_code};

/// Which similarity drives the preference lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairingSim {
    /// Cosine similarity of contextual token embeddings (WYM default).
    Embedding,
    /// Jaro–Winkler over surface forms (Table 4's "j-w dist." ablation).
    JaroWinkler,
}

/// Similarity of a left/right token pair under the chosen measure, with the
/// optional product-code domain heuristic from §5.1.1 (codes only pair when
/// their surface forms are identical).
pub fn token_similarity(
    record: &TokenizedRecord,
    l: TokenRef,
    r: TokenRef,
    sim: PairingSim,
    code_heuristic: bool,
) -> f32 {
    let lt = record.text(Side::Left, l);
    let rt = record.text(Side::Right, r);
    if code_heuristic && (looks_like_code(lt) || looks_like_code(rt)) && lt != rt {
        return 0.0;
    }
    match sim {
        PairingSim::Embedding => cosine(record.embed(Side::Left, l), record.embed(Side::Right, r)),
        PairingSim::JaroWinkler => jaro_winkler(lt, rt),
    }
}

/// One stable assignment `(left, right, similarity)`.
pub type SmPair = (TokenRef, TokenRef, f32);

/// All left×right token similarities of one record, computed once.
///
/// Algorithm 1 probes the same token pairs in up to three discovery passes
/// (θ/η/ε) plus stability checks; recomputing [`token_similarity`] each time
/// costs an O(d) cosine — and three O(d) norms — per probe. The matrix
/// computes every pair once, with per-token norms and `looks_like_code`
/// flags hoisted out of the inner loop.
///
/// Entries are **bit-identical** to [`token_similarity`]: the embedding path
/// evaluates the exact expression of [`wym_linalg::vector::cosine`]
/// (`(dot / (norm_l * norm_r)).clamp(-1, 1)` with the same zero-norm guard),
/// just with the two norms precomputed per token instead of per pair.
/// Embeddings are deliberately *not* pre-normalized into unit vectors —
/// that would reorder the float ops and could flip threshold comparisons.
///
/// [`Self::build_tuned`] relaxes this to *observationally* identical: when a
/// similarity `floor` is supplied (the minimum threshold any consumer will
/// filter by), entries **provably below the floor** may hold a cheap
/// int8-approximated cosine instead of the exact one — itself below the
/// floor, hence invisible to every `s >= threshold` filter — while every
/// entry at or above the floor is recomputed through the identical f32
/// expression. See the private `I8Screen` type for the error bound that
/// makes "provably" rigorous, and `WYM_PAIRING=f32` to force the pure-f32
/// fill.
pub struct SimMatrix {
    n_right: usize,
    left_offsets: Vec<usize>,
    right_offsets: Vec<usize>,
    /// Row-major `[flat_left × flat_right]` measure similarities.
    sims: Vec<f32>,
    /// Pairs suppressed by the §5.1.1 product-code heuristic; empty (= no
    /// pair blocked) when neither side contains a code-like token.
    blocked: Vec<bool>,
    /// Whether `blocked` was computed — [`Self::build_unmasked`] skips it,
    /// which makes `code_heuristic = true` lookups invalid.
    masked: bool,
    /// Similarity lookups served from this matrix (only counted while obs
    /// recording is enabled — see [`Self::note_lookups`]). Relaxed atomic:
    /// the count feeds a cache-reuse metric, never control flow.
    lookups: std::sync::atomic::AtomicU64,
}

impl SimMatrix {
    /// Computes the full similarity matrix of a record under `sim`,
    /// including the §5.1.1 code-heuristic mask (valid for lookups with
    /// either `code_heuristic` setting).
    pub fn build(record: &TokenizedRecord, sim: PairingSim) -> SimMatrix {
        Self::build_impl(record, sim, true, None, 1)
    }

    /// [`Self::build`] without the §5.1.1 mask. [`Self::sim`] on the result
    /// must be called with `code_heuristic = false`; in exchange the token
    /// surface forms are never scanned. Discovery uses this when its config
    /// has the heuristic off (the default).
    pub fn build_unmasked(record: &TokenizedRecord, sim: PairingSim) -> SimMatrix {
        Self::build_impl(record, sim, false, None, 1)
    }

    /// [`Self::build`] with the perf knobs exposed: `floor` is the smallest
    /// similarity any downstream consumer can observe (it enables the
    /// int8-screened fill, see [`SimMatrix`] docs on exactness), `n_threads`
    /// shards the row fill across workers for long-description records.
    /// Accepted entries are bit-identical to [`Self::build`] for every
    /// `(floor, n_threads)` combination.
    pub fn build_tuned(
        record: &TokenizedRecord,
        sim: PairingSim,
        masked: bool,
        floor: Option<f32>,
        n_threads: usize,
    ) -> SimMatrix {
        Self::build_impl(record, sim, masked, floor, n_threads)
    }

    fn build_impl(
        record: &TokenizedRecord,
        sim: PairingSim,
        masked: bool,
        floor: Option<f32>,
        n_threads: usize,
    ) -> SimMatrix {
        let left_offsets = Self::offsets(&record.left.tokens);
        let right_offsets = Self::offsets(&record.right.tokens);
        let n_left = record.left.token_count();
        let n_right = record.right.token_count();

        let mut sims = vec![0.0f32; n_left * n_right];
        match sim {
            PairingSim::Embedding => {
                let left_emb: Vec<&[f32]> = record.left.embeds.rows().collect();
                let right_emb: Vec<&[f32]> = record.right.embeds.rows().collect();
                // `kernels::cosine` computes `a·b`, `a·a`, and `b·b` in one
                // fused pass, and its self-products are bit-identical to a
                // standalone `kernels::dot(e, e)` (same lane recipe). So
                // hoisting the norms — `dot(e, e).sqrt()` once per token
                // instead of once per pair — and taking only the cross dot
                // in the inner loop reproduces `vector::cosine` bit for bit
                // while the dispatched dot kernel does the O(d) work.
                let left_norm: Vec<f32> =
                    left_emb.iter().map(|e| kernels::dot(e, e).sqrt()).collect();
                let right_norm: Vec<f32> =
                    right_emb.iter().map(|e| kernels::dot(e, e).sqrt()).collect();
                let screen = floor
                    .filter(|&f| i8_screening_enabled() && f >= I8_SCREEN_MIN_FLOOR)
                    .map(|f| I8Screen::new(&left_emb, &right_emb, &left_norm, &right_norm, f));
                let filler = EmbedFill {
                    left_emb: &left_emb,
                    right_emb: &right_emb,
                    left_norm: &left_norm,
                    right_norm: &right_norm,
                    n_right,
                    screen: screen.as_ref(),
                };

                let threads = wym_par::resolve_threads(n_threads);
                let (screened, exact) = if threads > 1
                    && n_left * n_right >= PAR_MIN_ENTRIES
                    && n_left >= 2
                {
                    // Row-sharded parallel fill: every entry is computed by
                    // exactly one worker with the same per-entry recipe as
                    // the sequential loop, and shards come back in shard
                    // order, so the matrix is identical for any thread
                    // count. Oversharding (4 shards per worker) lets the
                    // work-stealing scheduler absorb skewed rows.
                    let shards = wym_par::map_ranges(
                        n_left,
                        threads.saturating_mul(4),
                        threads,
                        |_, range| {
                            let mut chunk = vec![0.0f32; range.len() * n_right];
                            let stats = filler.fill(range.start, range.end, &mut chunk);
                            (range, chunk, stats)
                        },
                    );
                    let mut totals = (0u64, 0u64);
                    for (range, chunk, (s, e)) in shards {
                        sims[range.start * n_right..range.end * n_right]
                            .copy_from_slice(&chunk);
                        totals.0 += s;
                        totals.1 += e;
                    }
                    totals
                } else {
                    filler.fill(0, n_left, &mut sims)
                };
                if wym_obs::enabled() && screen.is_some() {
                    wym_obs::counter_add("simmatrix.i8_screened", screened);
                    wym_obs::counter_add("simmatrix.i8_exact", exact);
                }
            }
            PairingSim::JaroWinkler => {
                let left_toks: Vec<&str> =
                    record.left.tokens.iter().flatten().map(String::as_str).collect();
                let right_toks: Vec<&str> =
                    record.right.tokens.iter().flatten().map(String::as_str).collect();
                for i in 0..n_left {
                    let row = &mut sims[i * n_right..(i + 1) * n_right];
                    for (j, slot) in row.iter_mut().enumerate() {
                        *slot = jaro_winkler(left_toks[i], right_toks[j]);
                    }
                }
            }
        }

        let mut blocked = Vec::new();
        if masked {
            let left_toks: Vec<&str> =
                record.left.tokens.iter().flatten().map(String::as_str).collect();
            let right_toks: Vec<&str> =
                record.right.tokens.iter().flatten().map(String::as_str).collect();
            let left_code: Vec<bool> = left_toks.iter().map(|t| looks_like_code(t)).collect();
            let right_code: Vec<bool> = right_toks.iter().map(|t| looks_like_code(t)).collect();
            if left_code.iter().any(|&c| c) || right_code.iter().any(|&c| c) {
                blocked = vec![false; n_left * n_right];
                for i in 0..n_left {
                    for j in 0..n_right {
                        blocked[i * n_right + j] = (left_code[i] || right_code[j])
                            && left_toks[i] != right_toks[j];
                    }
                }
            }
        }

        SimMatrix {
            n_right,
            left_offsets,
            right_offsets,
            sims,
            blocked,
            masked,
            lookups: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of similarity entries the matrix holds (`|L| × |R|`). Each was
    /// computed exactly once at build time, so `lookups() / entries()` is the
    /// matrix's reuse factor — the quantity the `simmatrix.hit_rate`
    /// histogram tracks per record.
    pub fn entries(&self) -> usize {
        self.sims.len()
    }

    /// Lookups served so far (0 unless obs recording was enabled).
    pub fn lookups(&self) -> u64 {
        self.lookups.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Counts `n` served lookups. Callers gate on [`wym_obs::enabled`] and
    /// report at probe granularity (`|left| × |right|` per stable-marriage
    /// probe), keeping the disabled path free of atomics in inner loops.
    pub fn note_lookups(&self, n: u64) {
        self.lookups.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    fn offsets(tokens: &[Vec<String>]) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(tokens.len());
        let mut acc = 0;
        for attr in tokens {
            offsets.push(acc);
            acc += attr.len();
        }
        offsets
    }

    #[inline]
    fn index(&self, l: TokenRef, r: TokenRef) -> usize {
        let li = self.left_offsets[l.attr as usize] + l.pos as usize;
        let rj = self.right_offsets[r.attr as usize] + r.pos as usize;
        li * self.n_right + rj
    }

    /// Cached similarity of a left/right token pair; identical to
    /// [`token_similarity`] with the same `code_heuristic` setting.
    #[inline]
    pub fn sim(&self, l: TokenRef, r: TokenRef, code_heuristic: bool) -> f32 {
        debug_assert!(
            !code_heuristic || self.masked,
            "code_heuristic lookup on a matrix from build_unmasked"
        );
        let idx = self.index(l, r);
        if code_heuristic && !self.blocked.is_empty() && self.blocked[idx] {
            return 0.0;
        }
        self.sims[idx]
    }
}

/// Entry-count gate for the row-sharded parallel fill: below this many
/// similarities the per-shard buffers and thread handoff cost more than the
/// dot products they spread out.
const PAR_MIN_ENTRIES: usize = 8192;

/// Smallest `floor` for which int8 screening engages. Below this the i8
/// approximation error bound rejects too few entries to pay for the
/// quantization pass.
const I8_SCREEN_MIN_FLOOR: f32 = 0.2;

/// Slack subtracted from the screening floor (in cosine units) to absorb
/// the difference between the f64 error bound and the f32 kernel-summed dot
/// products it guards: the kernel dot of unit-scale embeddings differs from
/// the exact real dot by far less than this for any supported dimension.
const I8_SCREEN_SLACK: f64 = 1e-4;

/// Smallest embedding dimensionality for which [`worth_i8_screening`]
/// engages the screen in auto mode. Below this the f32 dot is so short
/// that it costs less than the per-entry bound check it would avoid — the
/// screen trades O(d) float work per entry for O(1) overhead, so it needs
/// d large enough (fastText-scale vectors, not the compact trained dims)
/// for that trade to win. Measured break-even on x86 is ~100–128 dims.
pub const I8_SCREEN_MIN_DIM: usize = 128;

/// Smallest similarity-matrix entry count for which [`worth_i8_screening`]
/// engages the screen in auto mode: quantizing both sides costs
/// O((n_left + n_right)·d) up front, which only amortizes once
/// `n_left·n_right` is a few thousand entries (long-description records).
pub const I8_SCREEN_MIN_ENTRIES: usize = 4096;

/// The process-wide pairing-fill policy, from `WYM_PAIRING`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairingMode {
    /// Engage the int8 screen when the cost model says it pays
    /// ([`worth_i8_screening`]).
    Auto,
    /// Engage the screen regardless of size (A/B runs, benches).
    ForceI8,
    /// Pure-f32 fill everywhere.
    ForceF32,
}

/// `WYM_PAIRING=f32` disables int8 screening (forces the pure-f32 fill),
/// `WYM_PAIRING=i8` forces it on for any record size; unset/`auto` applies
/// the [`worth_i8_screening`] cost model. Parsed once per process like
/// `WYM_KERNEL`.
fn pairing_mode() -> PairingMode {
    static MODE: std::sync::OnceLock<PairingMode> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("WYM_PAIRING").as_deref() {
        Ok("f32") => PairingMode::ForceF32,
        Ok("i8") => PairingMode::ForceI8,
        Ok("auto") | Err(_) => PairingMode::Auto,
        Ok(other) => {
            eprintln!("[wym-core] WYM_PAIRING={other:?} not recognized; using auto");
            PairingMode::Auto
        }
    })
}

/// Whether any screen may engage at all (everything except `ForceF32`).
fn i8_screening_enabled() -> bool {
    pairing_mode() != PairingMode::ForceF32
}

/// Whether the int8-screened fill is expected to beat the pure-f32 fill
/// for a `dim`-dimensional embedding matrix with `entries` = n_left ×
/// n_right similarity entries. This is the *production* gate — callers
/// that know the record shape (unit discovery) consult it before passing
/// a `floor` to [`SimMatrix::build_tuned`]; explicit `build_tuned` callers
/// (tests, benches) opt in directly and bypass it.
///
/// The cost model: the screen pays O((n_left+n_right)·d) once to quantize
/// both sides plus O(1) per entry for the bound check, and saves the O(d)
/// f32 dot on every *screened* entry. That wins only when d is large
/// ([`I8_SCREEN_MIN_DIM`]) and the matrix has enough entries to amortize
/// the quantization ([`I8_SCREEN_MIN_ENTRIES`]). `WYM_PAIRING=i8`/`f32`
/// force the decision either way for A/B runs.
pub fn worth_i8_screening(dim: usize, entries: usize) -> bool {
    match pairing_mode() {
        PairingMode::ForceF32 => false,
        PairingMode::ForceI8 => true,
        PairingMode::Auto => dim >= I8_SCREEN_MIN_DIM && entries >= I8_SCREEN_MIN_ENTRIES,
    }
}

/// Per-row quantization metadata of one side, in f64: an upper bound on
/// the dequantization residual `‖a − ã‖₂` (where `ã_i = q_i · scale`), an
/// upper bound on `‖ã‖₂`, the row's norm `‖a‖₂`, and the reciprocals of
/// the norm and the quantization scale (so the fill's per-row threshold
/// precompute multiplies instead of dividing). The reciprocals are never
/// read for a zero-norm row — the fill skips those before touching the
/// metadata — and a non-zero norm implies a non-zero scale.
struct RowMeta {
    err: f64,
    qnorm: f64,
    norm: f64,
    inv: f64,
    inv_scale: f64,
}

/// Derives [`RowMeta`] analytically in O(rows) — no second pass over the
/// elements. Rounding to nearest means every component of `a − ã` is
/// within `±scale/2`, so `‖a − ã‖₂ ≤ scale·√d/2`, and by the triangle
/// inequality `‖ã‖₂ ≤ ‖a‖₂ + err`. The bound is ~3.5× looser than the
/// measured residual (uniform rounding error would give `scale·√(d/12)`),
/// which only costs a few extra exact-path recomputes near the floor —
/// far cheaper than an O(rows·d) f64 sweep per build. `norms` are the
/// hoisted f32 norms; their ~1e-7·d relative rounding is absorbed by
/// [`I8_SCREEN_SLACK`] (1e-4 of cosine, three orders larger).
fn row_meta(norms: &[f32], table: &QuantizedTable) -> Vec<RowMeta> {
    let half_sqrt_d = 0.5 * (table.dim() as f64).sqrt();
    norms
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let scale = table.scale(i) as f64;
            let err = scale * half_sqrt_d;
            let norm = n as f64;
            RowMeta { err, qnorm: norm + err, norm, inv: 1.0 / norm, inv_scale: 1.0 / scale }
        })
        .collect()
}

/// Int8 screening state for the embedding fill: symmetric-quantized copies
/// of both embedding sides plus the per-row error terms of the rigorous
/// dot-product bound
///
/// ```text
/// |a·b − ã·b̃| ≤ ‖a − ã‖·‖b‖ + ‖ã‖·‖b − b̃‖
/// ```
///
/// An entry is screened out (kept at its i8 approximation) only when even
/// `ã·b̃` plus that bound stays below `(floor − slack) · ‖a‖‖b‖` — i.e. when
/// the exact cosine is provably below every downstream threshold, so the
/// stored value can never be observed. All bound arithmetic runs in f64.
struct I8Screen {
    left: QuantizedTable,
    right: QuantizedTable,
    left_meta: Vec<RowMeta>,
    floor: f64,
    /// Per-right-row weights of the threshold/store expressions, hoisted
    /// out of the fill so the hot loop is three multiplies per entry (see
    /// the derivation in [`EmbedFill::fill`]): `‖b‖/s_b`, `err_b/s_b`, and
    /// `s_b/‖b‖`. Zero-norm rows hold 0 and are never read — the fill
    /// skips them before touching the weights.
    r_nw: Vec<f64>,
    r_ew: Vec<f64>,
    r_vs: Vec<f64>,
}

impl I8Screen {
    fn new(
        left_emb: &[&[f32]],
        right_emb: &[&[f32]],
        left_norm: &[f32],
        right_norm: &[f32],
        floor: f32,
    ) -> I8Screen {
        let dim = left_emb
            .iter()
            .chain(right_emb.iter())
            .map(|r| r.len())
            .next()
            .unwrap_or(0);
        let left = QuantizedTable::from_rows(left_emb, dim);
        let right = QuantizedTable::from_rows(right_emb, dim);
        let left_meta = row_meta(left_norm, &left);
        let right_meta = row_meta(right_norm, &right);
        let mut r_nw = Vec::with_capacity(right_meta.len());
        let mut r_ew = Vec::with_capacity(right_meta.len());
        let mut r_vs = Vec::with_capacity(right_meta.len());
        for (j, rb) in right_meta.iter().enumerate() {
            if rb.norm > 0.0 {
                r_nw.push(rb.norm * rb.inv_scale);
                r_ew.push(rb.err * rb.inv_scale);
                r_vs.push(right.scale(j) as f64 * rb.inv);
            } else {
                r_nw.push(0.0);
                r_ew.push(0.0);
                r_vs.push(0.0);
            }
        }
        I8Screen { left, right, left_meta, floor: floor as f64, r_nw, r_ew, r_vs }
    }
}

/// The embedding fill of one [`SimMatrix`] row range — shared by the
/// sequential and row-sharded parallel builds so both produce the same
/// entries by construction.
struct EmbedFill<'a> {
    left_emb: &'a [&'a [f32]],
    right_emb: &'a [&'a [f32]],
    left_norm: &'a [f32],
    right_norm: &'a [f32],
    n_right: usize,
    screen: Option<&'a I8Screen>,
}

impl EmbedFill<'_> {
    /// Fills rows `r0..r1` into `out` (which holds exactly those rows,
    /// starting at row `r0`). Returns `(screened, exact)` entry counts of
    /// the i8 path (both 0 on the pure-f32 path).
    fn fill(&self, r0: usize, r1: usize, out: &mut [f32]) -> (u64, u64) {
        debug_assert_eq!(out.len(), (r1 - r0) * self.n_right);
        let mut screened = 0u64;
        let mut exact = 0u64;
        // Per-row scratch (batched integer dots + needs-exact flags) — one
        // allocation per fill (shard), not per row, and nothing on the
        // pure-f32 path.
        let scratch = if self.screen.is_some() { self.n_right } else { 0 };
        let mut dots: Vec<i32> = vec![0i32; scratch];
        let mut needs: Vec<u8> = vec![0u8; scratch];
        // Non-zero right rows, for the screened-entry count: the counters
        // only track entries the cosine convention doesn't fix at 0.
        let nz_right = self
            .right_norm
            .iter()
            .take(scratch)
            .filter(|&&n| n > f32::EPSILON)
            .count() as u64;
        for i in r0..r1 {
            let row = &mut out[(i - r0) * self.n_right..(i - r0 + 1) * self.n_right];
            if self.left_norm[i] <= f32::EPSILON {
                continue; // cosine defines zero-vector similarity as 0
            }
            let a = self.left_emb[i];
            match self.screen {
                None => {
                    for (j, slot) in row.iter_mut().enumerate() {
                        if self.right_norm[j] > f32::EPSILON {
                            let ab = kernels::dot(a, self.right_emb[j]);
                            *slot =
                                (ab / (self.left_norm[i] * self.right_norm[j])).clamp(-1.0, 1.0);
                        }
                    }
                }
                Some(screen) => {
                    // Batch the whole row of integer dots first (the right
                    // table is contiguous row-major storage), then run the
                    // f64 bound checks over the results: one kernel dispatch
                    // per row and the widened query row is reused across
                    // consecutive table rows inside the kernel.
                    let qa = screen.left.row(i);
                    let (_, rcodes, _) = screen.right.raw_parts();
                    kernels::dot_i8_batch(qa, rcodes, &mut dots);
                    let sa = screen.left.scale(i) as f64;
                    let la = &screen.left_meta[i];
                    // Rearranged screen condition, solved for the raw
                    // integer dot:
                    //
                    //   dot·sa·sb + err_a·‖b‖ + qnorm_a·err_b ≥ cutoff·‖a‖‖b‖
                    //   ⟺ dot ≥ (cutoff·‖a‖ − err_a)/sa · ‖b‖/sb
                    //           − qnorm_a/sa · err_b/sb
                    //
                    // The per-`b` factors (`‖b‖/sb`, `err_b/sb`, `sb/‖b‖`)
                    // are hoisted into the screen at build time, so the hot
                    // loop is two multiplies, a subtract, and a compare per
                    // entry. Comparing against `thr − 1` in f64 keeps the
                    // screen conservative: the integer dot is exact in f64
                    // and the whole margin absorbs the ulp-level rounding of
                    // the threshold expression, so rounding can only send
                    // borderline entries to the exact path — never hide one
                    // from it. Reciprocal multiplies in the stored sub-floor
                    // approximation differ from true divides by ulps,
                    // nowhere near the 1e-4 slack the sub-floor proof sets
                    // aside.
                    let c_norm =
                        ((screen.floor - I8_SCREEN_SLACK) * la.norm - la.err) * la.inv_scale;
                    let c_err = la.qnorm * la.inv_scale;
                    let val_a = sa * la.inv;
                    // Branchless value pass: every slot gets the sub-floor
                    // i8 approximation and a needs-exact flag. Zero-norm
                    // right rows hold zero weights, so they store +0.0 (the
                    // cosine convention) and their flag is ignored below.
                    // With no branches and no per-iteration dependencies the
                    // compiler turns this into packed f64 arithmetic (the
                    // slices are pinned to one length up front so bounds
                    // checks hoist out of the loop).
                    let n = self.n_right;
                    let (r_nw, r_ew, r_vs) =
                        (&screen.r_nw[..n], &screen.r_ew[..n], &screen.r_vs[..n]);
                    let (dq, nq, vals) = (&dots[..n], &mut needs[..n], &mut row[..n]);
                    for j in 0..n {
                        let thr = c_norm * r_nw[j] - c_err * r_ew[j] - 1.0;
                        let dot = dq[j] as f64;
                        vals[j] = ((dot * (val_a * r_vs[j])) as f32).clamp(-1.0, 1.0);
                        nq[j] = (dot >= thr) as u8;
                    }
                    // Sparse exact pass: overwrite the (few) flagged entries
                    // whose exact cosine may reach the floor, with the
                    // identical f32 expression as the pure path, so accepted
                    // entries are bit-identical. Everything left screened is
                    // provably below the floor — itself sub-floor, so no
                    // threshold ≥ floor can ever select it.
                    let mut exact_row = 0u64;
                    for (j, slot) in row.iter_mut().enumerate() {
                        if needs[j] != 0 && self.right_norm[j] > f32::EPSILON {
                            let ab = kernels::dot(a, self.right_emb[j]);
                            *slot =
                                (ab / (self.left_norm[i] * self.right_norm[j])).clamp(-1.0, 1.0);
                            exact_row += 1;
                        }
                    }
                    exact += exact_row;
                    screened += nz_right - exact_row;
                }
            }
        }
        (screened, exact)
    }
}

/// Stable marriage between two token sets: pairs with similarity ≥
/// `threshold`, stable w.r.t. the continuous preferences.
///
/// Returns pairs sorted by descending similarity (deterministic given the
/// inputs). Either side may be larger; leftover tokens simply stay single.
pub fn get_sm_pairs(
    record: &TokenizedRecord,
    left: &[TokenRef],
    right: &[TokenRef],
    threshold: f32,
    sim: PairingSim,
    code_heuristic: bool,
) -> Vec<SmPair> {
    sm_pairs_with(left, right, threshold, |l, r| {
        token_similarity(record, l, r, sim, code_heuristic)
    })
}

/// [`get_sm_pairs`] over a precomputed [`SimMatrix`]: identical output,
/// no similarity recomputation.
///
/// Builds the preference lists by walking matrix rows directly — the flat
/// right-token indices are resolved once per call instead of once per
/// (left, right) lookup in the O(|L|·|R|) scan. The list contents (values,
/// candidate order) are exactly what per-lookup [`SimMatrix::sim`] yields.
pub fn get_sm_pairs_cached(
    matrix: &SimMatrix,
    left: &[TokenRef],
    right: &[TokenRef],
    threshold: f32,
    code_heuristic: bool,
) -> Vec<SmPair> {
    if left.is_empty() || right.is_empty() {
        return Vec::new();
    }
    debug_assert!(
        !code_heuristic || matrix.masked,
        "code_heuristic lookup on a matrix from build_unmasked"
    );
    if wym_obs::enabled() {
        matrix.note_lookups((left.len() * right.len()) as u64);
    }
    // Discovery fires several probes per record; a thread-local scratch
    // keeps their working buffers warm instead of paying ~7 allocations
    // per probe. Every buffer is fully rewritten before use, so results
    // do not depend on what ran before on this thread.
    SM_SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        let SmScratch { rjs, pref_arena, pref_ranges, next, engaged_to, free } = scratch;
        rjs.clear();
        rjs.extend(
            right.iter().map(|r| matrix.right_offsets[r.attr as usize] + r.pos as usize),
        );
        let masked = code_heuristic && !matrix.blocked.is_empty();
        pref_arena.clear();
        pref_ranges.clear();
        for &l in left {
            let li = matrix.left_offsets[l.attr as usize] + l.pos as usize;
            let row = &matrix.sims[li * matrix.n_right..(li + 1) * matrix.n_right];
            let start = pref_arena.len();
            if masked {
                let brow = &matrix.blocked[li * matrix.n_right..(li + 1) * matrix.n_right];
                for (j, &rj) in rjs.iter().enumerate() {
                    let s = if brow[rj] { 0.0 } else { row[rj] };
                    if s >= threshold {
                        pref_arena.push((j, s));
                    }
                }
            } else {
                for (j, &rj) in rjs.iter().enumerate() {
                    let s = row[rj];
                    if s >= threshold {
                        pref_arena.push((j, s));
                    }
                }
            }
            pref_arena[start..].sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            pref_ranges.push((start, pref_arena.len()));
        }
        sm_pairs_from_prefs(left, right, pref_arena, pref_ranges, next, engaged_to, free)
    })
}

/// Reusable buffers for one stable-marriage probe (see
/// [`get_sm_pairs_cached`]); lives in a thread-local so repeated probes
/// recycle their allocations.
#[derive(Default)]
struct SmScratch {
    rjs: Vec<usize>,
    pref_arena: Vec<(usize, f32)>,
    pref_ranges: Vec<(usize, usize)>,
    next: Vec<usize>,
    engaged_to: Vec<Option<(usize, f32)>>,
    free: Vec<usize>,
}

thread_local! {
    static SM_SCRATCH: std::cell::RefCell<SmScratch> =
        std::cell::RefCell::new(SmScratch::default());
}

/// Deferred acceptance over an arbitrary similarity oracle — the shared
/// core of the cached and uncached entry points, so their outputs agree
/// by construction.
fn sm_pairs_with(
    left: &[TokenRef],
    right: &[TokenRef],
    threshold: f32,
    similarity: impl Fn(TokenRef, TokenRef) -> f32,
) -> Vec<SmPair> {
    if left.is_empty() || right.is_empty() {
        return Vec::new();
    }
    // Preference lists: candidates above threshold, best first. One flat
    // arena plus per-left ranges instead of a Vec per left token — same
    // lists, one allocation. The sorts are unstable: both comparators break
    // similarity ties by index, i.e. they are total orders over the rows,
    // so the sorted result is identical to a stable sort's.
    let mut pref_arena: Vec<(usize, f32)> = Vec::with_capacity(left.len() * right.len());
    let mut pref_ranges: Vec<(usize, usize)> = Vec::with_capacity(left.len());
    for &l in left {
        let start = pref_arena.len();
        for (j, &r) in right.iter().enumerate() {
            let s = similarity(l, r);
            if s >= threshold {
                pref_arena.push((j, s));
            }
        }
        pref_arena[start..].sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        pref_ranges.push((start, pref_arena.len()));
    }
    let (mut next, mut engaged_to, mut free) = (Vec::new(), Vec::new(), Vec::new());
    sm_pairs_from_prefs(
        left,
        right,
        &pref_arena,
        &pref_ranges,
        &mut next,
        &mut engaged_to,
        &mut free,
    )
}

/// Deferred acceptance over already-built preference lists (`pref_arena`
/// segment `pref_ranges[i]` = left token `i`'s candidates, best first).
/// `next`/`engaged_to`/`free` are caller-provided working buffers; their
/// incoming contents are discarded.
fn sm_pairs_from_prefs(
    left: &[TokenRef],
    right: &[TokenRef],
    pref_arena: &[(usize, f32)],
    pref_ranges: &[(usize, usize)],
    next: &mut Vec<usize>,
    engaged_to: &mut Vec<Option<(usize, f32)>>,
    free: &mut Vec<usize>,
) -> Vec<SmPair> {
    let prefs = |i: usize| -> &[(usize, f32)] {
        let (start, end) = pref_ranges[i];
        &pref_arena[start..end]
    };

    // Deferred acceptance: left proposes in preference order.
    next.clear();
    next.resize(left.len(), 0);
    engaged_to.clear();
    engaged_to.resize(right.len(), None);
    free.clear();
    free.extend((0..left.len()).rev());
    while let Some(i) = free.pop() {
        while next[i] < prefs(i).len() {
            let (j, s) = prefs(i)[next[i]];
            next[i] += 1;
            match engaged_to[j] {
                None => {
                    engaged_to[j] = Some((i, s));
                    break;
                }
                Some((other, other_s)) => {
                    // The right token prefers the higher similarity; ties go
                    // to the earlier proposer for determinism.
                    if s > other_s {
                        engaged_to[j] = Some((i, s));
                        free.push(other);
                        break;
                    }
                }
            }
        }
    }

    let mut out: Vec<SmPair> = engaged_to
        .iter()
        .enumerate()
        .filter_map(|(j, e)| e.map(|(i, s)| (left[i], right[j], s)))
        .collect();
    out.sort_unstable_by(|a, b| {
        b.2.total_cmp(&a.2).then(a.0.attr.cmp(&b.0.attr)).then(a.0.pos.cmp(&b.0.pos))
    });
    out
}

/// Checks stability of a matching: no unmatched pair `(l, r)` with
/// similarity above threshold prefers each other to their assigned partners.
/// Exposed for tests and property checks.
pub fn is_stable(
    record: &TokenizedRecord,
    left: &[TokenRef],
    right: &[TokenRef],
    pairs: &[SmPair],
    threshold: f32,
    sim: PairingSim,
) -> bool {
    is_stable_cached(&SimMatrix::build(record, sim), left, right, pairs, threshold)
}

/// [`is_stable`] over a precomputed [`SimMatrix`]. Partner similarities are
/// looked up in hash maps built once, so the check is O(|L|·|R|) instead of
/// O(|L|·|R|·|pairs|) — property tests on larger records stay fast.
pub fn is_stable_cached(
    matrix: &SimMatrix,
    left: &[TokenRef],
    right: &[TokenRef],
    pairs: &[SmPair],
    threshold: f32,
) -> bool {
    // Partner lookups keyed by position in `left`/`right` instead of by
    // hashing `TokenRef`s: the slices are a few dozen tokens at most, so a
    // linear position scan per pair beats SipHash and the verdict is the
    // same — each token appears in at most one pair.
    let mut partner_of_l: Vec<Option<(TokenRef, f32)>> = vec![None; left.len()];
    let mut partner_sim_r: Vec<Option<f32>> = vec![None; right.len()];
    for &(pl, pr, s) in pairs {
        if let Some(i) = left.iter().position(|&l| l == pl) {
            partner_of_l[i] = Some((pr, s));
        }
        if let Some(j) = right.iter().position(|&r| r == pr) {
            partner_sim_r[j] = Some(s);
        }
    }
    for (i, &l) in left.iter().enumerate() {
        for (j, &r) in right.iter().enumerate() {
            let s = matrix.sim(l, r, false);
            if s < threshold {
                continue;
            }
            let l_partner = partner_of_l[i];
            if l_partner.is_some_and(|(pr, _)| pr == r) {
                continue; // already matched to each other
            }
            let l_better = l_partner.is_none_or(|(_, cur)| s > cur + 1e-6);
            let r_better = partner_sim_r[j].is_none_or(|cur| s > cur + 1e-6);
            if l_better && r_better {
                return false; // blocking pair
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use wym_data::{Entity, RecordPair};
    use wym_embed::Embedder;
    use wym_tokenize::Tokenizer;

    fn record(left: &str, right: &str) -> TokenizedRecord {
        let pair = RecordPair {
            id: 0,
            label: true,
            left: Entity::new(vec![left.to_string()]),
            right: Entity::new(vec![right.to_string()]),
        };
        TokenizedRecord::from_pair(&pair, &Tokenizer::default(), &Embedder::new_static(48, 0))
    }

    #[test]
    fn identical_tokens_pair_with_top_similarity() {
        let rec = record("digital camera", "camera case");
        let pairs = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.6,
            PairingSim::Embedding,
            false,
        );
        assert_eq!(pairs.len(), 1);
        let (l, r, s) = pairs[0];
        assert_eq!(rec.text(Side::Left, l), "camera");
        assert_eq!(rec.text(Side::Right, r), "camera");
        assert!(s > 0.9);
    }

    #[test]
    fn threshold_filters_pairs() {
        let rec = record("sony", "panasonic");
        let pairs = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.9,
            PairingSim::Embedding,
            false,
        );
        assert!(pairs.is_empty());
    }

    #[test]
    fn one_to_one_within_a_call() {
        // Two identical left tokens compete for one right token: only one wins.
        let rec = record("camera camera", "camera");
        let pairs = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.5,
            PairingSim::Embedding,
            false,
        );
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn matching_is_stable() {
        let rec = record("exch srvr external sa eng", "exch svr external sa");
        let left = rec.left.all_refs();
        let right = rec.right.all_refs();
        let pairs = get_sm_pairs(&rec, &left, &right, 0.5, PairingSim::Embedding, false);
        assert!(is_stable(&rec, &left, &right, &pairs, 0.5, PairingSim::Embedding));
        assert!(!pairs.is_empty());
    }

    #[test]
    fn jaro_winkler_mode_pairs_surface_variants() {
        let rec = record("exchange server", "exchang srver");
        let pairs = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.8,
            PairingSim::JaroWinkler,
            false,
        );
        assert_eq!(pairs.len(), 2, "{pairs:?}");
    }

    #[test]
    fn code_heuristic_blocks_unequal_codes() {
        let rec = record("39400416", "39400417");
        let without = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.5,
            PairingSim::Embedding,
            false,
        );
        assert_eq!(without.len(), 1, "similar codes pair without the heuristic");
        let with = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.5,
            PairingSim::Embedding,
            true,
        );
        assert!(with.is_empty(), "the heuristic must block unequal codes");
    }

    #[test]
    fn code_heuristic_allows_equal_codes() {
        let rec = record("39400416", "39400416");
        let pairs = get_sm_pairs(
            &rec,
            &rec.left.all_refs(),
            &rec.right.all_refs(),
            0.5,
            PairingSim::Embedding,
            true,
        );
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn empty_sides_yield_no_pairs() {
        let rec = record("a b", "c");
        assert!(get_sm_pairs(&rec, &[], &rec.right.all_refs(), 0.1, PairingSim::Embedding, false)
            .is_empty());
        assert!(get_sm_pairs(&rec, &rec.left.all_refs(), &[], 0.1, PairingSim::Embedding, false)
            .is_empty());
    }

    /// A record with enough tokens per side to cross [`PAR_MIN_ENTRIES`]
    /// (so the parallel fill actually shards) and similarities straddling
    /// the discovery floor.
    fn long_record(n: usize) -> TokenizedRecord {
        let words = [
            "camera", "camcorder", "lens", "kit", "sony", "panasonic", "digital", "bundle",
            "zoom", "optical", "sensor", "battery",
        ];
        let mk = |salt: usize| {
            (0..n)
                .map(|i| {
                    let w = words[(i * 7 + salt) % words.len()];
                    if (i + salt) % 3 == 0 { format!("{w}{i}") } else { w.to_string() }
                })
                .collect::<Vec<_>>()
                .join(" ")
        };
        record(&mk(0), &mk(5))
    }

    #[test]
    fn i8_screened_build_matches_f32_at_and_above_floor() {
        let rec = long_record(40);
        let plain = SimMatrix::build_unmasked(&rec, PairingSim::Embedding);
        let floor = 0.6f32;
        let tuned = SimMatrix::build_tuned(&rec, PairingSim::Embedding, false, Some(floor), 1);
        let left = rec.left.all_refs();
        let right = rec.right.all_refs();
        let (mut seen_exact, mut seen_screened) = (false, false);
        for &l in &left {
            for &r in &right {
                let (a, b) = (plain.sim(l, r, false), tuned.sim(l, r, false));
                if a >= floor || b >= floor {
                    assert_eq!(a.to_bits(), b.to_bits(), "entry at/above floor must be exact");
                    seen_exact = true;
                } else if a.to_bits() != b.to_bits() {
                    seen_screened = true; // approximated, but still below floor
                }
            }
        }
        assert!(seen_exact, "record must produce above-floor similarities");
        assert!(seen_screened, "screening must actually engage on this record");
        // Downstream pair sets agree exactly at every discovery threshold.
        for threshold in [0.6f32, 0.65, 0.7, 0.9] {
            assert_eq!(
                get_sm_pairs_cached(&plain, &left, &right, threshold, false),
                get_sm_pairs_cached(&tuned, &left, &right, threshold, false),
                "threshold {threshold}"
            );
        }
    }

    #[test]
    fn tuned_build_is_identical_for_any_thread_count() {
        let rec = long_record(96); // 96×96 > PAR_MIN_ENTRIES: the fill shards
        for floor in [None, Some(0.6f32)] {
            let base = SimMatrix::build_tuned(&rec, PairingSim::Embedding, false, floor, 1);
            for threads in [2usize, 3, 4] {
                let par = SimMatrix::build_tuned(&rec, PairingSim::Embedding, false, floor, threads);
                assert_eq!(
                    base.sims.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                    par.sims.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                    "floor {floor:?}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn sub_floor_screened_entries_stay_below_floor() {
        let rec = long_record(40);
        let floor = 0.6f32;
        let tuned = SimMatrix::build_tuned(&rec, PairingSim::Embedding, false, Some(floor), 1);
        let plain = SimMatrix::build_unmasked(&rec, PairingSim::Embedding);
        for (&approx, &exact) in tuned.sims.iter().zip(&plain.sims) {
            if approx.to_bits() != exact.to_bits() {
                assert!(approx < floor, "screened value {approx} must stay below the floor");
                assert!(exact < floor, "screened entry's exact value {exact} was observable");
            }
        }
    }

    #[test]
    fn output_is_deterministic() {
        let rec = record("digital camera lens kit", "camera digital kit lens");
        let run = || {
            get_sm_pairs(
                &rec,
                &rec.left.all_refs(),
                &rec.right.all_refs(),
                0.3,
                PairingSim::Embedding,
                false,
            )
        };
        assert_eq!(run(), run());
    }
}
