//! The WYM system core — the paper's primary contribution.
//!
//! This crate implements the three-component architecture template of
//! *"An Intrinsically Interpretable Entity Matching System"* (EDBT 2023):
//!
//! 1. **Decision unit generator** ([`pairing`], [`algorithm1`]) — tokenizes
//!    and embeds both entity descriptions, then pairs semantically similar
//!    tokens with a relaxed Gale–Shapley stable marriage run over three
//!    search spaces (intra-attribute θ, inter-attribute η, one-to-many ε).
//! 2. **Decision unit relevance scorer** ([`scorer`]) — a feed-forward
//!    network regressing each unit's isolated contribution in `[-1, 1]`
//!    from symmetric embedding features, trained on the label-mismatch-
//!    corrected targets of Eq. 2/3.
//! 3. **Explainable matcher** ([`features`], [`matcher`]) — feature
//!    engineering over relevance scores (per attribute / entity / record),
//!    a pool of ten interpretable classifiers, and the inverse feature
//!    transformation that turns fitted coefficients into per-unit *impact
//!    scores*.
//!
//! [`pipeline::WymModel`] ties the components into the end-to-end system;
//! [`explanation::Explanation`] is what users consume.

pub mod algorithm1;
pub mod explanation;
pub mod features;
pub mod matcher;
pub mod pairing;
pub mod pipeline;
pub mod record;
pub mod rules;
pub mod scorer;
pub mod state;
pub mod units;

pub use algorithm1::{discover_units, discover_units_with_threads, DiscoveryConfig};
pub use explanation::{ExplainedUnit, Explanation};
pub use pipeline::{Prediction, ProcessedRecord, WymConfig, WymModel};
pub use record::{Side, TokenRef, TokenizedRecord};
pub use rules::UnitRule;
pub use state::{NamedTensor, ScorerNetSpec, WymModelHead, WymModelState};
pub use units::{DecisionUnit, UnitKey};
