//! Rules on decision units — the paper's §6 future-work direction
//! ("the introduction of external knowledge in the approach … in the form
//! of … rules on decision units"), implemented as a post-scoring hook.
//!
//! A [`UnitRule`] inspects a scored decision unit and may override or bound
//! its relevance before the explainable matcher sees it. Rules make domain
//! knowledge explicit *and visible in the explanation*: a unit whose score
//! was forced by a rule still appears in the explanation with its adjusted
//! relevance, so the system stays intrinsically interpretable.

use crate::record::TokenizedRecord;
use crate::units::DecisionUnit;
use serde::{Deserialize, Serialize};
use wym_strsim::looks_like_code;

/// A declarative adjustment of a unit's relevance score.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum UnitRule {
    /// Paired units with *identical* code-like surfaces are decisive match
    /// evidence: force their relevance to `score` (e.g. 1.0). The §5.1.1
    /// error analysis motivates this: "insertion of domain knowledge that
    /// allows only equal product codes to belong to the same paired
    /// decision units" lifted T-AB from 0.645 to 0.754.
    EqualCodesAreMatches {
        /// Relevance assigned to equal-code paired units.
        score: f32,
    },
    /// Unpaired code-like tokens are decisive *non-match* evidence: force
    /// their relevance to `score` (e.g. −1.0).
    UnpairedCodesAreNonMatches {
        /// Relevance assigned to unpaired code units.
        score: f32,
    },
    /// Scales the relevance of every unit assigned to one attribute —
    /// encoding "the attribute Name matters more than the address" (§1).
    AttributeWeight {
        /// Attribute index in the schema.
        attr: usize,
        /// Multiplicative weight (applied then clamped to `[-1, 1]`).
        weight: f32,
    },
    /// Forces the relevance of paired units whose two surfaces are exactly
    /// equal to at least `min_score` (exact agreement can never argue
    /// *against* a match).
    ExactPairsScoreAtLeast {
        /// Lower bound for exact-equal paired units.
        min_score: f32,
    },
}

impl UnitRule {
    /// Applies the rule to one unit, returning the adjusted relevance.
    pub fn apply(&self, record: &TokenizedRecord, unit: &DecisionUnit, relevance: f32) -> f32 {
        let (l, r) = unit.texts(record);
        match *self {
            UnitRule::EqualCodesAreMatches { score } => {
                if unit.is_paired() && l == r && looks_like_code(l) {
                    score
                } else {
                    relevance
                }
            }
            UnitRule::UnpairedCodesAreNonMatches { score } => {
                if !unit.is_paired() {
                    let token = if l == crate::units::UNP { r } else { l };
                    if looks_like_code(token) {
                        return score;
                    }
                }
                relevance
            }
            UnitRule::AttributeWeight { attr, weight } => {
                if unit.attribute() == attr {
                    (relevance * weight).clamp(-1.0, 1.0)
                } else {
                    relevance
                }
            }
            UnitRule::ExactPairsScoreAtLeast { min_score } => {
                if unit.is_paired() && l == r {
                    relevance.max(min_score)
                } else {
                    relevance
                }
            }
        }
    }
}

/// Applies a rule list in order to every unit's relevance.
pub fn apply_rules(
    rules: &[UnitRule],
    record: &TokenizedRecord,
    units: &[DecisionUnit],
    relevances: &[f32],
) -> Vec<f32> {
    debug_assert_eq!(units.len(), relevances.len());
    units
        .iter()
        .zip(relevances)
        .map(|(u, &r)| rules.iter().fold(r, |acc, rule| rule.apply(record, u, acc)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Side, TokenRef};
    use wym_data::{Entity, RecordPair};
    use wym_embed::Embedder;
    use wym_tokenize::Tokenizer;

    fn record() -> TokenizedRecord {
        let pair = RecordPair {
            id: 0,
            label: true,
            left: Entity::new(vec!["camera 39400416", "sony"]),
            right: Entity::new(vec!["camera 39400416", "nikon"]),
        };
        TokenizedRecord::from_pair(&pair, &Tokenizer::default(), &Embedder::new_static(32, 0))
    }

    fn units() -> Vec<DecisionUnit> {
        vec![
            // (camera, camera) — plain paired word.
            DecisionUnit::Paired {
                left: TokenRef::new(0, 0),
                right: TokenRef::new(0, 0),
                similarity: 0.9,
            },
            // (39400416, 39400416) — equal codes.
            DecisionUnit::Paired {
                left: TokenRef::new(0, 1),
                right: TokenRef::new(0, 1),
                similarity: 0.95,
            },
            // (sony) — unpaired word.
            DecisionUnit::Unpaired { token: TokenRef::new(1, 0), side: Side::Left },
        ]
    }

    #[test]
    fn equal_codes_rule_targets_only_code_pairs() {
        let rec = record();
        let us = units();
        let out = apply_rules(
            &[UnitRule::EqualCodesAreMatches { score: 1.0 }],
            &rec,
            &us,
            &[0.1, 0.1, -0.5],
        );
        assert_eq!(out, vec![0.1, 1.0, -0.5]);
    }

    #[test]
    fn unpaired_code_rule_ignores_plain_words() {
        let rec = record();
        let us = units();
        let out = apply_rules(
            &[UnitRule::UnpairedCodesAreNonMatches { score: -1.0 }],
            &rec,
            &us,
            &[0.1, 0.2, -0.3],
        );
        // "sony" is not a code: untouched.
        assert_eq!(out, vec![0.1, 0.2, -0.3]);
    }

    #[test]
    fn attribute_weight_scales_and_clamps() {
        let rec = record();
        let us = units();
        let out = apply_rules(
            &[UnitRule::AttributeWeight { attr: 0, weight: 3.0 }],
            &rec,
            &us,
            &[0.5, -0.2, -0.4],
        );
        assert_eq!(out[0], 1.0, "0.5 × 3 clamps to 1");
        assert!((out[1] + 0.6).abs() < 1e-6);
        assert_eq!(out[2], -0.4, "attr 1 untouched");
    }

    #[test]
    fn exact_pairs_floor() {
        let rec = record();
        let us = units();
        let out = apply_rules(
            &[UnitRule::ExactPairsScoreAtLeast { min_score: 0.3 }],
            &rec,
            &us,
            &[-0.9, 0.8, -0.5],
        );
        assert_eq!(out[0], 0.3, "negative exact pair floored");
        assert_eq!(out[1], 0.8, "already above the floor");
        assert_eq!(out[2], -0.5, "unpaired untouched");
    }

    #[test]
    fn rules_compose_in_order() {
        let rec = record();
        let us = units();
        let out = apply_rules(
            &[
                UnitRule::ExactPairsScoreAtLeast { min_score: 0.2 },
                UnitRule::AttributeWeight { attr: 0, weight: 0.5 },
            ],
            &rec,
            &us,
            &[-1.0, -1.0, -1.0],
        );
        // Floored to 0.2, then halved.
        assert!((out[0] - 0.1).abs() < 1e-6);
        assert!((out[1] - 0.1).abs() < 1e-6);
        assert_eq!(out[2], -1.0);
    }

    #[test]
    fn empty_rule_list_is_identity() {
        let rec = record();
        let us = units();
        let rels = vec![0.3, -0.7, 0.0];
        assert_eq!(apply_rules(&[], &rec, &us, &rels), rels);
    }
}
