//! Decision units — "the basic, atomic information content of a record of
//! an EM dataset" (paper §1).

use crate::record::{Side, TokenRef, TokenizedRecord};
use serde::{Deserialize, Serialize};

/// Marker used as the missing side of an unpaired unit (paper §4.2: "we
/// consider unpaired decision units as paired with the special element
/// `[UNP]`, … associated with a zero embedding").
pub const UNP: &str = "[UNP]";

/// A decision unit of a record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DecisionUnit {
    /// A pair of semantically similar tokens, one per entity description.
    Paired {
        /// Token in the left description.
        left: TokenRef,
        /// Token in the right description.
        right: TokenRef,
        /// Cosine similarity (or syntactic similarity in the Jaro–Winkler
        /// ablation) that formed the pair.
        similarity: f32,
    },
    /// A token with no counterpart in the other description.
    Unpaired {
        /// The isolated token.
        token: TokenRef,
        /// Which description it belongs to.
        side: Side,
    },
}

impl DecisionUnit {
    /// True for paired units.
    pub fn is_paired(&self) -> bool {
        matches!(self, DecisionUnit::Paired { .. })
    }

    /// The similarity that formed the unit (0 for unpaired units, matching
    /// the zero `[UNP]` embedding convention).
    pub fn similarity(&self) -> f32 {
        match self {
            DecisionUnit::Paired { similarity, .. } => *similarity,
            DecisionUnit::Unpaired { .. } => 0.0,
        }
    }

    /// Surface forms `(left_text, right_text)`; the missing side of an
    /// unpaired unit is [`UNP`].
    pub fn texts<'a>(&self, record: &'a TokenizedRecord) -> (&'a str, &'a str) {
        match self {
            DecisionUnit::Paired { left, right, .. } => {
                (record.text(Side::Left, *left), record.text(Side::Right, *right))
            }
            DecisionUnit::Unpaired { token, side } => match side {
                Side::Left => (record.text(Side::Left, *token), UNP),
                Side::Right => (UNP, record.text(Side::Right, *token)),
            },
        }
    }

    /// The attribute the unit is assigned to for the structural feature
    /// engineering: the left token's attribute for paired units, the token's
    /// own attribute for unpaired ones.
    pub fn attribute(&self) -> usize {
        match self {
            DecisionUnit::Paired { left, .. } => left.attr as usize,
            DecisionUnit::Unpaired { token, .. } => token.attr as usize,
        }
    }

    /// Provenance-invariant aggregation key (challenge R3: the relevance of
    /// `(a, b)` must equal that of `(b, a)`).
    pub fn key(&self, record: &TokenizedRecord) -> UnitKey {
        let (l, r) = self.texts(record);
        UnitKey::new(l, r)
    }

    /// Token references with their sides (one for unpaired, two for paired).
    pub fn members(&self) -> Vec<(Side, TokenRef)> {
        match self {
            DecisionUnit::Paired { left, right, .. } => {
                vec![(Side::Left, *left), (Side::Right, *right)]
            }
            DecisionUnit::Unpaired { token, side } => vec![(*side, *token)],
        }
    }
}

/// Order-invariant surface-form key of a decision unit, used to aggregate
/// relevance targets across the dataset (Eq. 3 averages over "all its
/// occurrences").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UnitKey {
    /// Lexicographically smaller surface form.
    pub a: String,
    /// Lexicographically larger surface form (or [`UNP`]).
    pub b: String,
}

impl UnitKey {
    /// Builds the symmetric key.
    pub fn new(l: &str, r: &str) -> Self {
        if l <= r {
            Self { a: l.to_string(), b: r.to_string() }
        } else {
            Self { a: r.to_string(), b: l.to_string() }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wym_data::{Entity, RecordPair};
    use wym_embed::Embedder;
    use wym_tokenize::Tokenizer;

    fn record() -> TokenizedRecord {
        let pair = RecordPair {
            id: 0,
            label: true,
            left: Entity::new(vec!["digital camera"]),
            right: Entity::new(vec!["camera case"]),
        };
        TokenizedRecord::from_pair(&pair, &Tokenizer::default(), &Embedder::new_static(32, 0))
    }

    #[test]
    fn unit_key_is_symmetric() {
        assert_eq!(UnitKey::new("a", "b"), UnitKey::new("b", "a"));
        assert_ne!(UnitKey::new("a", "b"), UnitKey::new("a", "c"));
    }

    #[test]
    fn paired_texts_and_attribute() {
        let rec = record();
        let unit = DecisionUnit::Paired {
            left: TokenRef::new(0, 1),
            right: TokenRef::new(0, 0),
            similarity: 0.9,
        };
        assert_eq!(unit.texts(&rec), ("camera", "camera"));
        assert_eq!(unit.attribute(), 0);
        assert!(unit.is_paired());
        assert_eq!(unit.similarity(), 0.9);
    }

    #[test]
    fn unpaired_uses_unp_marker() {
        let rec = record();
        let unit = DecisionUnit::Unpaired { token: TokenRef::new(0, 0), side: Side::Left };
        assert_eq!(unit.texts(&rec), ("digital", UNP));
        assert_eq!(unit.similarity(), 0.0);
        let right = DecisionUnit::Unpaired { token: TokenRef::new(0, 1), side: Side::Right };
        assert_eq!(right.texts(&rec), (UNP, "case"));
    }

    #[test]
    fn key_invariant_under_side_swap() {
        let rec = record();
        let u1 = DecisionUnit::Paired {
            left: TokenRef::new(0, 0),
            right: TokenRef::new(0, 1),
            similarity: 0.5,
        };
        // digital/case vs a hypothetical case/digital — same key.
        let k1 = u1.key(&rec);
        assert_eq!(k1, UnitKey::new("case", "digital"));
    }

    #[test]
    fn members_counts() {
        let p = DecisionUnit::Paired {
            left: TokenRef::new(0, 0),
            right: TokenRef::new(0, 0),
            similarity: 1.0,
        };
        assert_eq!(p.members().len(), 2);
        let u = DecisionUnit::Unpaired { token: TokenRef::new(0, 0), side: Side::Right };
        assert_eq!(u.members(), vec![(Side::Right, TokenRef::new(0, 0))]);
    }
}
