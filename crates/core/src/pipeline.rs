//! End-to-end WYM pipeline: fit on a dataset split, predict, explain.

use crate::algorithm1::{discover_units, discover_units_with_threads, DiscoveryConfig};
use crate::explanation::Explanation;
use crate::matcher::{ExplainableMatcher, MatcherConfig, SavedMatcher};
use crate::record::TokenizedRecord;
use crate::rules::{apply_rules, UnitRule};
use crate::scorer::{RelevanceScorer, ScorerConfig};
use crate::units::DecisionUnit;
use serde::{Deserialize, Serialize};
use wym_data::{EmDataset, RecordPair, SplitIndices};
use wym_embed::{Embedder, EmbedderKind};
use wym_ml::{f1_score, ClassifierKind};
use wym_tokenize::Tokenizer;

/// The canonical pipeline stages, in execution order. Each name matches the
/// span the corresponding subsystem opens, so registering them (see
/// [`ObsOptions::apply`]) makes every stage appear in observability
/// snapshots — with a span count of 0 when it silently never ran, which is
/// what the smoke check greps for.
pub const PIPELINE_STAGES: &[&str] =
    &["tokenize", "embed", "pair", "score", "classify", "explain"];

/// Records per batched-scoring chunk. At the typical 15–40 units a record,
/// a chunk feeds the scorer a few hundred feature rows per forward pass —
/// deep enough to amortize GEMM setup, small enough that work stealing
/// still balances chunks across worker threads. Chunk boundaries never
/// affect output bits (GEMM rows are independent).
pub const SCORE_CHUNK_RECORDS: usize = 16;

/// Observability section of [`WymConfig`].
///
/// Deserialization treats a missing section as the default (everything
/// off), so configs and model snapshots saved before this section existed
/// keep loading.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ObsOptions {
    /// Record spans and metrics while this model runs (the `--trace` flag).
    pub enabled: bool,
    /// Where to write the JSON metrics export (`--metrics-out`); `None`
    /// leaves the choice to the caller (the CLI defaults to
    /// `results/OBS_run.json`).
    pub metrics_out: Option<String>,
}

#[allow(clippy::derivable_impls)]
impl Default for ObsOptions {
    fn default() -> Self {
        Self { enabled: false, metrics_out: None }
    }
}

impl serde::Deserialize for ObsOptions {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        // Null means the config predates the observability section.
        if matches!(v, serde::Value::Null) {
            return Ok(Self::default());
        }
        Ok(Self {
            enabled: Option::<bool>::from_value(v.field("enabled"))
                .map_err(|e| e.in_field("enabled"))?
                .unwrap_or(false),
            metrics_out: Option::<String>::from_value(v.field("metrics_out"))
                .map_err(|e| e.in_field("metrics_out"))?,
        })
    }
}

impl ObsOptions {
    /// Applies the section to the active recorder: registers the
    /// [`PIPELINE_STAGES`] and enables recording when `enabled` is set.
    /// Never *disables* a recorder the caller already enabled (e.g. via
    /// `--trace` with a config that doesn't mention observability).
    pub fn apply(&self) {
        wym_obs::register_stages(PIPELINE_STAGES);
        if self.enabled {
            wym_obs::set_enabled(true);
        }
        // Record which kernel implementation this process dispatched to
        // (resolved once from CPUID + `WYM_KERNEL`). Every fit funnels
        // through here after recording is switched on, so the counter is
        // present in any traced run — the smoke gate asserts it is nonzero.
        wym_obs::counter_add(
            &format!("kernel.dispatch.{}", wym_linalg::kernels::active_name()),
            1,
        );
    }
}

/// Full configuration of a WYM model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WymConfig {
    /// Embedding variant (Table 4 generator axis; Siamese ≈ SBERT default).
    pub embedder_kind: EmbedderKind,
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Decision-unit generator thresholds and options.
    pub discovery: DiscoveryConfig,
    /// Relevance-scorer configuration.
    pub scorer: ScorerConfig,
    /// Explainable-matcher configuration.
    pub matcher: MatcherConfig,
    /// Cap on the records used to fit the trained embedder variants.
    pub max_embed_train_records: usize,
    /// Domain-knowledge rules applied to relevance scores after the scorer
    /// (the paper's §6 "rules on decision units" future-work direction).
    pub rules: Vec<UnitRule>,
    /// Worker threads for the per-record stages of [`WymModel::fit`]
    /// (tokenize → embed → discover → score). `0` = all available cores.
    /// The fitted model is identical for every value — per-record work is
    /// independent and results land in input order.
    pub n_threads: usize,
    /// Global seed.
    pub seed: u64,
    /// Observability: structured tracing and metrics recording.
    pub obs: ObsOptions,
}

impl Default for WymConfig {
    fn default() -> Self {
        Self {
            embedder_kind: EmbedderKind::Siamese,
            embed_dim: 64,
            discovery: DiscoveryConfig::default(),
            scorer: ScorerConfig::default(),
            matcher: MatcherConfig::default(),
            max_embed_train_records: 400,
            rules: Vec::new(),
            n_threads: 0,
            seed: 0,
            obs: ObsOptions::default(),
        }
    }
}

impl WymConfig {
    /// Propagates the global seed into every component seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.scorer.seed = seed;
        self.matcher.seed = seed;
        self
    }
}

/// A record carried through tokenization, unit discovery and scoring.
#[derive(Debug, Clone)]
pub struct ProcessedRecord {
    /// Tokenized + embedded record.
    pub record: TokenizedRecord,
    /// Discovered decision units.
    pub units: Vec<DecisionUnit>,
    /// Relevance score per unit.
    pub relevances: Vec<f32>,
}

/// A match prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// `true` = match.
    pub label: bool,
    /// Match probability.
    pub probability: f32,
}

/// Anything that scores a record pair — WYM itself, or one of the baseline
/// matchers. Post-hoc explainers (LIME / Landmark / LEMON) and the
/// evaluation harness are generic over this trait.
pub trait EmPredictor {
    /// Match probability of a record pair.
    fn proba(&self, pair: &RecordPair) -> f32;

    /// Hard prediction at the 0.5 threshold.
    fn predict_label(&self, pair: &RecordPair) -> bool {
        self.proba(pair) >= 0.5
    }

    /// Match probabilities of many pairs. The default loops over
    /// [`Self::proba`]; predictors with a batched inference path (WYM's
    /// single-GEMM scorer) override it. The perturbation-hungry post-hoc
    /// explainers route their sample sets through this.
    fn proba_batch(&self, pairs: &[RecordPair]) -> Vec<f32> {
        pairs.iter().map(|p| self.proba(p)).collect()
    }
}

impl EmPredictor for WymModel {
    fn proba(&self, pair: &RecordPair) -> f32 {
        self.predict(pair).probability
    }

    /// Batched override: one scorer forward pass for all pairs' units (see
    /// [`WymModel::process_many_batched`]), then the matcher's batch path.
    /// Bit-identical to mapping [`Self::proba`].
    fn proba_batch(&self, pairs: &[RecordPair]) -> Vec<f32> {
        let proc = self.process_many_batched(pairs);
        let rows: Vec<(&[DecisionUnit], &[f32])> =
            proc.iter().map(|p| (p.units.as_slice(), p.relevances.as_slice())).collect();
        self.matcher.predict_proba_batch(&rows)
    }
}

/// Serializable form of a fitted [`WymModel`]; produced by
/// [`WymModel::to_saved`] and consumed by [`WymModel::from_saved`].
#[derive(Serialize, Deserialize)]
pub struct SavedWymModel {
    /// Model configuration.
    pub config: WymConfig,
    /// The tokenizer.
    pub tokenizer: Tokenizer,
    /// The fitted embedder (including any trained projection).
    pub embedder: Embedder,
    /// The fitted relevance scorer (including the trained network).
    pub scorer: RelevanceScorer,
    /// The fitted matcher snapshot.
    pub matcher: SavedMatcher,
    /// Schema attribute names.
    pub attr_names: Vec<String>,
}

/// Wall-clock seconds spent in each stage of [`WymModel::fit_timed`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FitTimings {
    /// Embedder fitting (stage 1).
    pub embed_fit_s: f64,
    /// Tokenize + embed + unit discovery over train and validation (stage 2).
    pub discover_s: f64,
    /// Relevance-scorer training (stage 3).
    pub score_train_s: f64,
    /// Unit scoring plus classifier-pool fitting (stages 4–5).
    pub pool_fit_s: f64,
}

/// A fitted WYM model.
pub struct WymModel {
    config: WymConfig,
    tokenizer: Tokenizer,
    embedder: Embedder,
    scorer: RelevanceScorer,
    matcher: ExplainableMatcher,
    attr_names: Vec<String>,
}

impl WymModel {
    /// Fits the full pipeline on the train/validation parts of `split`.
    ///
    /// ```no_run
    /// use wym_core::pipeline::{WymConfig, WymModel};
    /// use wym_data::{magellan, split::paper_split};
    ///
    /// let dataset = magellan::generate_by_name("S-FZ", 42).unwrap();
    /// let split = paper_split(&dataset, 0);
    /// let model = WymModel::fit(&dataset, &split, WymConfig::default());
    /// let explanation = model.explain(&dataset.pairs[split.test[0]]);
    /// println!("{explanation}");
    /// ```
    ///
    /// # Panics
    /// Panics when the training split is empty.
    pub fn fit(dataset: &EmDataset, split: &SplitIndices, config: WymConfig) -> WymModel {
        Self::fit_timed(dataset, split, config).0
    }

    /// [`WymModel::fit`] plus per-stage wall-clock timings, for the perf
    /// harness (`wym-experiments`' timing binary).
    ///
    /// # Panics
    /// Panics when the training split is empty.
    pub fn fit_timed(
        dataset: &EmDataset,
        split: &SplitIndices,
        config: WymConfig,
    ) -> (WymModel, FitTimings) {
        assert!(!split.train.is_empty(), "training split is empty");
        config.obs.apply();
        let _span = wym_obs::span("fit");
        let mut timings = FitTimings::default();
        let stage_start = std::time::Instant::now();
        let tokenizer = Tokenizer::default();

        // 1. Embedder (trained variants see a capped slice of train records).
        let embed_train: Vec<_> = split
            .train
            .iter()
            .take(config.max_embed_train_records)
            .map(|&i| {
                let p = &dataset.pairs[i];
                (
                    tokenizer.tokenize_attributes(&p.left.values),
                    tokenizer.tokenize_attributes(&p.right.values),
                    p.label,
                )
            })
            .collect();
        let embedder =
            Embedder::fit(config.embedder_kind, config.embed_dim, config.seed, &embed_train);
        timings.embed_fit_s = stage_start.elapsed().as_secs_f64();

        // 2. Tokenize + discover units for train and validation records.
        // Per-record work is independent, so this fans out over the
        // configured worker threads; results come back in input order.
        let process = |idx: &[usize]| -> Vec<(TokenizedRecord, Vec<DecisionUnit>)> {
            wym_par::map_indexed(idx, config.n_threads, |_, &i| {
                let rec = TokenizedRecord::from_pair(&dataset.pairs[i], &tokenizer, &embedder);
                let units = discover_units(&rec, &config.discovery);
                (rec, units)
            })
        };
        let stage_start = std::time::Instant::now();
        let train_proc = process(&split.train);
        let val_proc = process(&split.val);
        timings.discover_s = stage_start.elapsed().as_secs_f64();

        // 3. Relevance scorer.
        let scorer_input: Vec<(&TokenizedRecord, &[DecisionUnit])> =
            train_proc.iter().map(|(r, u)| (r, u.as_slice())).collect();
        let mut scorer_cfg = config.scorer.clone();
        scorer_cfg.seed = config.seed;
        let stage_start = std::time::Instant::now();
        let scorer = RelevanceScorer::fit(scorer_cfg, &scorer_input);
        timings.score_train_s = stage_start.elapsed().as_secs_f64();

        // 4. Score units batched (chunks of records share one forward pass;
        // bit-identical to per-record scoring — see
        // [`RelevanceScorer::score_batch`]), 5. fit the matcher.
        let stage_start = std::time::Instant::now();
        let score_all = |proc: &[(TokenizedRecord, Vec<DecisionUnit>)]| -> Vec<Vec<f32>> {
            let chunks: Vec<_> = proc.chunks(SCORE_CHUNK_RECORDS).collect();
            let scored = wym_par::map_indexed(&chunks, config.n_threads, |_, chunk| {
                let batch: Vec<(&TokenizedRecord, &[DecisionUnit])> =
                    chunk.iter().map(|(r, u)| (r, u.as_slice())).collect();
                scorer.score_batch(&batch)
            });
            proc.iter()
                .zip(scored.into_iter().flatten())
                .map(|((r, u), raw)| apply_rules(&config.rules, r, u, &raw))
                .collect()
        };
        let train_scores = score_all(&train_proc);
        let val_scores = score_all(&val_proc);
        fn rows<'a>(
            proc: &'a [(TokenizedRecord, Vec<DecisionUnit>)],
            scores: &'a [Vec<f32>],
        ) -> Vec<(&'a [DecisionUnit], &'a [f32], bool)> {
            proc.iter()
                .zip(scores)
                .map(|((r, u), s)| (u.as_slice(), s.as_slice(), r.label.unwrap_or(false)))
                .collect()
        }
        let train_rows = rows(&train_proc, &train_scores);
        let val_rows = rows(&val_proc, &val_scores);
        let mut matcher_cfg = config.matcher.clone();
        matcher_cfg.n_threads = config.n_threads;
        let matcher =
            ExplainableMatcher::fit(&matcher_cfg, dataset.schema.len(), &train_rows, &val_rows);
        timings.pool_fit_s = stage_start.elapsed().as_secs_f64();

        let model = WymModel {
            config,
            tokenizer,
            embedder,
            scorer,
            matcher,
            attr_names: dataset.schema.attributes.clone(),
        };
        (model, timings)
    }

    /// The model configuration.
    pub fn config(&self) -> &WymConfig {
        &self.config
    }

    /// The tokenizer.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// The fitted embedder.
    pub fn embedder(&self) -> &Embedder {
        &self.embedder
    }

    /// The fitted relevance scorer.
    pub fn scorer(&self) -> &RelevanceScorer {
        &self.scorer
    }

    /// The fitted explainable matcher.
    pub fn matcher(&self) -> &ExplainableMatcher {
        &self.matcher
    }

    /// The winning pool classifier.
    pub fn classifier(&self) -> ClassifierKind {
        self.matcher.classifier()
    }

    /// Attribute names of the fitted schema.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// Tokenize → embed → discover → score one record pair.
    ///
    /// Single-record serving is the one path where intra-record parallelism
    /// pays: `config.n_threads` shards the similarity-matrix fill of long
    /// descriptions across workers (the batch paths below already spend
    /// their threads on record-level parallelism). Output is identical for
    /// any thread count.
    pub fn process(&self, pair: &RecordPair) -> ProcessedRecord {
        let _span = wym_obs::span("process");
        let record = TokenizedRecord::from_pair(pair, &self.tokenizer, &self.embedder);
        let units =
            discover_units_with_threads(&record, &self.config.discovery, self.config.n_threads);
        let raw = self.scorer.score_units(&record, &units);
        let relevances = apply_rules(&self.config.rules, &record, &units, &raw);
        ProcessedRecord { record, units, relevances }
    }

    /// Processes many record pairs one at a time (the per-record reference
    /// path; the batched variants below are bit-identical to it).
    pub fn process_many(&self, pairs: &[RecordPair]) -> Vec<ProcessedRecord> {
        pairs.iter().map(|p| self.process(p)).collect()
    }

    /// Processes many record pairs with **one** batched scorer forward pass
    /// for all of their units, instead of one per record.
    ///
    /// Tokenization and unit discovery stay per-record; the unit scores are
    /// bit-identical to [`WymModel::process_many`] because GEMM output rows
    /// depend only on their own input row (see
    /// [`RelevanceScorer::score_batch`]). This is the path the post-hoc
    /// explainers drive with their perturbation sets.
    pub fn process_many_batched(&self, pairs: &[RecordPair]) -> Vec<ProcessedRecord> {
        let pre: Vec<(TokenizedRecord, Vec<DecisionUnit>)> = pairs
            .iter()
            .map(|pair| {
                let _span = wym_obs::span("process");
                let record = TokenizedRecord::from_pair(pair, &self.tokenizer, &self.embedder);
                let units = discover_units(&record, &self.config.discovery);
                (record, units)
            })
            .collect();
        let batch: Vec<(&TokenizedRecord, &[DecisionUnit])> =
            pre.iter().map(|(r, u)| (r, u.as_slice())).collect();
        let raw = self.scorer.score_batch(&batch);
        pre.into_iter()
            .zip(raw)
            .map(|((record, units), raw)| {
                let relevances = apply_rules(&self.config.rules, &record, &units, &raw);
                ProcessedRecord { record, units, relevances }
            })
            .collect()
    }

    /// Processes many record pairs on `n_threads` worker threads
    /// (`0` = all available cores).
    ///
    /// Workers claim [`SCORE_CHUNK_RECORDS`]-sized record chunks from a
    /// shared atomic counter (work stealing), and each chunk runs through
    /// the batched path — so every worker amortizes forward-pass overhead
    /// over a few hundred unit rows per GEMM. Results are returned in input
    /// order; chunking and threading never change a bit of the output, so
    /// this is identical to [`WymModel::process_many`] for any thread
    /// count.
    pub fn process_many_parallel(
        &self,
        pairs: &[RecordPair],
        n_threads: usize,
    ) -> Vec<ProcessedRecord> {
        let chunks: Vec<_> = pairs.chunks(SCORE_CHUNK_RECORDS).collect();
        wym_par::map_indexed(&chunks, n_threads, |_, chunk| self.process_many_batched(chunk))
            .into_iter()
            .flatten()
            .collect()
    }

    /// The active audit log, unless this emission point is suppressed
    /// (see [`WymModel::explain_processed`] — explain audits for both).
    fn audit_log(&self) -> Option<std::sync::Arc<wym_obs::AuditLog>> {
        if wym_obs::audit::suppressed() {
            None
        } else {
            wym_obs::audit::active()
        }
    }

    /// Emits one decision record into `log` for this processed record.
    fn audit_decision(
        &self,
        log: &wym_obs::AuditLog,
        kind: &str,
        proc: &ProcessedRecord,
        prediction: &Prediction,
        top_impacts: Vec<(String, f32)>,
        cost: Option<wym_obs::DecisionCost>,
    ) {
        let paired = proc.units.iter().filter(|u| u.is_paired()).count() as u32;
        log.emit(
            kind,
            proc.record.id as u64,
            prediction.label,
            prediction.probability,
            proc.units.len() as u32,
            paired,
            top_impacts,
            cost,
        );
    }

    /// Predicts from an already processed record. When an audit log is
    /// installed (see [`wym_obs::audit`]), emits one `classify` decision
    /// record — without impacts; the explain path records those.
    pub fn predict_processed(&self, proc: &ProcessedRecord) -> Prediction {
        let Some(log) = self.audit_log() else {
            let probability = self.matcher.predict_proba(&proc.units, &proc.relevances);
            return Prediction { label: probability >= 0.5, probability };
        };
        let (prediction, cost) = wym_obs::audit::measure(|| {
            let probability = self.matcher.predict_proba(&proc.units, &proc.relevances);
            Prediction { label: probability >= 0.5, probability }
        });
        self.audit_decision(
            &log,
            wym_obs::audit::KIND_CLASSIFY,
            proc,
            &prediction,
            Vec::new(),
            Some(cost),
        );
        prediction
    }

    /// End-to-end prediction of one record pair.
    pub fn predict(&self, pair: &RecordPair) -> Prediction {
        self.predict_processed(&self.process(pair))
    }

    /// Explains an already processed record. When an audit log is
    /// installed, emits one `explain` decision record carrying the top
    /// unit impacts; the internal classify call is suppressed so the
    /// decision is logged exactly once.
    pub fn explain_processed(&self, proc: &ProcessedRecord) -> Explanation {
        let _span = wym_obs::span("explain");
        let log = self.audit_log();
        let (explanation, cost) = wym_obs::audit::measure(|| {
            let _quiet = wym_obs::audit::suppress();
            let prediction = self.predict_processed(proc);
            let impacts = self.matcher.impacts(&proc.units, &proc.relevances);
            Explanation::build(
                &proc.record,
                &self.attr_names,
                &proc.units,
                &proc.relevances,
                &impacts,
                prediction.label,
                prediction.probability,
            )
        });
        if let Some(log) = log {
            let top = explanation
                .top_units(wym_obs::audit::TOP_K_IMPACTS)
                .iter()
                .map(|u| (u.attribute.clone(), u.impact))
                .collect();
            let prediction = Prediction {
                label: explanation.prediction,
                probability: explanation.probability,
            };
            self.audit_decision(
                &log,
                wym_obs::audit::KIND_EXPLAIN,
                proc,
                &prediction,
                top,
                Some(cost),
            );
        }
        explanation
    }

    /// End-to-end prediction + explanation of one record pair.
    pub fn explain(&self, pair: &RecordPair) -> Explanation {
        self.explain_processed(&self.process(pair))
    }

    /// Summarizes this model's behaviour on `pairs` into a drift sketch:
    /// calibrated-score distribution, per-record pairing rate, and
    /// unit-class (attribute) mix. Frozen into the artifact at train time
    /// this becomes the baseline that online traffic is compared against
    /// (see [`wym_obs::sketch`]). Uses the batched scoring path and never
    /// emits audit records, so sketching is silent and deterministic.
    pub fn sketch_on(&self, pairs: &[RecordPair]) -> wym_obs::ModelSketch {
        let _span = wym_obs::span("sketch");
        let proc = self.process_many_batched(pairs);
        let rows: Vec<(&[DecisionUnit], &[f32])> =
            proc.iter().map(|p| (p.units.as_slice(), p.relevances.as_slice())).collect();
        let scores = self.matcher.predict_proba_batch(&rows);
        let mut sketch = wym_obs::ModelSketch::new();
        for (p, score) in proc.iter().zip(scores) {
            let paired = p.units.iter().filter(|u| u.is_paired()).count();
            let paired_frac = if p.units.is_empty() {
                0.0
            } else {
                paired as f64 / p.units.len() as f64
            };
            let attrs = p.units.iter().map(|u| self.attr_names[u.attribute()].as_str());
            sketch.observe(score, paired_frac, attrs);
        }
        sketch
    }

    /// A serializable snapshot of the fitted model.
    pub fn to_saved(&self) -> SavedWymModel {
        SavedWymModel {
            config: self.config.clone(),
            tokenizer: self.tokenizer.clone(),
            embedder: self.embedder.clone(),
            scorer: self.scorer.clone(),
            matcher: self.matcher.to_saved(),
            attr_names: self.attr_names.clone(),
        }
    }

    /// Rehydrates a snapshot into a working model.
    pub fn from_saved(saved: SavedWymModel) -> WymModel {
        WymModel {
            config: saved.config,
            tokenizer: saved.tokenizer,
            embedder: saved.embedder,
            scorer: saved.scorer,
            matcher: ExplainableMatcher::from_saved(saved.matcher),
            attr_names: saved.attr_names,
        }
    }

    /// F1 of the match class over a set of labeled pairs.
    pub fn f1_on(&self, pairs: &[RecordPair]) -> f32 {
        let proc = self.process_many_batched(pairs);
        let rows: Vec<(&[DecisionUnit], &[f32])> =
            proc.iter().map(|p| (p.units.as_slice(), p.relevances.as_slice())).collect();
        let probas = self.matcher.predict_proba_batch(&rows);
        let preds: Vec<u8> = probas.iter().map(|&p| u8::from(p >= 0.5)).collect();
        let gold: Vec<u8> = pairs.iter().map(|p| u8::from(p.label)).collect();
        f1_score(&preds, &gold)
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::scorer::ScorerKind;
    use wym_data::{magellan, split::paper_split};
    use wym_nn::TrainConfig;

    /// A fast config for tests: small embeddings, few scorer epochs, and a
    /// three-member classifier pool.
    fn fast_config() -> WymConfig {
        let mut cfg = WymConfig::default();
        cfg.embed_dim = 32;
        cfg.embedder_kind = EmbedderKind::Static;
        cfg.scorer.train = TrainConfig { epochs: 8, batch_size: 128, lr: 2e-3, ..Default::default() };
        cfg.matcher.kinds = vec![
            ClassifierKind::LogisticRegression,
            ClassifierKind::RandomForest,
            ClassifierKind::GradientBoosting,
        ];
        cfg
    }

    fn beer_subset() -> EmDataset {
        magellan::generate_by_name("S-BR", 42).unwrap().subsample(200, 0)
    }

    #[test]
    fn fit_predict_explain_end_to_end() {
        let dataset = beer_subset();
        let split = paper_split(&dataset, 0);
        let model = WymModel::fit(&dataset, &split, fast_config());

        let test_pairs: Vec<RecordPair> =
            split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
        let f1 = model.f1_on(&test_pairs);
        assert!(f1 > 0.5, "test F1 {f1} with {:?}", model.classifier());

        // Explanations are structurally sound.
        let ex = model.explain(&test_pairs[0]);
        assert_eq!(ex.units.len(), model.process(&test_pairs[0]).units.len());
        assert!(ex.probability >= 0.0 && ex.probability <= 1.0);
    }

    #[test]
    fn matching_records_lean_on_paired_units() {
        let dataset = beer_subset();
        let split = paper_split(&dataset, 0);
        let model = WymModel::fit(&dataset, &split, fast_config());
        // Aggregate over all test matches: positive impact should come
        // mostly from paired units.
        let mut paired_pos = 0.0f32;
        let mut unpaired_pos = 0.0f32;
        for &i in &split.test {
            let pair = &dataset.pairs[i];
            if !pair.label {
                continue;
            }
            let ex = model.explain(pair);
            for u in &ex.units {
                if u.impact > 0.0 {
                    if u.paired {
                        paired_pos += u.impact;
                    } else {
                        unpaired_pos += u.impact;
                    }
                }
            }
        }
        assert!(
            paired_pos > unpaired_pos,
            "paired {paired_pos} vs unpaired {unpaired_pos} positive impact"
        );
    }

    #[test]
    fn binary_scorer_variant_runs() {
        let dataset = beer_subset();
        let split = paper_split(&dataset, 0);
        let mut cfg = fast_config();
        cfg.scorer.kind = ScorerKind::Binary;
        let model = WymModel::fit(&dataset, &split, cfg);
        let test_pairs: Vec<RecordPair> =
            split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
        let f1 = model.f1_on(&test_pairs);
        assert!(f1 > 0.3, "binary-scorer F1 {f1}");
    }

    #[test]
    fn prediction_is_deterministic() {
        let dataset = beer_subset();
        let split = paper_split(&dataset, 0);
        let model = WymModel::fit(&dataset, &split, fast_config());
        let pair = &dataset.pairs[split.test[0]];
        let a = model.predict(pair);
        let b = model.predict(pair);
        assert_eq!(a, b);
    }

    #[test]
    fn config_without_obs_section_still_deserializes() {
        use serde::{Deserialize, Serialize, Value};
        // Simulate a config serialized before the observability section
        // existed by deleting the `obs` key from a fresh serialization.
        let mut v = fast_config().to_value();
        if let Value::Object(pairs) = &mut v {
            pairs.retain(|(k, _)| k != "obs");
        }
        let cfg = WymConfig::from_value(&v).expect("old config must load");
        assert_eq!(cfg.obs, ObsOptions::default());

        // And a round trip with the section present preserves it.
        let mut cfg2 = fast_config();
        cfg2.obs = ObsOptions { enabled: true, metrics_out: Some("x.json".into()) };
        let back = WymConfig::from_value(&cfg2.to_value()).unwrap();
        assert_eq!(back.obs, cfg2.obs);
    }

    #[test]
    fn traced_fit_and_explain_cover_every_pipeline_stage() {
        use std::sync::Arc;
        let dataset = beer_subset();
        let split = paper_split(&dataset, 0);
        let obs = Arc::new(wym_obs::Recorder::new_enabled());
        wym_obs::with_recorder(Arc::clone(&obs), || {
            let mut cfg = fast_config();
            cfg.obs.enabled = true;
            cfg.n_threads = 2;
            let model = WymModel::fit(&dataset, &split, cfg);
            let _ = model.explain(&dataset.pairs[split.test[0]]);
        });
        let snap = obs.snapshot();
        for (stage, count) in &snap.stages {
            assert!(*count > 0, "stage {stage} reported zero spans: {:?}", snap.stages);
        }
        assert_eq!(
            snap.stages.len(),
            PIPELINE_STAGES.len(),
            "every canonical stage must be registered"
        );
        // Worker spans nested under fit, not orphaned at the root.
        assert!(snap.span_count("fit") == 1, "{:?}", snap.spans);
        assert!(
            snap.spans.iter().any(|s| s.path.starts_with("fit/") && s.path.ends_with("pair")),
            "pair spans must aggregate under fit: {:?}",
            snap.spans.iter().map(|s| &s.path).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "training split is empty")]
    fn rejects_empty_train_split() {
        let dataset = beer_subset();
        let split = SplitIndices { train: vec![], val: vec![0], test: vec![1] };
        let _ = WymModel::fit(&dataset, &split, fast_config());
    }

    #[test]
    fn audit_log_records_decisions_once_with_margins_and_impacts() {
        use std::sync::Arc;
        let dataset = beer_subset();
        let split = paper_split(&dataset, 0);
        let model = WymModel::fit(&dataset, &split, fast_config());
        let pair = &dataset.pairs[split.test[0]];

        let log = Arc::new(wym_obs::AuditLog::new(wym_obs::AuditOptions {
            model_fnv: 0xfeed,
            ..Default::default()
        }));
        let (pred, ex) = wym_obs::audit::with_audit(Arc::clone(&log), || {
            let _seq = wym_obs::audit::scope_seq(7);
            (model.predict(pair), model.explain(pair))
        });

        // One classify + one explain record — the classify nested inside
        // explain is suppressed, so each user-facing call logs exactly once.
        let records = log.sorted();
        assert_eq!(records.len(), 2, "{records:?}");
        let classify = &records[0];
        let explain = &records[1];
        assert_eq!(classify.kind, wym_obs::audit::KIND_CLASSIFY);
        assert_eq!(explain.kind, wym_obs::audit::KIND_EXPLAIN);
        for r in [classify, explain] {
            assert_eq!(r.seq, 7);
            assert_eq!(r.model_fnv, 0xfeed);
            assert_eq!(r.verdict, pred.label);
            assert_eq!(r.score, pred.probability);
            assert_eq!(r.margin, pred.probability - 0.5);
            assert!(r.paired_units <= r.units);
            assert!(r.cost.is_none(), "cost must be opt-in");
        }
        assert!(classify.top_impacts.is_empty());
        let expect_top = ex
            .top_units(wym_obs::audit::TOP_K_IMPACTS)
            .iter()
            .map(|u| (u.attribute.clone(), u.impact))
            .collect::<Vec<_>>();
        assert_eq!(explain.top_impacts, expect_top);

        // Outside the scope nothing is captured.
        let before = log.len();
        let _ = model.predict(pair);
        assert_eq!(log.len(), before);
    }

    #[test]
    fn sketch_on_is_deterministic_and_observes_every_pair() {
        let dataset = beer_subset();
        let split = paper_split(&dataset, 0);
        let model = WymModel::fit(&dataset, &split, fast_config());
        let test_pairs: Vec<RecordPair> =
            split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
        let a = model.sketch_on(&test_pairs);
        let b = model.sketch_on(&test_pairs);
        assert_eq!(a, b, "sketching must be bit-stable");
        assert_eq!(a.len(), test_pairs.len() as u64);
        assert!(!a.unit_mix().is_empty(), "attribute mix must be populated");
        // A model compared against its own baseline never trips.
        let report = a.compare(&b);
        assert!(!report.tripped, "{}", report.render());
    }
}
