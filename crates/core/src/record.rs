//! Tokenized + embedded view of an EM record.

use serde::{Deserialize, Serialize};
use wym_data::RecordPair;
use wym_embed::{Embedder, EmbedMatrix};
use wym_tokenize::Tokenizer;

/// Which entity description of the record a token belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// The first (left) entity description.
    Left,
    /// The second (right) entity description.
    Right,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// Position of a token within one entity description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TokenRef {
    /// Attribute index in the schema.
    pub attr: u16,
    /// Token index within the attribute's token list.
    pub pos: u16,
}

impl TokenRef {
    /// Constructs a reference (convenience for tests).
    pub fn new(attr: usize, pos: usize) -> Self {
        Self { attr: attr as u16, pos: pos as u16 }
    }
}

/// One entity description after tokenization and embedding.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EntityView {
    /// `tokens[attr][pos]` — surface forms.
    pub tokens: Vec<Vec<String>>,
    /// Contextual unit vectors, one flat row per token, grouped by
    /// attribute in the same shape as `tokens` (see [`EmbedMatrix`]).
    pub embeds: EmbedMatrix,
}

impl EntityView {
    /// Surface form of a token.
    pub fn text(&self, t: TokenRef) -> &str {
        &self.tokens[t.attr as usize][t.pos as usize]
    }

    /// Contextual embedding of a token.
    pub fn embed(&self, t: TokenRef) -> &[f32] {
        self.embeds.embed(t.attr as usize, t.pos as usize)
    }

    /// All token references of one attribute.
    pub fn attr_refs(&self, attr: usize) -> Vec<TokenRef> {
        (0..self.tokens[attr].len()).map(|pos| TokenRef::new(attr, pos)).collect()
    }

    /// All token references of the entity.
    pub fn all_refs(&self) -> Vec<TokenRef> {
        (0..self.tokens.len()).flat_map(|a| self.attr_refs(a)).collect()
    }

    /// Total token count.
    pub fn token_count(&self) -> usize {
        self.tokens.iter().map(Vec::len).sum()
    }

    /// Number of attributes.
    pub fn attr_count(&self) -> usize {
        self.tokens.len()
    }
}

/// A record pair ready for decision-unit discovery.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenizedRecord {
    /// Record id from the dataset.
    pub id: u32,
    /// Left entity view.
    pub left: EntityView,
    /// Right entity view.
    pub right: EntityView,
    /// Gold label when known.
    pub label: Option<bool>,
}

impl TokenizedRecord {
    /// Tokenizes and embeds a record pair through the fused arena path
    /// (bit-identical to the reference `embed_entity`; see
    /// [`Embedder::embed_entity_fused`]).
    pub fn from_pair(pair: &RecordPair, tokenizer: &Tokenizer, embedder: &Embedder) -> Self {
        let lt = tokenizer.tokenize_attributes(&pair.left.values);
        let rt = tokenizer.tokenize_attributes(&pair.right.values);
        Self::from_tokens(pair.id, Some(pair.label), lt, rt, embedder)
    }

    /// Embeds already-tokenized attribute lists — the second half of
    /// [`TokenizedRecord::from_pair`], split out so callers (the timing
    /// harness) can clock tokenization and embedding separately.
    pub fn from_tokens(
        id: u32,
        label: Option<bool>,
        left_tokens: Vec<Vec<String>>,
        right_tokens: Vec<Vec<String>>,
        embedder: &Embedder,
    ) -> Self {
        let le = embedder.embed_entity_fused(&left_tokens);
        let re = embedder.embed_entity_fused(&right_tokens);
        Self {
            id,
            left: EntityView { tokens: left_tokens, embeds: le },
            right: EntityView { tokens: right_tokens, embeds: re },
            label,
        }
    }

    /// Hands this record's embedding storage back to the thread's reuse
    /// pool (see [`wym_embed::recycle`]). Callers that drop records right
    /// after use — the serving loop, the perf harness — make the next
    /// [`TokenizedRecord::from_pair`] on the thread allocation-free.
    pub fn recycle(self) {
        wym_embed::recycle(self.left.embeds);
        wym_embed::recycle(self.right.embeds);
    }

    /// The entity view of a side.
    pub fn view(&self, side: Side) -> &EntityView {
        match side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        }
    }

    /// Surface form of a token on a side.
    pub fn text(&self, side: Side, t: TokenRef) -> &str {
        self.view(side).text(t)
    }

    /// Embedding of a token on a side.
    pub fn embed(&self, side: Side, t: TokenRef) -> &[f32] {
        self.view(side).embed(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wym_data::Entity;

    fn pair() -> RecordPair {
        RecordPair {
            id: 7,
            label: true,
            left: Entity::new(vec!["Digital Camera", "37.63"]),
            right: Entity::new(vec!["digital camera kit", "36"]),
        }
    }

    #[test]
    fn from_pair_shapes() {
        let tok = Tokenizer::default();
        let emb = Embedder::new_static(32, 1);
        let rec = TokenizedRecord::from_pair(&pair(), &tok, &emb);
        assert_eq!(rec.left.tokens[0], vec!["digital", "camera"]);
        assert_eq!(rec.right.tokens[0], vec!["digital", "camera", "kit"]);
        assert_eq!(rec.left.embeds.attr_len(0), 2);
        assert_eq!(rec.left.embeds.dim(), 32);
        assert_eq!(rec.label, Some(true));
    }

    #[test]
    fn token_lookup() {
        let tok = Tokenizer::default();
        let emb = Embedder::new_static(32, 1);
        let rec = TokenizedRecord::from_pair(&pair(), &tok, &emb);
        let t = TokenRef::new(0, 1);
        assert_eq!(rec.text(Side::Left, t), "camera");
        assert_eq!(rec.text(Side::Right, t), "camera");
        assert_eq!(rec.embed(Side::Left, t).len(), 32);
    }

    #[test]
    fn refs_enumerate_all_tokens() {
        let tok = Tokenizer::default();
        let emb = Embedder::new_static(32, 1);
        let rec = TokenizedRecord::from_pair(&pair(), &tok, &emb);
        assert_eq!(rec.left.all_refs().len(), rec.left.token_count());
        assert_eq!(rec.right.token_count(), 4);
    }

    #[test]
    fn side_other_flips() {
        assert_eq!(Side::Left.other(), Side::Right);
        assert_eq!(Side::Right.other(), Side::Left);
    }
}
