//! The explainable matcher (paper §4.3): classifier pool over engineered
//! features, plus the inverse transformation producing impact scores.

use crate::features::{contributions, featurize, full_specs, simplified_specs, FeatureSpec};
use crate::units::DecisionUnit;
use serde::{Deserialize, Serialize};
use wym_linalg::Matrix;
use wym_ml::select::SavedSelectedModel;
use wym_ml::{ClassifierKind, ClassifierPool, SelectedModel};

/// Matcher configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatcherConfig {
    /// Use Table 4's simplified 6-feature set instead of the full one.
    pub simplified_features: bool,
    /// Classifier kinds to include in the pool (default: all ten).
    pub kinds: Vec<ClassifierKind>,
    /// Model seed.
    pub seed: u64,
    /// Threads for pool fitting (0 = all cores). [`crate::WymModel::fit`]
    /// overrides this with the pipeline-wide `WymConfig::n_threads`. The
    /// fitted matcher is identical for every value.
    pub n_threads: usize,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        Self {
            simplified_features: false,
            kinds: ClassifierKind::ALL.to_vec(),
            seed: 0,
            n_threads: 0,
        }
    }
}

/// A fitted explainable matcher.
pub struct ExplainableMatcher {
    specs: Vec<FeatureSpec>,
    selected: SelectedModel,
}

/// Serializable form of an [`ExplainableMatcher`].
#[derive(Serialize, Deserialize)]
pub struct SavedMatcher {
    /// Engineered feature specs.
    pub specs: Vec<FeatureSpec>,
    /// Snapshot of the selected classifier.
    pub selected: SavedSelectedModel,
}

impl ExplainableMatcher {
    /// A serializable snapshot of the fitted matcher.
    pub fn to_saved(&self) -> SavedMatcher {
        SavedMatcher { specs: self.specs.clone(), selected: self.selected.to_saved() }
    }

    /// Rehydrates a snapshot.
    pub fn from_saved(saved: SavedMatcher) -> ExplainableMatcher {
        ExplainableMatcher {
            specs: saved.specs,
            selected: SelectedModel::from_saved(saved.selected),
        }
    }

    /// Fits the pool on per-record `(units, scores, label)` triples and
    /// selects the best member by validation F1.
    ///
    /// # Panics
    /// Panics when `train` is empty.
    pub fn fit(
        config: &MatcherConfig,
        n_attrs: usize,
        train: &[(&[DecisionUnit], &[f32], bool)],
        val: &[(&[DecisionUnit], &[f32], bool)],
    ) -> ExplainableMatcher {
        assert!(!train.is_empty(), "cannot fit the matcher on zero records");
        let _span = wym_obs::span("matcher_fit");
        let specs =
            if config.simplified_features { simplified_specs() } else { full_specs(n_attrs) };
        let build = |rows: &[(&[DecisionUnit], &[f32], bool)]| {
            let mut x = Matrix::zeros(0, specs.len());
            let mut y = Vec::with_capacity(rows.len());
            for (units, scores, label) in rows {
                x.push_row(&featurize(&specs, units, scores));
                y.push(u8::from(*label));
            }
            (x, y)
        };
        let (x_train, y_train) = build(train);
        let (x_val, y_val) = build(val);
        let pool = ClassifierPool {
            kinds: config.kinds.clone(),
            seed: config.seed,
            n_threads: config.n_threads,
        };
        let selected = pool.fit_select(&x_train, &y_train, &x_val, &y_val);
        ExplainableMatcher { specs, selected }
    }

    /// The feature specs in use.
    pub fn specs(&self) -> &[FeatureSpec] {
        &self.specs
    }

    /// The winning classifier kind.
    pub fn classifier(&self) -> ClassifierKind {
        self.selected.kind
    }

    /// Validation scores of every pool member (Table 5 rows).
    pub fn pool_scores(&self) -> &[(ClassifierKind, f32)] {
        &self.selected.all_scores
    }

    /// Match probability of one record.
    pub fn predict_proba(&self, units: &[DecisionUnit], scores: &[f32]) -> f32 {
        let _span = wym_obs::span("classify");
        let mut x = Matrix::zeros(0, self.specs.len());
        x.push_row(&featurize(&self.specs, units, scores));
        self.selected.predict_proba(&x)[0]
    }

    /// Match probabilities of many records (one featurize + one model call).
    pub fn predict_proba_batch(&self, rows: &[(&[DecisionUnit], &[f32])]) -> Vec<f32> {
        if rows.is_empty() {
            return Vec::new();
        }
        let _span = wym_obs::span("classify");
        wym_obs::counter_add("classify.records", rows.len() as u64);
        let mut x = Matrix::zeros(0, self.specs.len());
        for (units, scores) in rows {
            x.push_row(&featurize(&self.specs, units, scores));
        }
        self.selected.predict_proba(&x)
    }

    /// Impact score of every unit: the trained coefficients are distributed
    /// back over the contributing units by the inverse feature
    /// transformation, multiplied by the unit's relevance, and averaged
    /// (paper §4.3).
    pub fn impacts(&self, units: &[DecisionUnit], scores: &[f32]) -> Vec<f32> {
        let coefs = self.selected.raw_signed_importance();
        let mut acc = vec![0.0f32; units.len()];
        let mut n = vec![0u32; units.len()];
        for (spec, coef) in self.specs.iter().zip(&coefs) {
            if *coef == 0.0 {
                continue;
            }
            for (i, w) in contributions(spec, units, scores) {
                acc[i] += coef * w;
                n[i] += 1;
            }
        }
        acc.iter()
            .zip(&n)
            .zip(scores)
            .map(|((a, &k), s)| if k == 0 { 0.0 } else { (a / k as f32) * s })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Side, TokenRef};
    use wym_linalg::Rng64;

    /// Synthesizes unit/score rows: matches have several positive-scored
    /// paired units, non-matches negative-scored unpaired units.
    fn synth(n: usize, seed: u64) -> Vec<(Vec<DecisionUnit>, Vec<f32>, bool)> {
        let mut rng = Rng64::new(seed);
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2 == 0;
            let n_units = 3 + rng.gen_range(4);
            let mut units = Vec::with_capacity(n_units);
            let mut scores = Vec::with_capacity(n_units);
            for p in 0..n_units {
                let paired = if label { p % 4 != 3 } else { p % 4 == 3 };
                if paired {
                    units.push(DecisionUnit::Paired {
                        left: TokenRef::new(0, p),
                        right: TokenRef::new(0, p),
                        similarity: 0.8,
                    });
                    scores.push(0.4 + 0.5 * rng.gen_f32());
                } else {
                    units.push(DecisionUnit::Unpaired {
                        token: TokenRef::new(0, p),
                        side: Side::Left,
                    });
                    scores.push(-0.4 - 0.5 * rng.gen_f32());
                }
            }
            rows.push((units, scores, label));
        }
        rows
    }

    fn as_refs(
        rows: &[(Vec<DecisionUnit>, Vec<f32>, bool)],
    ) -> Vec<(&[DecisionUnit], &[f32], bool)> {
        rows.iter().map(|(u, s, l)| (u.as_slice(), s.as_slice(), *l)).collect()
    }

    #[test]
    fn matcher_learns_separable_unit_patterns() {
        let train = synth(120, 1);
        let val = synth(40, 2);
        let m = ExplainableMatcher::fit(&MatcherConfig::default(), 1, &as_refs(&train), &as_refs(&val));
        let test = synth(40, 3);
        let mut correct = 0;
        for (units, scores, label) in &test {
            let p = m.predict_proba(units, scores);
            if (p >= 0.5) == *label {
                correct += 1;
            }
        }
        assert!(correct >= 38, "accuracy {correct}/40 with {:?}", m.classifier());
    }

    #[test]
    fn simplified_features_use_six_specs() {
        let train = synth(60, 4);
        let m = ExplainableMatcher::fit(
            &MatcherConfig { simplified_features: true, ..Default::default() },
            1,
            &as_refs(&train),
            &as_refs(&train),
        );
        assert_eq!(m.specs().len(), 6);
    }

    #[test]
    fn impacts_have_unit_length_and_sign_structure() {
        let train = synth(120, 5);
        let m = ExplainableMatcher::fit(&MatcherConfig::default(), 1, &as_refs(&train), &as_refs(&train));
        let (units, scores, _) = &train[0]; // a match row
        let impacts = m.impacts(units, scores);
        assert_eq!(impacts.len(), units.len());
        // Paired positive-relevance units should on average push toward the
        // match more than unpaired negative ones.
        let mean_paired: f32 = impacts
            .iter()
            .zip(units)
            .filter(|(_, u)| u.is_paired())
            .map(|(i, _)| *i)
            .sum::<f32>();
        let mean_unpaired: f32 = impacts
            .iter()
            .zip(units)
            .filter(|(_, u)| !u.is_paired())
            .map(|(i, _)| *i)
            .sum::<f32>();
        assert!(
            mean_paired > mean_unpaired,
            "paired impact {mean_paired} vs unpaired {mean_unpaired}"
        );
    }

    #[test]
    fn pool_scores_cover_all_kinds() {
        let train = synth(60, 6);
        let m = ExplainableMatcher::fit(&MatcherConfig::default(), 1, &as_refs(&train), &as_refs(&train));
        assert_eq!(m.pool_scores().len(), 10);
    }

    #[test]
    fn batch_prediction_matches_single() {
        let train = synth(80, 7);
        let m = ExplainableMatcher::fit(&MatcherConfig::default(), 1, &as_refs(&train), &as_refs(&train));
        let test = synth(10, 8);
        let rows: Vec<(&[DecisionUnit], &[f32])> =
            test.iter().map(|(u, s, _)| (u.as_slice(), s.as_slice())).collect();
        let batch = m.predict_proba_batch(&rows);
        for ((units, scores, _), b) in test.iter().zip(&batch) {
            let single = m.predict_proba(units, scores);
            assert!((single - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "zero records")]
    fn rejects_empty_training() {
        let _ = ExplainableMatcher::fit(&MatcherConfig::default(), 1, &[], &[]);
    }
}
