//! Serializable model state: the head / tensor split behind model artifacts.
//!
//! A fitted [`WymModel`] decomposes into two kinds of data with very
//! different storage needs:
//!
//! * the **head** — configuration, tokenizer, context-mixing weights,
//!   feature specs, classifier-pool coefficients, and scaler statistics.
//!   Small (kilobytes), irregular, and best kept human-readable: the head
//!   serializes as JSON, which round-trips every `f32`/`f64` bit-exactly
//!   because the workspace JSON writer prints floats shortest-exact.
//! * the **tensors** — the scorer network's dense weight matrices and the
//!   embedder's trained projection. Large, rectangular, and hot at load
//!   time: `wym-artifact` writes them as raw little-endian `f32` in a
//!   page-aligned section so a loader can memory-map them.
//!
//! [`WymModelState::from_model`] performs the split and
//! [`WymModelState::into_model`] reverses it. The round trip is bit-exact:
//! tensors are copied verbatim and nothing is retrained or re-quantized, so
//! a reassembled model reproduces the original's verdicts, impact scores,
//! and `score_checksum` to the last bit (enforced by the artifact round-trip
//! proptests and the smoke gate).

use crate::matcher::SavedMatcher;
use crate::pipeline::{SavedWymModel, WymConfig, WymModel};
use crate::scorer::{RelevanceScorer, ScorerConfig};
use serde::{Deserialize, Serialize};
use wym_embed::{Embedder, EmbedderHead, EmbedderKind};
use wym_linalg::Matrix;
use wym_nn::{Activation, Dense, Loss, Mlp, SiameseProjection};
use wym_tokenize::Tokenizer;

/// A named row-major `f32` tensor destined for the artifact tensor heap.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedTensor {
    /// Stable identifier, e.g. `scorer.layer0.w` or `embed.projection`.
    pub name: String,
    /// The weights. Biases are stored as `1 × n` matrices.
    pub data: Matrix,
}

/// Architecture of the scorer network that is *not* captured by its weight
/// shapes: per-layer activations and the training loss.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScorerNetSpec {
    /// Activation of each layer, input to output.
    pub activations: Vec<Activation>,
    /// The loss the network was trained with.
    pub loss: Loss,
}

/// The JSON-serializable head of a model (everything but the tensors).
#[derive(Serialize, Deserialize)]
pub struct WymModelHead {
    /// Full pipeline configuration.
    pub config: WymConfig,
    /// The tokenizer.
    pub tokenizer: Tokenizer,
    /// Embedder minus its projection matrix (see [`EmbedderHead`]).
    pub embedder: EmbedderHead,
    /// Relevance-scorer configuration.
    pub scorer_config: ScorerConfig,
    /// Scorer network architecture; `None` for the parameterless ablation
    /// kinds (and for a `Neural` scorer fitted on an empty unit set).
    pub scorer_net: Option<ScorerNetSpec>,
    /// Feature specs + selected pool classifier + scaler.
    pub matcher: SavedMatcher,
    /// Schema attribute names.
    pub attr_names: Vec<String>,
}

/// A fitted model split into head + named tensors.
pub struct WymModelState {
    /// The JSON head.
    pub head: WymModelHead,
    /// The dense tensors, in a fixed order: scorer layers (w then b, input
    /// to output), then the embedding projection when present.
    pub tensors: Vec<NamedTensor>,
}

impl WymModelState {
    /// Splits a fitted model into head and tensors. Pure data movement —
    /// weights are cloned verbatim.
    pub fn from_model(model: &WymModel) -> WymModelState {
        let mut tensors = Vec::new();
        let scorer_net = model.scorer().model().map(|mlp| {
            for (i, layer) in mlp.layers().iter().enumerate() {
                tensors.push(NamedTensor {
                    name: format!("scorer.layer{i}.w"),
                    data: layer.w.clone(),
                });
                tensors.push(NamedTensor {
                    name: format!("scorer.layer{i}.b"),
                    data: Matrix::from_vec(1, layer.b.len(), layer.b.clone()),
                });
            }
            ScorerNetSpec {
                activations: mlp.layers().iter().map(|l| l.activation).collect(),
                loss: mlp.loss_kind(),
            }
        });
        if let Some(proj) = model.embedder().projection() {
            tensors.push(NamedTensor {
                name: "embed.projection".to_string(),
                data: proj.matrix().clone(),
            });
        }
        WymModelState {
            head: WymModelHead {
                config: model.config().clone(),
                tokenizer: model.tokenizer().clone(),
                embedder: model.embedder().to_head(),
                scorer_config: model.scorer().config().clone(),
                scorer_net,
                matcher: model.matcher().to_saved(),
                attr_names: model.attr_names().to_vec(),
            },
            tensors,
        }
    }

    /// Reassembles a working model, validating that every tensor the head
    /// promises is present with a consistent shape. Errors name the missing
    /// or malformed tensor so a truncated artifact is diagnosable.
    pub fn into_model(self) -> Result<WymModel, String> {
        let WymModelState { head, tensors } = self;
        let take = |name: &str| -> Result<&NamedTensor, String> {
            tensors.iter().find(|t| t.name == name).ok_or_else(|| {
                format!(
                    "model state is missing tensor `{name}` (have: {}); \
                     the artifact is truncated or was written by an \
                     incompatible version",
                    tensors.iter().map(|t| t.name.as_str()).collect::<Vec<_>>().join(", ")
                )
            })
        };

        let scorer_model = match &head.scorer_net {
            None => None,
            Some(spec) => {
                let mut layers = Vec::with_capacity(spec.activations.len());
                for (i, &activation) in spec.activations.iter().enumerate() {
                    let w = take(&format!("scorer.layer{i}.w"))?.data.clone();
                    let b = take(&format!("scorer.layer{i}.b"))?;
                    if b.data.rows() != 1 || b.data.cols() != w.cols() {
                        return Err(format!(
                            "tensor `scorer.layer{i}.b` has shape {:?}, expected (1, {})",
                            b.data.shape(),
                            w.cols()
                        ));
                    }
                    if let Some(prev_out) = layers.last().map(|l: &Dense| l.out_dim()) {
                        if w.rows() != prev_out {
                            return Err(format!(
                                "tensor `scorer.layer{i}.w` has {} input rows but \
                                 layer {} produces {prev_out} outputs",
                                w.rows(),
                                i - 1
                            ));
                        }
                    }
                    layers.push(Dense { w, b: b.data.as_slice().to_vec(), activation });
                }
                if layers.is_empty() {
                    return Err("scorer_net promises a network but lists no layers".into());
                }
                Some(Mlp::from_parts(layers, spec.loss))
            }
        };

        let projection = match head.embedder.kind {
            EmbedderKind::Static => None,
            EmbedderKind::FineTuned | EmbedderKind::Siamese => {
                let t = take("embed.projection")?;
                let dim = head.embedder.hashed.dim();
                if t.data.shape() != (dim, dim) {
                    return Err(format!(
                        "tensor `embed.projection` has shape {:?}, expected ({dim}, {dim})",
                        t.data.shape()
                    ));
                }
                Some(SiameseProjection::from_matrix(t.data.clone()))
            }
        };

        Ok(WymModel::from_saved(SavedWymModel {
            config: head.config,
            tokenizer: head.tokenizer,
            embedder: Embedder::from_parts(head.embedder, projection),
            scorer: RelevanceScorer::from_parts(head.scorer_config, scorer_model),
            matcher: head.matcher,
            attr_names: head.attr_names,
        }))
    }
}

impl WymModelHead {
    /// The selected pool classifier recorded in the head (readable without
    /// rehydrating the model — `model inspect` prints this).
    pub fn classifier_kind(&self) -> wym_ml::ClassifierKind {
        self.matcher.selected.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wym_data::{magellan, split::paper_split};
    use wym_ml::ClassifierKind;
    use wym_nn::TrainConfig;

    fn fitted(kind: EmbedderKind) -> WymModel {
        let dataset = magellan::generate_by_name("S-FZ", 42).unwrap().subsample(120, 0);
        let split = paper_split(&dataset, 0);
        let mut cfg = WymConfig::default();
        cfg.embed_dim = 24;
        cfg.embedder_kind = kind;
        cfg.scorer.train =
            TrainConfig { epochs: 4, batch_size: 128, lr: 2e-3, ..Default::default() };
        cfg.matcher.kinds =
            vec![ClassifierKind::LogisticRegression, ClassifierKind::DecisionTree];
        WymModel::fit(&dataset, &split, cfg)
    }

    #[test]
    fn state_round_trip_reproduces_predictions() {
        let model = fitted(EmbedderKind::Siamese);
        let dataset = magellan::generate_by_name("S-FZ", 42).unwrap().subsample(120, 0);
        let split = paper_split(&dataset, 0);
        let state = WymModelState::from_model(&model);
        assert!(
            state.tensors.iter().any(|t| t.name == "embed.projection"),
            "siamese model must export its projection"
        );
        let back = state.into_model().expect("state must reassemble");
        for &i in split.test.iter().take(20) {
            let pair = &dataset.pairs[i];
            let a = model.predict(pair);
            let b = back.predict(pair);
            assert_eq!(a.label, b.label);
            assert_eq!(a.probability.to_bits(), b.probability.to_bits(), "pair {i}");
        }
    }

    #[test]
    fn static_model_has_no_projection_tensor() {
        let model = fitted(EmbedderKind::Static);
        let state = WymModelState::from_model(&model);
        assert!(state.tensors.iter().all(|t| t.name != "embed.projection"));
        assert!(state.into_model().is_ok());
    }

    #[test]
    fn missing_tensor_is_an_actionable_error() {
        let model = fitted(EmbedderKind::Siamese);
        let mut state = WymModelState::from_model(&model);
        state.tensors.retain(|t| t.name != "embed.projection");
        let err = state.into_model().err().expect("must reject missing tensor");
        assert!(err.contains("embed.projection"), "{err}");
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn shape_mismatch_is_an_actionable_error() {
        let model = fitted(EmbedderKind::Siamese);
        let mut state = WymModelState::from_model(&model);
        let t = state
            .tensors
            .iter_mut()
            .find(|t| t.name == "embed.projection")
            .expect("projection present");
        t.data = Matrix::zeros(3, 5);
        let err = state.into_model().err().expect("must reject bad shape");
        assert!(err.contains("embed.projection") && err.contains("expected"), "{err}");
    }
}
