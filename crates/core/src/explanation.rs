//! User-facing explanations: decision units with relevance and impact.

use crate::record::TokenizedRecord;
use crate::units::{DecisionUnit, UNP};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One decision unit of an explanation, resolved to surface forms.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplainedUnit {
    /// Left surface form ([`UNP`] when the unit is unpaired on the right).
    pub left: String,
    /// Right surface form ([`UNP`] when the unit is unpaired on the left).
    pub right: String,
    /// Attribute name the unit is assigned to.
    pub attribute: String,
    /// Whether the unit is paired.
    pub paired: bool,
    /// Relevance score (the unit's contribution in isolation, §4.2).
    pub relevance: f32,
    /// Impact score (the unit's contribution to this prediction, §4.3).
    /// Positive pushes toward *match*, negative toward *non-match*.
    pub impact: f32,
}

impl ExplainedUnit {
    /// `(a,b)` display form, e.g. `(exch,exch)` or `(eng)` for unpaired.
    pub fn display_pair(&self) -> String {
        if self.left == UNP {
            format!("({})", self.right)
        } else if self.right == UNP {
            format!("({})", self.left)
        } else {
            format!("({},{})", self.left, self.right)
        }
    }
}

/// The explanation of one EM prediction: `EX(r) = {(d_r, i_r)}` plus the
/// prediction itself.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Explanation {
    /// Record id.
    pub record_id: u32,
    /// Predicted label (`true` = match).
    pub prediction: bool,
    /// Match probability.
    pub probability: f32,
    /// Explained units, sorted by descending |impact|.
    pub units: Vec<ExplainedUnit>,
}

impl Explanation {
    /// Assembles an explanation from pipeline outputs.
    pub fn build(
        record: &TokenizedRecord,
        attr_names: &[String],
        units: &[DecisionUnit],
        relevances: &[f32],
        impacts: &[f32],
        prediction: bool,
        probability: f32,
    ) -> Explanation {
        let mut out: Vec<ExplainedUnit> = units
            .iter()
            .zip(relevances)
            .zip(impacts)
            .map(|((u, &relevance), &impact)| {
                let (l, r) = u.texts(record);
                let attr = u.attribute();
                ExplainedUnit {
                    left: l.to_string(),
                    right: r.to_string(),
                    attribute: attr_names
                        .get(attr)
                        .cloned()
                        .unwrap_or_else(|| format!("attr{attr}")),
                    paired: u.is_paired(),
                    relevance,
                    impact,
                }
            })
            .collect();
        out.sort_by(|a, b| b.impact.abs().total_cmp(&a.impact.abs()));
        Explanation { record_id: record.id, prediction, probability, units: out }
    }

    /// The `k` units with the largest absolute impact.
    pub fn top_units(&self, k: usize) -> &[ExplainedUnit] {
        &self.units[..k.min(self.units.len())]
    }

    /// Sum of positive impacts (evidence for match).
    pub fn match_evidence(&self) -> f32 {
        self.units.iter().map(|u| u.impact.max(0.0)).sum()
    }

    /// Sum of negative impacts (evidence for non-match), as a negative number.
    pub fn non_match_evidence(&self) -> f32 {
        self.units.iter().map(|u| u.impact.min(0.0)).sum()
    }

    /// Attribute-level view of the explanation (the granularity CERTA uses,
    /// per the paper's related work): total impact, unit count, and
    /// paired-unit count per attribute, sorted by descending |impact|.
    pub fn by_attribute(&self) -> Vec<AttributeImpact> {
        let mut map: std::collections::HashMap<&str, AttributeImpact> =
            std::collections::HashMap::new();
        for u in &self.units {
            let entry = map.entry(u.attribute.as_str()).or_insert_with(|| AttributeImpact {
                attribute: u.attribute.clone(),
                impact: 0.0,
                units: 0,
                paired_units: 0,
            });
            entry.impact += u.impact;
            entry.units += 1;
            entry.paired_units += usize::from(u.paired);
        }
        let mut out: Vec<AttributeImpact> = map.into_values().collect();
        out.sort_by(|a, b| b.impact.abs().total_cmp(&a.impact.abs()));
        out
    }
}

/// Aggregated impact of one schema attribute (see [`Explanation::by_attribute`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttributeImpact {
    /// Attribute name.
    pub attribute: String,
    /// Summed impact of the attribute's units (signed).
    pub impact: f32,
    /// Number of decision units assigned to the attribute.
    pub units: usize,
    /// How many of them are paired.
    pub paired_units: usize,
}

impl fmt::Display for Explanation {
    /// Renders the Figure 3-style bar chart in ASCII.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "record {} → {} (p = {:.3})",
            self.record_id,
            if self.prediction { "MATCH" } else { "NO MATCH" },
            self.probability
        )?;
        let max = self
            .units
            .iter()
            .map(|u| u.impact.abs())
            .fold(0.0f32, f32::max)
            .max(1e-6);
        for u in &self.units {
            let width = ((u.impact.abs() / max) * 30.0).round() as usize;
            let bar: String =
                std::iter::repeat_n(if u.impact >= 0.0 { '+' } else { '-' }, width).collect();
            writeln!(
                f,
                "  {:>30} [{:^12}] {:+.4} {}",
                u.display_pair(),
                u.attribute,
                u.impact,
                bar
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Side, TokenRef};
    use wym_data::{Entity, RecordPair};
    use wym_embed::Embedder;
    use wym_tokenize::Tokenizer;

    fn record() -> TokenizedRecord {
        let pair = RecordPair {
            id: 3,
            label: true,
            left: Entity::new(vec!["exch eng"]),
            right: Entity::new(vec!["exch"]),
        };
        TokenizedRecord::from_pair(&pair, &Tokenizer::default(), &Embedder::new_static(32, 0))
    }

    fn sample() -> Explanation {
        let rec = record();
        let units = vec![
            DecisionUnit::Paired {
                left: TokenRef::new(0, 0),
                right: TokenRef::new(0, 0),
                similarity: 0.95,
            },
            DecisionUnit::Unpaired { token: TokenRef::new(0, 1), side: Side::Left },
        ];
        Explanation::build(
            &rec,
            &["name".to_string()],
            &units,
            &[0.9, -0.5],
            &[0.4, -0.7],
            true,
            0.8,
        )
    }

    #[test]
    fn units_sorted_by_absolute_impact() {
        let ex = sample();
        assert_eq!(ex.units.len(), 2);
        assert!(ex.units[0].impact.abs() >= ex.units[1].impact.abs());
        assert_eq!(ex.units[0].display_pair(), "(eng)");
        assert_eq!(ex.units[1].display_pair(), "(exch,exch)");
    }

    #[test]
    fn evidence_sums() {
        let ex = sample();
        assert!((ex.match_evidence() - 0.4).abs() < 1e-6);
        assert!((ex.non_match_evidence() + 0.7).abs() < 1e-6);
    }

    #[test]
    fn top_units_clamps() {
        let ex = sample();
        assert_eq!(ex.top_units(1).len(), 1);
        assert_eq!(ex.top_units(10).len(), 2);
    }

    #[test]
    fn display_renders_bars() {
        let ex = sample();
        let s = ex.to_string();
        assert!(s.contains("MATCH"));
        assert!(s.contains("(exch,exch)"));
        assert!(s.contains('-'), "negative bar expected");
    }

    #[test]
    fn attribute_aggregation_sums_impacts() {
        let ex = sample();
        let attrs = ex.by_attribute();
        assert_eq!(attrs.len(), 1);
        assert_eq!(attrs[0].attribute, "name");
        assert!((attrs[0].impact - (0.4 - 0.7)).abs() < 1e-6);
        assert_eq!(attrs[0].units, 2);
        assert_eq!(attrs[0].paired_units, 1);
    }

    #[test]
    fn unknown_attribute_name_falls_back() {
        let rec = record();
        let units =
            vec![DecisionUnit::Unpaired { token: TokenRef::new(0, 0), side: Side::Left }];
        let ex = Explanation::build(&rec, &[], &units, &[0.0], &[0.0], false, 0.1);
        assert_eq!(ex.units[0].attribute, "attr0");
    }
}
