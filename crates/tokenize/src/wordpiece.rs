//! Word-piece-lite: a greedy longest-match subword splitter.
//!
//! BERT's word-piece tokenizer splits out-of-vocabulary words into subword
//! units (`dslra200w → dsl ##ra ##200 ##w`). The paper's error analysis
//! (§5.1.1) traces WYM's product-code mistakes to exactly this mechanism.
//! We reproduce it below the word level: a frequency-built vocabulary of
//! subword pieces plus greedy longest-prefix segmentation. The embedding
//! substrate uses the pieces as features; the decision units themselves stay
//! at word granularity (as in the paper's figures).

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A learned subword vocabulary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WordPieceVocab {
    pieces: HashSet<String>,
    max_piece_len: usize,
}

impl WordPieceVocab {
    /// Builds a vocabulary from a corpus of word tokens.
    ///
    /// All substrings of length 1..=`max_piece_len` occurring at least
    /// `min_count` times become pieces; single characters are always included
    /// so segmentation can never fail.
    pub fn build<'a>(
        corpus: impl IntoIterator<Item = &'a str>,
        max_piece_len: usize,
        min_count: usize,
    ) -> Self {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for word in corpus {
            let chars: Vec<char> = word.chars().collect();
            for start in 0..chars.len() {
                for len in 1..=max_piece_len.min(chars.len() - start) {
                    let piece: String = chars[start..start + len].iter().collect();
                    *counts.entry(piece).or_insert(0) += 1;
                }
            }
        }
        let mut pieces: HashSet<String> = counts
            .into_iter()
            .filter(|(p, c)| *c >= min_count || p.chars().count() == 1)
            .map(|(p, _)| p)
            .collect();
        // Safety net: cover ASCII alphanumerics even if unseen.
        for c in ('a'..='z').chain('0'..='9') {
            pieces.insert(c.to_string());
        }
        Self { pieces, max_piece_len }
    }

    /// Number of pieces in the vocabulary.
    pub fn len(&self) -> usize {
        self.pieces.len()
    }

    /// True when the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.pieces.is_empty()
    }

    /// True when `piece` is in the vocabulary.
    pub fn contains(&self, piece: &str) -> bool {
        self.pieces.contains(piece)
    }

    /// Greedy longest-match segmentation of a word into pieces.
    ///
    /// Unknown characters fall back to single-character pieces, so the
    /// concatenation of the output always equals the input.
    pub fn segment(&self, word: &str) -> Vec<String> {
        let chars: Vec<char> = word.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let max_len = self.max_piece_len.min(chars.len() - i);
            let mut matched = 1;
            for len in (1..=max_len).rev() {
                let cand: String = chars[i..i + len].iter().collect();
                if self.pieces.contains(&cand) {
                    matched = len;
                    break;
                }
            }
            out.push(chars[i..i + matched].iter().collect());
            i += matched;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> WordPieceVocab {
        let corpus = ["camera", "camera", "camcorder", "digital", "digital", "case"];
        WordPieceVocab::build(corpus.iter().copied(), 4, 2)
    }

    #[test]
    fn frequent_substrings_become_pieces() {
        let v = vocab();
        assert!(v.contains("cam")); // in camera×2 + camcorder
        assert!(v.contains("digi"));
    }

    #[test]
    fn segmentation_concatenates_to_input() {
        let v = vocab();
        for word in ["camera", "camcorder", "zzz999", "dslra200w"] {
            let pieces = v.segment(word);
            assert_eq!(pieces.concat(), word, "pieces {pieces:?}");
            assert!(!pieces.is_empty());
        }
    }

    #[test]
    fn greedy_prefers_longest_match() {
        let v = vocab();
        let pieces = v.segment("camera");
        assert_eq!(pieces[0].chars().count(), 4, "expected 4-char greedy piece, got {pieces:?}");
    }

    #[test]
    fn unknown_chars_fall_back_to_singletons() {
        let v = vocab();
        let pieces = v.segment("ωφ");
        assert_eq!(pieces, vec!["ω".to_string(), "φ".to_string()]);
    }

    #[test]
    fn empty_word_yields_no_pieces() {
        assert!(vocab().segment("").is_empty());
    }
}
