//! A compact English stop-word list.
//!
//! The list mirrors the short function-word inventory used by classic IR
//! toolkits; EM entity descriptions are noun-heavy, so a small list removes
//! almost all function words without touching domain terms.

/// Sorted list of stop words (binary-searchable).
pub const STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "all", "am", "an", "and", "any", "are", "as", "at",
    "be", "because", "been", "before", "being", "below", "between", "both", "but", "by", "can",
    "did", "do", "does", "doing", "down", "during", "each", "few", "for", "from", "further",
    "had", "has", "have", "having", "he", "her", "here", "hers", "him", "his", "how", "i", "if",
    "in", "into", "is", "it", "its", "itself", "just", "me", "more", "most", "my", "no", "nor",
    "not", "now", "of", "off", "on", "once", "only", "or", "other", "our", "ours", "out", "over",
    "own", "per", "same", "she", "so", "some", "such", "than", "that", "the", "their", "theirs",
    "them", "then", "there", "these", "they", "this", "those", "through", "to", "too", "under",
    "until", "up", "very", "was", "we", "were", "what", "when", "where", "which", "while", "who",
    "whom", "why", "will", "with", "you", "your", "yours",
];

/// Returns true when `token` (already lower-cased) is a stop word.
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.binary_search(&token).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_deduped() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, STOPWORDS, "STOPWORDS must stay sorted for binary search");
    }

    #[test]
    fn common_words_detected() {
        for w in ["the", "with", "a", "of", "and"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn domain_terms_kept() {
        for w in ["camera", "sony", "microsoft", "licenses", "price"] {
            assert!(!is_stopword(w), "{w} must not be a stopword");
        }
    }
}
