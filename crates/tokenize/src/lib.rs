//! Tokenization substrate for the WYM entity-matching system.
//!
//! WYM concatenates the attribute values of a record and applies "word-piece
//! tokenization with stop word removal" (paper §4.1.1). Decision units live at
//! the level of *words*, so the public tokenizer produces word tokens:
//! lower-cased alphanumeric runs with decimal numbers kept intact and English
//! stop words removed. A word-piece-style greedy subword splitter is provided
//! separately ([`wordpiece`]) and is used by the embedding substrate to build
//! sub-token character features, mirroring how BERT's subword vocabulary sits
//! *below* the word level.

pub mod stopwords;
pub mod wordpiece;

use serde::{Deserialize, Serialize};

/// Configurable word tokenizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tokenizer {
    /// Lower-case the input before splitting (default true).
    pub lowercase: bool,
    /// Drop English stop words (default true, per the paper).
    pub remove_stopwords: bool,
    /// Drop tokens shorter than this many characters (default 1 = keep all).
    pub min_len: usize,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self { lowercase: true, remove_stopwords: true, min_len: 1 }
    }
}

impl Tokenizer {
    /// A tokenizer that keeps everything (no stop word removal).
    pub fn keep_all() -> Self {
        Self { lowercase: true, remove_stopwords: false, min_len: 1 }
    }

    /// Splits `text` into word tokens.
    ///
    /// Tokens are maximal runs of alphanumeric characters; a single `.` or
    /// `,` flanked by digits stays inside the token so prices like `37.63`
    /// survive as one token (matching the paper's running example).
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let source: String = if self.lowercase { text.to_lowercase() } else { text.to_string() };
        let chars: Vec<char> = source.chars().collect();
        let mut tokens = Vec::new();
        let mut cur = String::new();
        for (i, &c) in chars.iter().enumerate() {
            let digit_separator = (c == '.' || c == ',')
                && !cur.is_empty()
                && cur.chars().last().is_some_and(|p| p.is_ascii_digit())
                && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit());
            if c.is_alphanumeric() || digit_separator {
                cur.push(c);
            } else if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() {
            tokens.push(cur);
        }
        tokens.retain(|t| {
            t.chars().count() >= self.min_len
                && !(self.remove_stopwords && stopwords::is_stopword(t))
        });
        tokens
    }

    /// Tokenizes each attribute value separately, returning one token list
    /// per attribute. This is the entry point used by the decision unit
    /// generator, which needs to know the attribute each token came from.
    pub fn tokenize_attributes(&self, values: &[String]) -> Vec<Vec<String>> {
        let _span = wym_obs::span("tokenize");
        let out: Vec<Vec<String>> = values.iter().map(|v| self.tokenize(v)).collect();
        if wym_obs::enabled() {
            let n_tokens: usize = out.iter().map(|a| a.len()).sum();
            wym_obs::counter_add("tokenize.records", 1);
            wym_obs::counter_add("tokenize.tokens", n_tokens as u64);
            wym_obs::hist_observe("tokenize.tokens_per_record", n_tokens as f64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_lowercases() {
        let t = Tokenizer::default();
        assert_eq!(t.tokenize("Exch Srvr, External/SA!"), vec!["exch", "srvr", "external", "sa"]);
    }

    #[test]
    fn keeps_decimal_numbers_whole() {
        let t = Tokenizer::default();
        assert_eq!(t.tokenize("price: 37.63 usd"), vec!["price", "37.63", "usd"]);
        assert_eq!(t.tokenize("1,000 units"), vec!["1,000", "units"]);
    }

    #[test]
    fn trailing_dot_is_not_glued() {
        let t = Tokenizer::default();
        assert_eq!(t.tokenize("price 42."), vec!["price", "42"]);
    }

    #[test]
    fn removes_stopwords_by_default() {
        let t = Tokenizer::default();
        assert_eq!(t.tokenize("the camera with a lens"), vec!["camera", "lens"]);
    }

    #[test]
    fn keep_all_retains_stopwords() {
        let t = Tokenizer::keep_all();
        assert_eq!(t.tokenize("the camera"), vec!["the", "camera"]);
    }

    #[test]
    fn alphanumeric_codes_survive() {
        let t = Tokenizer::default();
        assert_eq!(t.tokenize("dslra200w (5811)"), vec!["dslra200w", "5811"]);
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        let t = Tokenizer::default();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("  \t\n ").is_empty());
        assert!(t.tokenize("?!...").is_empty());
    }

    #[test]
    fn min_len_filters_short_tokens() {
        let t = Tokenizer { min_len: 2, ..Tokenizer::default() };
        assert_eq!(t.tokenize("a 4 tv xx"), vec!["tv", "xx"]);
    }

    #[test]
    fn tokenize_attributes_keeps_attribute_boundaries() {
        let t = Tokenizer::default();
        let out = t.tokenize_attributes(&["sony camera".into(), "37.63".into()]);
        assert_eq!(out, vec![vec!["sony".to_string(), "camera".into()], vec!["37.63".into()]]);
    }

    #[test]
    fn unicode_words() {
        let t = Tokenizer::default();
        assert_eq!(t.tokenize("Café Zürich"), vec!["café", "zürich"]);
    }
}
