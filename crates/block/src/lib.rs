//! `wym-block` — candidate-pair generation for million-record tables.
//!
//! WYM's matching pipeline scores *pairs*; on a deduplication table of a
//! million records the all-pairs set is ~5·10¹¹ and must be cut to a few
//! million candidates before anything downstream runs. This crate does that
//! in two passes that cover each other's blind spots:
//!
//! 1. **Lexical** ([`index::TokenIndex`]): a sharded TF-IDF-weighted token
//!    inverted index. Catches every duplicate that still shares a rare
//!    token (model codes, unusual words), misses duplicates whose rare
//!    tokens were all corrupted.
//! 2. **ANN recall** ([`ann::AnnIndex`]): hashed-n-gram record embeddings,
//!    int8-quantized, probed through random-hyperplane LSH and re-scored
//!    exactly in f32. Catches typo-corrupted duplicates (character n-grams
//!    survive typos that defeat token equality), at the cost of a
//!    per-record probe budget.
//!
//! The merged candidate set is sorted, deduplicated, and **bit-identical
//! across kernel implementations (`WYM_KERNEL=scalar|auto`) and thread
//! counts** — the quantized pass only *selects* survivors with exact
//! integer arithmetic, and every f32 value that decides acceptance comes
//! from the dispatched kernels, whose scalar and SIMD paths match
//! bit-for-bit by contract. [`pair_checksum`] condenses the set into one
//! u64 so experiment harnesses can assert equality across runs cheaply.

pub mod ann;
pub mod index;
pub mod synth;

pub use ann::{AnnConfig, AnnIndex};
pub use index::TokenIndex;
pub use synth::{generate, SynthConfig, SynthTable};

use wym_data::Entity;
use wym_linalg::kernels::{self, KernelImpl};

/// Observability stage names of the blocking pipeline, in execution order.
/// Pass to `wym_obs::register_stages` before a run so span paths come out
/// in a stable order.
pub const BLOCK_STAGES: &[&str] = &[
    "block_synth",
    "block_index",
    "block_lexical",
    "block_embed",
    "block_ann_index",
    "block_ann",
    "block_merge",
];

/// Configuration of the full blocking pipeline.
#[derive(Debug, Clone)]
pub struct BlockConfig {
    /// Lexical candidates kept per record (top-k by TF-IDF overlap).
    pub lexical_k: usize,
    /// Document-frequency pruning fraction for the inverted index.
    pub max_df_frac: f32,
    /// Pruning cutoff floor — tokens with df at or below this always keep
    /// their posting lists, however small the table.
    pub min_df_cutoff: usize,
    /// The ANN recall layer; `ann.tables = 0` disables the pass entirely.
    pub ann: AnnConfig,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Kernel implementation override; `None` resolves `WYM_KERNEL` via
    /// [`wym_linalg::kernels::active`]. Tests pin both paths explicitly to
    /// prove bit-identity inside one process.
    pub kernel: Option<KernelImpl>,
}

impl Default for BlockConfig {
    fn default() -> Self {
        Self {
            lexical_k: 10,
            max_df_frac: 0.001,
            min_df_cutoff: 64,
            ann: AnnConfig::default(),
            threads: 0,
            kernel: None,
        }
    }
}

/// The result of one blocking run.
#[derive(Debug, Clone)]
pub struct BlockOutput {
    /// Candidate pairs `(i, j)` with `i < j`, sorted ascending, unique.
    pub pairs: Vec<(u32, u32)>,
    /// FNV-1a over the little-endian pair bytes — the cross-run equality
    /// witness (also published as the `block.checksum` counter).
    pub checksum: u64,
    /// Pairs contributed by the lexical pass (before dedup).
    pub lexical_pairs: usize,
    /// Pairs contributed by the ANN pass (before dedup).
    pub ann_pairs: usize,
}

/// Blocks a deduplication table given one text per record.
pub fn block_table(texts: &[String], config: &BlockConfig) -> BlockOutput {
    block_table_with_ann(texts, config).0
}

/// Like [`block_table`], but also hands back the built [`AnnIndex`]
/// (`None` when the ANN pass is disabled) so callers can persist its
/// quantized table — e.g. into a WYMA artifact via
/// `wym_artifact::add_quantized` — instead of rebuilding it.
pub fn block_table_with_ann(
    texts: &[String],
    config: &BlockConfig,
) -> (BlockOutput, Option<AnnIndex>) {
    let imp = config.kernel.unwrap_or_else(kernels::active);
    let index = TokenIndex::build(texts, config.max_df_frac, config.min_df_cutoff, config.threads);
    let lexical = index.top_candidates(config.lexical_k, config.threads);
    let (ann, ann_index) = if config.ann.tables == 0 {
        (Vec::new(), None)
    } else {
        let ann_index = AnnIndex::build(
            index.vocab(),
            index.all_record_tokens(),
            &config.ann,
            imp,
            config.threads,
        );
        (ann_index.candidates(imp, config.threads), Some(ann_index))
    };

    let _span = wym_obs::span("block_merge");
    let lexical_pairs: usize = lexical.iter().map(Vec::len).sum();
    let ann_pairs: usize = ann.iter().map(Vec::len).sum();
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(lexical_pairs + ann_pairs);
    for (i, cands) in lexical.iter().enumerate() {
        let i = i as u32;
        for &j in cands {
            pairs.push((i.min(j), i.max(j)));
        }
    }
    for (i, cands) in ann.iter().enumerate() {
        let i = i as u32;
        for &j in cands {
            // ANN candidates are already i < j by construction.
            pairs.push((i, j));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    let checksum = pair_checksum(&pairs);
    wym_obs::counter_add("block.pairs", pairs.len() as u64);
    wym_obs::counter_add("block.checksum", checksum);
    (BlockOutput { pairs, checksum, lexical_pairs, ann_pairs }, ann_index)
}

/// Blocks a table of [`Entity`] records by their concatenated attributes.
pub fn block_entities(records: &[Entity], config: &BlockConfig) -> BlockOutput {
    block_entities_with_ann(records, config).0
}

/// [`block_entities`] variant that also returns the built [`AnnIndex`];
/// see [`block_table_with_ann`].
pub fn block_entities_with_ann(
    records: &[Entity],
    config: &BlockConfig,
) -> (BlockOutput, Option<AnnIndex>) {
    let texts: Vec<String> = records.iter().map(Entity::full_text).collect();
    block_table_with_ann(&texts, config)
}

/// FNV-1a over the little-endian bytes of the pair list — one u64 that two
/// runs can compare to assert their candidate sets are identical.
pub fn pair_checksum(pairs: &[(u32, u32)]) -> u64 {
    let mut bytes = Vec::with_capacity(pairs.len() * 8);
    for &(i, j) in pairs {
        bytes.extend_from_slice(&i.to_le_bytes());
        bytes.extend_from_slice(&j.to_le_bytes());
    }
    wym_obs::manifest::fnv1a(&bytes)
}

/// Fraction of `gold` pairs present in `pairs`. Both lists must be sorted
/// ascending with `i < j` per pair (the [`block_table`] and
/// [`synth::generate`] contracts). Empty gold yields 1.0.
pub fn recall(pairs: &[(u32, u32)], gold: &[(u32, u32)]) -> f64 {
    if gold.is_empty() {
        return 1.0;
    }
    let hit = gold.iter().filter(|g| pairs.binary_search(g).is_ok()).count();
    hit as f64 / gold.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> BlockConfig {
        BlockConfig {
            lexical_k: 10,
            max_df_frac: 0.05,
            min_df_cutoff: 8,
            ann: AnnConfig { threshold: 0.7, ..AnnConfig::default() },
            threads: 1,
            kernel: Some(KernelImpl::Scalar),
        }
    }

    fn small_table() -> SynthTable {
        generate(&SynthConfig { n_records: 2_000, dup_frac: 0.2, seed: 3, medium_vocab: 300 })
    }

    #[test]
    fn end_to_end_recall_on_small_table() {
        let table = small_table();
        let out = block_entities(&table.records, &small_config());
        let r = recall(&out.pairs, &table.gold);
        assert!(r >= 0.95, "recall {r} on {} pairs", out.pairs.len());
        // The candidate set must stay far below all-pairs.
        let n = table.records.len() as u64;
        assert!((out.pairs.len() as u64) < n * n / 20, "{} pairs", out.pairs.len());
    }

    #[test]
    fn ann_pass_rescues_typo_corrupted_duplicates() {
        // Pairs (2i, 2i+1) where EVERY token of the duplicate carries one
        // character typo: token equality matches nothing, so the lexical
        // pass is blind to these pairs and only character-n-gram ANN can
        // recover them.
        let mut texts = Vec::new();
        let mut gold = Vec::new();
        for i in 0..40u32 {
            // Deterministic 12-char tokens, unrelated across pairs.
            let tokens: Vec<String> = (0..5u32)
                .map(|k| {
                    (0..12u32)
                        .map(|c| char::from(b'a' + ((i * 31 + k * 7 + c * 13) % 26) as u8))
                        .collect()
                })
                .collect();
            let typod: Vec<String> = tokens
                .iter()
                .map(|t| {
                    let mut cs: Vec<char> = t.chars().collect();
                    cs[5] = char::from(b'a' + ((cs[5] as u8 - b'a' + 1) % 26));
                    cs.into_iter().collect()
                })
                .collect();
            gold.push((2 * i, 2 * i + 1));
            texts.push(tokens.join(" "));
            texts.push(typod.join(" "));
        }
        let config = BlockConfig {
            ann: AnnConfig { bits: 6, threshold: 0.4, ..AnnConfig::default() },
            ..small_config()
        };
        let with_ann = block_table(&texts, &config);
        let without_ann = block_table(
            &texts,
            &BlockConfig { ann: AnnConfig { tables: 0, ..AnnConfig::default() }, ..config.clone() },
        );
        let r_with = recall(&with_ann.pairs, &gold);
        let r_without = recall(&without_ann.pairs, &gold);
        assert_eq!(r_without, 0.0, "no token survives the typo pass: {without_ann:?}");
        assert!(
            r_with >= 0.9,
            "ANN must recover typo-only duplicates: recall {r_with}"
        );
    }

    #[test]
    fn output_is_bit_identical_across_kernels_and_threads() {
        let table = small_table();
        let reference = block_entities(&table.records, &small_config());
        let best = kernels::detect_best();
        for imp in [KernelImpl::Scalar, best] {
            for threads in [1usize, 2, 4] {
                let config =
                    BlockConfig { threads, kernel: Some(imp), ..small_config() };
                let got = block_entities(&table.records, &config);
                assert_eq!(got.pairs, reference.pairs, "imp {imp:?} threads {threads}");
                assert_eq!(got.checksum, reference.checksum);
            }
        }
    }

    #[test]
    fn pairs_are_sorted_unique_and_normalized() {
        let table = small_table();
        let out = block_entities(&table.records, &small_config());
        let mut sorted = out.pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, out.pairs);
        assert!(out.pairs.iter().all(|&(i, j)| i < j));
        assert_eq!(out.checksum, pair_checksum(&out.pairs));
    }

    #[test]
    fn recall_counts_hits_exactly() {
        let pairs = vec![(0, 1), (2, 5), (3, 4)];
        assert_eq!(recall(&pairs, &[(0, 1), (3, 4)]), 1.0);
        assert_eq!(recall(&pairs, &[(0, 1), (9, 10)]), 0.5);
        assert_eq!(recall(&pairs, &[]), 1.0);
        assert_eq!(recall(&[], &[(1, 2)]), 0.0);
    }
}
