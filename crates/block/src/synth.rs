//! Synthetic million-record dedup tables with exact gold pairings.
//!
//! The Magellan generator (`wym-data`) produces *labeled pairs* for the
//! matching experiments; blocking needs the step before — one large table
//! containing duplicates whose identity is known exactly, so recall can be
//! measured against ground truth instead of a heuristic. This generator
//! builds product-shaped records (brand, category, descriptive words, a
//! near-unique model code, a price) and duplicates a configurable fraction
//! of them under realistic corruptions: dropped tokens, character typos
//! (which defeat token-equality blocking and exercise the ANN recall
//! layer), truncation-style abbreviations, and token reordering.
//!
//! Everything is driven by one [`wym_linalg::Rng64`] seed: the same config
//! produces the byte-identical table and gold set on every machine, which
//! is what lets `blocking_scale --smoke` diff its observability snapshot
//! against a committed baseline.

use wym_data::Entity;
use wym_linalg::Rng64;

/// Configuration of one synthetic dedup table.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Total records in the table (bases + duplicates).
    pub n_records: usize,
    /// Fraction of records that are duplicates of some base (0..1).
    pub dup_frac: f64,
    /// RNG seed; fully determines the table.
    pub seed: u64,
    /// Size of the mid-frequency descriptive vocabulary. Document frequency
    /// of these words scales as `n_records / medium_vocab`, so this knob
    /// controls posting-list lengths in the lexical index.
    pub medium_vocab: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self { n_records: 1_000_000, dup_frac: 0.2, seed: 7, medium_vocab: 4000 }
    }
}

/// A generated table: records plus the exact duplicate pairing.
#[derive(Debug, Clone)]
pub struct SynthTable {
    /// The records, in randomized order.
    pub records: Vec<Entity>,
    /// Gold duplicate pairs `(i, j)` with `i < j`, sorted ascending.
    pub gold: Vec<(u32, u32)>,
}

const BRANDS: &[&str] = &[
    "sony", "canon", "nikon", "panasonic", "samsung", "olympus", "fujifilm", "kodak", "pentax",
    "leica", "sigma", "tamron", "casio", "sanyo", "vivitar", "polaroid", "garmin", "tomtom",
    "logitech", "netgear", "linksys", "belkin", "toshiba", "lenovo", "asus", "acer", "dell",
    "epson", "brother", "xerox", "philips", "sharp", "pioneer", "yamaha", "denon", "onkyo",
    "bose", "jbl", "klipsch", "sennheiser",
];

const CATEGORIES: &[&str] = &[
    "camera", "camcorder", "lens", "printer", "scanner", "router", "modem", "monitor",
    "keyboard", "mouse", "headphones", "speaker", "receiver", "projector", "tablet", "laptop",
    "desktop", "server", "switch", "drive", "player", "recorder", "adapter", "charger",
    "battery", "tripod", "flash", "filter", "microphone", "webcam",
];

const SYLLABLES: &[&str] = &[
    "ba", "co", "di", "fu", "ga", "ho", "ji", "ka", "lu", "mo", "ne", "pi", "qua", "ro", "sa",
    "te", "ul", "ve", "wo", "xi", "ya", "zo", "bra", "cli", "dro", "fle", "gri", "plo", "ste",
    "tra",
];

/// The mid-frequency descriptive vocabulary: deterministic pronounceable
/// words, `medium_vocab` of them.
fn medium_words(n: usize, rng: &mut Rng64) -> Vec<String> {
    (0..n)
        .map(|_| {
            let syllables = 2 + rng.gen_range(3);
            let mut w = String::new();
            for _ in 0..syllables {
                w.push_str(SYLLABLES[rng.gen_range(SYLLABLES.len())]);
            }
            w
        })
        .collect()
}

/// A near-unique alphanumeric model code, e.g. `dsc4871xk`.
fn model_code(rng: &mut Rng64) -> String {
    let mut code = String::new();
    for _ in 0..3 {
        code.push((b'a' + rng.gen_range(26) as u8) as char);
    }
    for _ in 0..4 {
        code.push((b'0' + rng.gen_range(10) as u8) as char);
    }
    for _ in 0..2 {
        code.push((b'a' + rng.gen_range(26) as u8) as char);
    }
    code
}

/// One base record: `[name, description, price]`.
fn base_record(words: &[String], rng: &mut Rng64) -> Entity {
    let brand = BRANDS[rng.gen_range(BRANDS.len())];
    let category = CATEGORIES[rng.gen_range(CATEGORIES.len())];
    let code = model_code(rng);
    let n_desc = 2 + rng.gen_range(3);
    let desc: Vec<&str> =
        (0..n_desc).map(|_| words[rng.gen_range(words.len())].as_str()).collect();
    let price = format!("{}.{:02}", 5 + rng.gen_range(995), rng.gen_range(100));
    Entity::new(vec![
        format!("{brand} {category} {code}"),
        desc.join(" "),
        price,
    ])
}

/// Introduces one character-level typo into a token (swap of two adjacent
/// characters, or replacement of one character).
fn typo(token: &str, rng: &mut Rng64) -> String {
    let chars: Vec<char> = token.chars().collect();
    if chars.len() < 2 {
        return token.to_string();
    }
    let mut chars = chars;
    let at = rng.gen_range(chars.len() - 1);
    if rng.gen_bool(0.5) {
        chars.swap(at, at + 1);
    } else {
        chars[at] = (b'a' + rng.gen_range(26) as u8) as char;
    }
    chars.into_iter().collect()
}

/// A corrupted copy of `base`: 1–3 perturbations drawn from token drop,
/// character typo, abbreviation, and token reorder. The corruption level is
/// calibrated so a sound lexical+ANN blocker can reach ≥0.98 recall while a
/// token-equality-only pass cannot.
fn perturb(base: &Entity, rng: &mut Rng64) -> Entity {
    let mut tokens: Vec<String> = base
        .values
        .iter()
        .flat_map(|v| v.split_whitespace().map(str::to_string))
        .collect();
    let n_ops = 1 + rng.gen_range(3);
    for _ in 0..n_ops {
        if tokens.len() < 3 {
            break;
        }
        match rng.gen_range(4) {
            0 => {
                let at = rng.gen_range(tokens.len());
                tokens.remove(at);
            }
            1 => {
                let at = rng.gen_range(tokens.len());
                tokens[at] = typo(&tokens[at], rng);
            }
            2 => {
                let at = rng.gen_range(tokens.len());
                let t = &tokens[at];
                if t.chars().count() > 4 {
                    tokens[at] = t.chars().take(4).collect();
                }
            }
            _ => {
                let a = rng.gen_range(tokens.len());
                let b = rng.gen_range(tokens.len());
                tokens.swap(a, b);
            }
        }
    }
    // Duplicates collapse to a single free-text attribute, mimicking feeds
    // that lose the source schema.
    Entity::new(vec![tokens.join(" ")])
}

/// Generates the table. `n_records` records come back shuffled; `gold`
/// holds every (base, duplicate) pair under the final ordering.
pub fn generate(config: &SynthConfig) -> SynthTable {
    let _span = wym_obs::span("block_synth");
    let mut rng = Rng64::new(config.seed);
    let words = medium_words(config.medium_vocab.max(1), &mut rng);
    let n_dups = ((config.n_records as f64) * config.dup_frac).round() as usize;
    let n_dups = n_dups.min(config.n_records / 2);
    let n_bases = config.n_records - n_dups;

    let bases: Vec<Entity> = (0..n_bases).map(|_| base_record(&words, &mut rng)).collect();
    // Duplicate sources: a random subset of distinct bases.
    let mut source_idx: Vec<usize> = (0..n_bases).collect();
    rng.shuffle(&mut source_idx);
    source_idx.truncate(n_dups);

    let mut records = bases;
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(n_dups);
    for &src in &source_idx {
        let dup = perturb(&records[src], &mut rng);
        pairs.push((src, records.len()));
        records.push(dup);
    }

    // Shuffle the final table so duplicates are not clustered at the end.
    let mut order: Vec<usize> = (0..records.len()).collect();
    rng.shuffle(&mut order);
    let mut position = vec![0usize; records.len()];
    for (new_pos, &old_pos) in order.iter().enumerate() {
        position[old_pos] = new_pos;
    }
    let mut shuffled: Vec<Option<Entity>> = records.into_iter().map(Some).collect();
    let records: Vec<Entity> =
        order.iter().map(|&old| shuffled[old].take().expect("each index once")).collect();
    let mut gold: Vec<(u32, u32)> = pairs
        .into_iter()
        .map(|(a, b)| {
            let (x, y) = (position[a] as u32, position[b] as u32);
            (x.min(y), x.max(y))
        })
        .collect();
    gold.sort_unstable();
    wym_obs::counter_add("block.synth.records", records.len() as u64);
    wym_obs::counter_add("block.synth.gold_pairs", gold.len() as u64);
    SynthTable { records, gold }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SynthConfig {
        SynthConfig { n_records: 500, dup_frac: 0.2, seed: 11, medium_vocab: 200 }
    }

    #[test]
    fn sizes_and_gold_shape() {
        let t = generate(&small());
        assert_eq!(t.records.len(), 500);
        assert_eq!(t.gold.len(), 100);
        for &(i, j) in &t.gold {
            assert!(i < j, "normalized pairs");
            assert!((j as usize) < t.records.len());
        }
        let mut sorted = t.gold.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, t.gold, "gold is sorted and unique");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.records, b.records);
        assert_eq!(a.gold, b.gold);
        let c = generate(&SynthConfig { seed: 12, ..small() });
        assert_ne!(a.records, c.records, "seed changes the table");
    }

    #[test]
    fn duplicates_stay_recognizable() {
        let t = generate(&small());
        for &(i, j) in t.gold.iter().take(20) {
            let a = t.records[i as usize].full_text();
            let b = t.records[j as usize].full_text();
            let ta: std::collections::HashSet<&str> = a.split_whitespace().collect();
            let tb: std::collections::HashSet<&str> = b.split_whitespace().collect();
            let shared = ta.intersection(&tb).count();
            assert!(
                shared + 3 >= ta.len().min(tb.len()),
                "duplicate drifted too far: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn dup_frac_is_capped_at_half() {
        let t = generate(&SynthConfig { n_records: 100, dup_frac: 0.9, ..small() });
        assert_eq!(t.records.len(), 100);
        assert_eq!(t.gold.len(), 50);
    }
}
