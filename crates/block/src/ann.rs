//! The ANN recall layer: int8-quantized record vectors behind
//! random-hyperplane LSH, with exact f32 re-scoring of survivors.
//!
//! Each record gets one unit vector — the normalized mean of its (unique)
//! tokens' hashed-n-gram embeddings, computed once per *vocabulary entry*
//! rather than per token instance. Candidates come from LSH buckets:
//! records sharing a full signature in any table are probed with the exact
//! integer [`wym_linalg::kernels::dot_i8`] over the quantized table, the
//! top-m per record survive, and survivors are re-scored with the exact f32
//! [`wym_linalg::kernels::cosine_with`] — the quantized pass only *selects*
//! pairs, it never decides a score, so the §11 quantization error bound
//! only affects recall, never the determinism of accepted candidates.
//!
//! Determinism argument, step by step: token embedding is a pure function;
//! record vectors accumulate token vectors in ascending token-id order with
//! kernel `axpy` (bit-identical across implementations); signatures take
//! the sign of bit-identical kernel dots; bucket membership lists are built
//! in ascending record order; probe lists are sorted and deduped; the
//! quantized score is an exact integer scaled by two f32 multiplies in a
//! fixed order; survivor selection uses the total order (score desc, id
//! asc); re-scored cosines are bit-identical by the kernel contract. Every
//! step is invariant under thread count and `WYM_KERNEL`.

use std::cell::RefCell;
use std::collections::HashMap;
use wym_embed::{HashedNgramEmbedder, QuantizedTable};
use wym_linalg::kernels::{self, KernelImpl};
use wym_linalg::Rng64;

/// Configuration of the ANN layer.
#[derive(Debug, Clone)]
pub struct AnnConfig {
    /// Embedding dimension of the record vectors (≥ 8).
    pub dim: usize,
    /// Number of LSH tables; more tables raise recall and probe cost.
    pub tables: usize,
    /// Signature bits per table; more bits shrink buckets.
    pub bits: u32,
    /// Quantized-pass survivors per record handed to exact re-scoring.
    pub top_m: usize,
    /// Exact-cosine acceptance threshold for a candidate pair.
    pub threshold: f32,
    /// Probe-list cap per record (ascending-id truncation, counted on
    /// `block.ann.probe_truncated`).
    pub probe_cap: usize,
    /// Multi-probe LSH: additionally probe every signature at Hamming
    /// distance 1. Takes per-table hit probability from `p^bits` to
    /// `p^bits + bits·p^(bits−1)·(1−p)` for per-bit agreement `p` — the
    /// difference between ~8% and ~60% recall per table at cosine 0.9.
    pub multiprobe: bool,
    /// Embedder seed.
    pub seed: u64,
}

impl Default for AnnConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            tables: 8,
            bits: 16,
            top_m: 8,
            threshold: 0.65,
            probe_cap: 4096,
            multiprobe: true,
            seed: 7,
        }
    }
}

/// A built ANN index over one table.
pub struct AnnIndex {
    config: AnnConfig,
    /// Row-major f32 record vectors (`n × dim`), the exact re-score side.
    vectors: Vec<f32>,
    /// The int8-quantized twin of `vectors`.
    quant: QuantizedTable,
    /// Flattened per-record signatures (`n × tables`, table-major per row).
    signatures: Vec<u64>,
    /// Per-table signature → ascending member record ids.
    buckets: Vec<HashMap<u64, Vec<u32>>>,
}

impl AnnIndex {
    /// Builds record vectors, their quantized twin, and the LSH tables.
    ///
    /// `record_tokens[i]` are record `i`'s sorted unique token ids into
    /// `vocab`; `imp` pins the kernel implementation (tests compare scalar
    /// against the best-detected path).
    pub fn build(
        vocab: &[String],
        record_tokens: &[Vec<u32>],
        config: &AnnConfig,
        imp: KernelImpl,
        threads: usize,
    ) -> AnnIndex {
        let dim = config.dim;
        let n = record_tokens.len();
        let (vectors, quant) = {
            let _span = wym_obs::span("block_embed");
            // One embedding per vocabulary entry, not per token instance.
            let embedder = HashedNgramEmbedder::new(dim, config.seed);
            let token_vecs: Vec<Vec<f32>> =
                wym_par::map_indexed(vocab, threads, |_, token| embedder.embed_token(token));
            wym_obs::counter_add("block.ann.embedded_tokens", vocab.len() as u64);

            let rows: Vec<Vec<f32>> = wym_par::map_indexed(record_tokens, threads, |_, ids| {
                let mut acc = vec![0.0f32; dim];
                for &t in ids {
                    kernels::axpy_with(imp, 1.0, &token_vecs[t as usize], &mut acc);
                }
                let norm_sq = kernels::dot_with(imp, &acc, &acc);
                let norm = norm_sq.sqrt();
                if norm > f32::EPSILON {
                    let inv = 1.0 / norm;
                    for v in &mut acc {
                        *v *= inv;
                    }
                }
                acc
            });
            let quant = QuantizedTable::from_rows(&rows, dim);
            let mut vectors = Vec::with_capacity(n * dim);
            for row in &rows {
                vectors.extend_from_slice(row);
            }
            (vectors, quant)
        };

        let _span = wym_obs::span("block_ann_index");
        // Hyperplanes: tables × bits seeded normal vectors.
        let mut rng = Rng64::new(config.seed ^ 0xB10C_4A11);
        let planes: Vec<Vec<f32>> = (0..config.tables * config.bits as usize)
            .map(|_| (0..dim).map(|_| rng.normal() as f32).collect())
            .collect();
        let signatures: Vec<Vec<u64>> = {
            let ids: Vec<u32> = (0..n as u32).collect();
            wym_par::map_indexed(&ids, threads, |_, &i| {
                let row = &vectors[i as usize * dim..(i as usize + 1) * dim];
                (0..config.tables)
                    .map(|t| {
                        let mut sig = 0u64;
                        for b in 0..config.bits as usize {
                            let plane = &planes[t * config.bits as usize + b];
                            if kernels::dot_with(imp, row, plane) >= 0.0 {
                                sig |= 1 << b;
                            }
                        }
                        sig
                    })
                    .collect()
            })
        };
        let mut buckets: Vec<HashMap<u64, Vec<u32>>> =
            (0..config.tables).map(|_| HashMap::new()).collect();
        for (i, sigs) in signatures.iter().enumerate() {
            for (t, &sig) in sigs.iter().enumerate() {
                buckets[t].entry(sig).or_default().push(i as u32);
            }
        }
        let signatures: Vec<u64> = signatures.into_iter().flatten().collect();
        if wym_obs::enabled() {
            let bounds = wym_obs::hist::pow2_bounds(20);
            for table in &buckets {
                for members in table.values() {
                    wym_obs::hist_observe_with(
                        "block.ann.bucket_len",
                        &bounds,
                        members.len() as f64,
                    );
                }
            }
        }
        AnnIndex { config: config.clone(), vectors, quant, signatures, buckets }
    }

    /// The f32 record vector of record `i`.
    pub fn vector(&self, i: usize) -> &[f32] {
        &self.vectors[i * self.config.dim..(i + 1) * self.config.dim]
    }

    /// The quantized table (benchmarks probe it directly).
    pub fn quantized(&self) -> &QuantizedTable {
        &self.quant
    }

    /// Exact f32 cosine of records `i` and `j` under `imp` — the re-scoring
    /// primitive; bit-identical across kernel implementations.
    pub fn exact_cosine(&self, i: usize, j: usize, imp: KernelImpl) -> f32 {
        kernels::cosine_with(imp, self.vector(i), self.vector(j))
    }

    /// Candidate pairs `(i, j)` with `i < j` from the ANN pass: probe
    /// buckets, quantized top-m, exact re-score at the threshold.
    /// Deterministic for any thread count and kernel implementation.
    pub fn candidates(&self, imp: KernelImpl, threads: usize) -> Vec<Vec<u32>> {
        let _span = wym_obs::span("block_ann");
        let n = self.quant.len();
        let ids: Vec<u32> = (0..n as u32).collect();
        let out: Vec<Vec<u32>> = wym_par::map_indexed(&ids, threads, |_, &qi| {
            let survivors = self.quantized_survivors(qi);
            // Exact f32 re-score: only pairs passing the threshold on the
            // *exact* cosine become candidates.
            survivors
                .into_iter()
                .filter(|&j| {
                    self.exact_cosine(qi as usize, j as usize, imp) >= self.config.threshold
                })
                .collect()
        });
        if wym_obs::enabled() {
            let total: usize = out.iter().map(Vec::len).sum();
            wym_obs::counter_add("block.ann.accepted", total as u64);
        }
        out
    }

    /// The quantized pass for one record: gather bucket peers with id
    /// `> qi`, dedup, cap, score with the integer kernel, keep top-m.
    ///
    /// Hot-path engineering for the million-record regime: dedup goes
    /// through a per-worker bitset (no sort of the full probe list), and
    /// top-m uses O(len) selection under the strict total order (score
    /// desc, id asc) — the surviving set is unique for any gather order, so
    /// determinism is unaffected.
    pub fn quantized_survivors(&self, qi: u32) -> Vec<u32> {
        thread_local! {
            #[allow(clippy::type_complexity)]
            static SCRATCH: RefCell<(Vec<u32>, Vec<u64>, Vec<(f32, u32)>)> =
                const { RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
        }
        SCRATCH.with(|cell| {
            let (probes, seen, scored) = &mut *cell.borrow_mut();
            let words = self.quant.len() / 64 + 1;
            if seen.len() < words {
                seen.resize(words, 0);
            }
            probes.clear();
            for (t, table) in self.buckets.iter().enumerate() {
                let sig = self.signature_of(qi, t);
                let mut gather = |s: u64| {
                    if let Some(members) = table.get(&s) {
                        for &j in members.iter().filter(|&&j| j > qi) {
                            let (word, bit) = (j as usize / 64, 1u64 << (j % 64));
                            if seen[word] & bit == 0 {
                                seen[word] |= bit;
                                probes.push(j);
                            }
                        }
                    }
                };
                gather(sig);
                if self.config.multiprobe {
                    for b in 0..self.config.bits {
                        gather(sig ^ (1 << b));
                    }
                }
            }
            for &j in probes.iter() {
                seen[j as usize / 64] &= !(1 << (j % 64));
            }
            if probes.len() > self.config.probe_cap {
                // The cap keeps the lowest record ids, a canonical choice.
                probes.sort_unstable();
                probes.truncate(self.config.probe_cap);
                wym_obs::counter_add("block.ann.probe_truncated", 1);
            }
            wym_obs::counter_add("block.ann.probed", probes.len() as u64);
            let qrow = self.quant.row(qi as usize);
            let qscale = self.quant.scale(qi as usize);
            scored.clear();
            scored.extend(probes.iter().map(|&j| {
                let s = kernels::cosine_i8(
                    qrow,
                    self.quant.row(j as usize),
                    qscale,
                    self.quant.scale(j as usize),
                );
                (s, j)
            }));
            let cmp =
                |a: &(f32, u32), b: &(f32, u32)| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1));
            if scored.len() > self.config.top_m {
                scored.select_nth_unstable_by(self.config.top_m, cmp);
                scored.truncate(self.config.top_m);
            }
            scored.sort_unstable_by(cmp);
            scored.iter().map(|&(_, j)| j).collect()
        })
    }

    /// The stored LSH signature of record `i` in `table`.
    fn signature_of(&self, i: u32, table: usize) -> u64 {
        self.signatures[i as usize * self.config.tables + table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_vocab_and_records() -> (Vec<String>, Vec<Vec<u32>>) {
        // Four near-duplicate clusters plus singletons: records in a cluster
        // share most token ids, so their mean vectors are close.
        let vocab: Vec<String> = (0..40).map(|i| format!("tok{i}sig")).collect();
        let mut records: Vec<Vec<u32>> = Vec::new();
        for c in 0..4u32 {
            let base: Vec<u32> = (0..6).map(|k| c * 8 + k).collect();
            records.push(base.clone());
            let mut near = base;
            near.pop();
            near.push(c * 8 + 7);
            records.push(near);
        }
        for s in 0..6u32 {
            records.push(vec![32 + s, (s * 3) % 32]);
        }
        for r in &mut records {
            r.sort_unstable();
        }
        (vocab, records)
    }

    fn test_config() -> AnnConfig {
        AnnConfig { dim: 32, tables: 6, bits: 8, top_m: 4, threshold: 0.6, ..AnnConfig::default() }
    }

    #[test]
    fn near_duplicates_are_recovered() {
        let (vocab, records) = toy_vocab_and_records();
        let imp = KernelImpl::Scalar;
        let index = AnnIndex::build(&vocab, &records, &test_config(), imp, 1);
        let cands = index.candidates(imp, 1);
        for c in 0..4usize {
            let (a, b) = (2 * c, 2 * c + 1);
            assert!(
                cands[a].contains(&(b as u32)),
                "cluster {c}: expected pair ({a},{b}) in {cands:?}"
            );
        }
    }

    #[test]
    fn candidates_are_bit_identical_across_kernels_and_threads() {
        let (vocab, records) = toy_vocab_and_records();
        let reference = {
            let index =
                AnnIndex::build(&vocab, &records, &test_config(), KernelImpl::Scalar, 1);
            index.candidates(KernelImpl::Scalar, 1)
        };
        let best = wym_linalg::kernels::detect_best();
        for imp in [KernelImpl::Scalar, best] {
            for threads in [1usize, 2, 4] {
                let index = AnnIndex::build(&vocab, &records, &test_config(), imp, threads);
                let got = index.candidates(imp, threads);
                assert_eq!(got, reference, "imp {imp:?} threads {threads}");
            }
        }
    }

    #[test]
    fn rescore_side_is_exact_f32() {
        let (vocab, records) = toy_vocab_and_records();
        let imp = KernelImpl::Scalar;
        let index = AnnIndex::build(&vocab, &records, &test_config(), imp, 1);
        // exact_cosine must equal the plain kernel cosine of the f32 rows —
        // no quantization residue on the accept/reject side.
        let want = kernels::cosine_with(imp, index.vector(0), index.vector(1));
        assert_eq!(index.exact_cosine(0, 1, imp).to_bits(), want.to_bits());
        // ...while the quantized score is merely close.
        let approx = index.quantized().approx_cosine(0, 1);
        assert!((approx - want).abs() < 0.05, "approx {approx} vs exact {want}");
    }

    #[test]
    fn probe_cap_truncates_by_ascending_id() {
        let (vocab, records) = toy_vocab_and_records();
        let config = AnnConfig { probe_cap: 1, ..test_config() };
        let imp = KernelImpl::Scalar;
        let index = AnnIndex::build(&vocab, &records, &config, imp, 1);
        for qi in 0..records.len() as u32 {
            assert!(index.quantized_survivors(qi).len() <= 1);
        }
    }

    #[test]
    fn empty_input_yields_no_candidates() {
        let index =
            AnnIndex::build(&[], &[], &test_config(), KernelImpl::Scalar, 2);
        assert!(index.candidates(KernelImpl::Scalar, 2).is_empty());
    }
}
