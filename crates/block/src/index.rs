//! The lexical pass: a sharded token inverted index with TF-IDF-weighted
//! posting lists.
//!
//! Build: records are tokenized in parallel, tokens are interned into a
//! vocabulary, and posting lists are built by sharding the *record range*
//! across `wym-par` workers — each shard builds local postings for its
//! contiguous slice, and the shard-order merge concatenates them, so every
//! posting list holds ascending record ids exactly as a sequential build
//! would produce. Tokens whose document frequency exceeds the pruning
//! cutoff are stop-listed (their posting lists are dropped); survivors get
//! the weight `idf(t)² = ln(1 + n/df)²`, the self-dot of the binary TF-IDF
//! vector coordinate.
//!
//! Query: each record scores every record sharing at least one surviving
//! token by summed squared IDF, accumulated in a per-worker dense scratch
//! array with a touched list (no hashing, no ordering sensitivity), and
//! keeps its top-k by the stable key (weight desc, record id asc). f32
//! accumulation per (query, candidate) cell happens in ascending token-id
//! order, so scores — and therefore the candidate set — are bit-identical
//! for any thread count.

use std::cell::RefCell;
use std::collections::HashMap;

/// A built lexical index over one table.
pub struct TokenIndex {
    n_records: usize,
    /// Token id → token string (the interned vocabulary).
    vocab: Vec<String>,
    /// Per-record sorted unique token ids.
    record_tokens: Vec<Vec<u32>>,
    /// Token id → ascending record ids. Pruned tokens have empty lists.
    postings: Vec<Vec<u32>>,
    /// Token id → squared IDF weight; 0.0 marks a pruned token.
    weight: Vec<f32>,
    /// Number of tokens dropped by document-frequency pruning.
    pub pruned_tokens: usize,
}

/// Tokenizes every record (in parallel) and interns tokens into ids.
/// Returns per-record sorted unique ids and the id-ordered vocabulary.
fn intern_tokens(texts: &[String], threads: usize) -> (Vec<Vec<u32>>, Vec<String>) {
    let tokenizer = wym_tokenize::Tokenizer::default();
    let token_lists: Vec<Vec<String>> = wym_par::map_indexed(texts, threads, |_, text| {
        let mut tokens = tokenizer.tokenize(text);
        tokens.sort_unstable();
        tokens.dedup();
        tokens
    });
    let mut ids_of: HashMap<String, u32> = HashMap::new();
    let mut vocab: Vec<String> = Vec::new();
    let mut record_tokens = Vec::with_capacity(token_lists.len());
    for tokens in token_lists {
        let mut ids: Vec<u32> = tokens
            .into_iter()
            .map(|t| match ids_of.get(&t) {
                Some(&id) => id,
                None => {
                    let id = vocab.len() as u32;
                    ids_of.insert(t.clone(), id);
                    vocab.push(t);
                    id
                }
            })
            .collect();
        ids.sort_unstable();
        // The collect above reuses the Vec<String> allocation (24 B → 4 B
        // elements ⇒ 6× capacity); these lists live for the whole run.
        ids.shrink_to_fit();
        record_tokens.push(ids);
    }
    (record_tokens, vocab)
}

impl TokenIndex {
    /// Builds the index over `texts` (one string per record), pruning
    /// tokens with document frequency above `max(min_df_cutoff,
    /// ceil(n · max_df_frac))`.
    pub fn build(
        texts: &[String],
        max_df_frac: f32,
        min_df_cutoff: usize,
        threads: usize,
    ) -> TokenIndex {
        let _span = wym_obs::span("block_index");
        let n = texts.len();
        let (record_tokens, vocab) = intern_tokens(texts, threads);
        let vocab_len = vocab.len();

        // Sharded posting build: each worker covers a contiguous record
        // range; concatenating shard results in shard order yields
        // ascending record ids per token.
        let n_shards = wym_par::resolve_threads(threads).max(1) * 4;
        let shards: Vec<HashMap<u32, Vec<u32>>> =
            wym_par::map_ranges(n, n_shards, threads, |_, range| {
                let mut local: HashMap<u32, Vec<u32>> = HashMap::new();
                for i in range {
                    for &t in &record_tokens[i] {
                        local.entry(t).or_default().push(i as u32);
                    }
                }
                local
            });
        let mut postings: Vec<Vec<u32>> = vec![Vec::new(); vocab_len];
        for shard in shards {
            let mut entries: Vec<(u32, Vec<u32>)> = shard.into_iter().collect();
            entries.sort_unstable_by_key(|(t, _)| *t);
            for (t, ids) in entries {
                postings[t as usize].extend_from_slice(&ids);
            }
        }

        // Document-frequency pruning + IDF weights.
        let cutoff = (((n as f32) * max_df_frac).ceil() as usize).max(min_df_cutoff).max(1);
        let mut weight = vec![0.0f32; vocab_len];
        let mut pruned = 0usize;
        let record_obs = wym_obs::enabled();
        for (t, posting) in postings.iter_mut().enumerate() {
            let df = posting.len();
            if record_obs {
                wym_obs::hist_observe_with(
                    "block.index.posting_len",
                    &wym_obs::hist::pow2_bounds(24),
                    df as f64,
                );
            }
            if df > cutoff {
                pruned += 1;
                posting.clear();
                posting.shrink_to_fit();
            } else if df > 0 {
                let idf = (1.0 + n as f32 / df as f32).ln();
                weight[t] = idf * idf;
            }
        }
        wym_obs::counter_add("block.index.vocab", vocab_len as u64);
        wym_obs::counter_add("block.index.pruned_tokens", pruned as u64);
        TokenIndex { n_records: n, vocab, record_tokens, postings, weight, pruned_tokens: pruned }
    }

    /// Number of records the index covers.
    pub fn len(&self) -> usize {
        self.n_records
    }

    /// True when the index covers no records.
    pub fn is_empty(&self) -> bool {
        self.n_records == 0
    }

    /// The sorted unique token ids of record `i`.
    pub fn record_tokens(&self, i: usize) -> &[u32] {
        &self.record_tokens[i]
    }

    /// All per-record token-id lists (the ANN layer embeds from these).
    pub fn all_record_tokens(&self) -> &[Vec<u32>] {
        &self.record_tokens
    }

    /// The interned vocabulary, ordered by token id.
    pub fn vocab(&self) -> &[String] {
        &self.vocab
    }

    /// Top-`k` lexical candidates per record: for every record `i`, the
    /// `k` records with the highest TF-IDF overlap weight, under the stable
    /// key (weight desc, record id asc), self excluded. Deterministic for
    /// any thread count.
    pub fn top_candidates(&self, k: usize, threads: usize) -> Vec<Vec<u32>> {
        let _span = wym_obs::span("block_lexical");
        thread_local! {
            static SCRATCH: RefCell<(Vec<f32>, Vec<u32>)> =
                const { RefCell::new((Vec::new(), Vec::new())) };
        }
        let n = self.n_records;
        let ids: Vec<u32> = (0..n as u32).collect();
        let out = wym_par::map_indexed(&ids, threads, |_, &qi| {
            SCRATCH.with(|cell| {
                let (scores, touched) = &mut *cell.borrow_mut();
                if scores.len() < n {
                    scores.resize(n, 0.0);
                }
                let q = qi as usize;
                for &t in &self.record_tokens[q] {
                    let w = self.weight[t as usize];
                    if w == 0.0 {
                        continue;
                    }
                    for &j in &self.postings[t as usize] {
                        if j == qi {
                            continue;
                        }
                        let s = &mut scores[j as usize];
                        if *s == 0.0 {
                            touched.push(j);
                        }
                        *s += w;
                    }
                }
                let mut candidates: Vec<(f32, u32)> =
                    touched.iter().map(|&j| (scores[j as usize], j)).collect();
                // Top-k selection, then sort only the keepers: the key
                // (weight desc, id asc) is a strict total order, so the
                // selected set and its order are unique regardless of the
                // accumulation order — and selection is O(len), not
                // O(len log len), which dominates at million-record scale.
                let cmp = |a: &(f32, u32), b: &(f32, u32)| {
                    b.0.total_cmp(&a.0).then(a.1.cmp(&b.1))
                };
                if candidates.len() > k {
                    candidates.select_nth_unstable_by(k, cmp);
                    candidates.truncate(k);
                }
                candidates.sort_unstable_by(cmp);
                for &j in touched.iter() {
                    scores[j as usize] = 0.0;
                }
                touched.clear();
                // Collect from a borrowed iterator: `into_iter().collect()`
                // would reuse the (f32, u32) buffer in place — sized for
                // every touched record — pinning ~12 KB per record (12 GB
                // live at 10⁶ records) under a k-element result.
                candidates.iter().map(|&(_, j)| j).collect::<Vec<u32>>()
            })
        });
        if wym_obs::enabled() {
            let total: usize = out.iter().map(Vec::len).sum();
            wym_obs::counter_add("block.lexical.candidates", total as u64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(values: &[&str]) -> Vec<String> {
        values.iter().map(|v| v.to_string()).collect()
    }

    #[test]
    fn shared_rare_tokens_rank_highest() {
        let t = texts(&[
            "sony camera dsc123 silver",
            "sony camera dsc123",
            "sony printer xp400",
            "canon printer xp400 black",
        ]);
        let index = TokenIndex::build(&t, 1.0, usize::MAX, 1);
        let cands = index.top_candidates(2, 1);
        assert_eq!(cands[0][0], 1, "dsc123 overlap beats brand-only: {cands:?}");
        assert_eq!(cands[3][0], 2, "xp400 overlap: {cands:?}");
    }

    #[test]
    fn df_pruning_drops_ubiquitous_tokens() {
        let t: Vec<String> = (0..50)
            .map(|i| format!("common filler item{i}"))
            .collect();
        let index = TokenIndex::build(&t, 0.1, 1, 1);
        // "common" and "filler" appear in all 50 records (df 50 > cutoff 5);
        // each "item<i>" is unique.
        assert_eq!(index.pruned_tokens, 2);
        let cands = index.top_candidates(5, 1);
        assert!(cands.iter().all(Vec::is_empty), "only pruned tokens shared: {cands:?}");
    }

    #[test]
    fn deterministic_across_thread_counts_and_shards() {
        let t: Vec<String> = (0..300)
            .map(|i| {
                format!(
                    "brand{} model{} word{} word{} tail{}",
                    i % 7,
                    i % 31,
                    i % 13,
                    (i * 17) % 11,
                    i % 3
                )
            })
            .collect();
        let reference = TokenIndex::build(&t, 0.5, 1, 1).top_candidates(6, 1);
        for threads in [2usize, 4, 7] {
            let got = TokenIndex::build(&t, 0.5, 1, threads).top_candidates(6, threads);
            assert_eq!(got, reference, "thread count {threads}");
        }
    }

    #[test]
    fn ties_break_by_ascending_record_id() {
        // Records 1..=4 each share exactly the token "alpha" with record 0.
        let t = texts(&["alpha", "alpha b1", "alpha b2", "alpha b3", "alpha b4"]);
        let index = TokenIndex::build(&t, 1.0, usize::MAX, 1);
        let cands = index.top_candidates(10, 1);
        assert_eq!(cands[0], vec![1, 2, 3, 4], "equal weights order by id: {cands:?}");
    }

    #[test]
    fn empty_table() {
        let index = TokenIndex::build(&[], 0.5, 1, 4);
        assert!(index.is_empty());
        assert!(index.top_candidates(5, 4).is_empty());
    }
}
