//! Property tests of the blocking determinism contract: for arbitrary
//! tables, the full candidate set — lexical + quantized-ANN with exact f32
//! re-scoring — is bit-identical across kernel implementations (the paths
//! `WYM_KERNEL=scalar|auto` dispatch to) and thread counts, and the int8
//! quantization stays inside its derived error bound.

use proptest::prelude::*;
use wym_block::{block_table, pair_checksum, AnnConfig, BlockConfig};
use wym_embed::quant::quantize_row;
use wym_linalg::kernels::{self, KernelImpl};

/// A strategy for small random product-ish tables: each record is 2–8
/// tokens drawn from a shared pool plus an occasional unique suffix, so
/// tables mix heavy-overlap, partial-overlap, and disjoint records.
fn table_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(
        prop::collection::vec("[a-z]{2,9}", 2..8),
        2..40,
    )
    .prop_map(|records| {
        records
            .into_iter()
            .enumerate()
            .map(|(i, mut tokens)| {
                if i % 3 == 0 {
                    tokens.push(format!("uniq{i}x"));
                }
                tokens.join(" ")
            })
            .collect()
    })
}

fn config(kernel: KernelImpl, threads: usize) -> BlockConfig {
    BlockConfig {
        lexical_k: 5,
        max_df_frac: 0.5,
        min_df_cutoff: 2,
        ann: AnnConfig { dim: 32, tables: 4, bits: 6, threshold: 0.5, ..AnnConfig::default() },
        threads,
        kernel: Some(kernel),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole guarantee: the pure-f32-deciding pipeline (quantized
    /// pass selects, exact f32 re-score accepts) produces bit-identical
    /// candidate sets under the scalar kernel at 1 thread and the
    /// best-detected kernel (AVX2+FMA where available — what
    /// `WYM_KERNEL=auto` dispatches to) at 4 threads, plus the two cross
    /// combinations.
    #[test]
    fn candidate_set_is_bit_identical_across_kernels_and_threads(
        texts in table_strategy(),
    ) {
        let reference = block_table(&texts, &config(KernelImpl::Scalar, 1));
        let best = kernels::detect_best();
        for imp in [KernelImpl::Scalar, best] {
            for threads in [1usize, 4] {
                let got = block_table(&texts, &config(imp, threads));
                prop_assert_eq!(
                    &got.pairs, &reference.pairs,
                    "kernel {:?} threads {}", imp, threads
                );
                prop_assert_eq!(got.checksum, reference.checksum);
            }
        }
        prop_assert_eq!(reference.checksum, pair_checksum(&reference.pairs));
    }

    /// Symmetric absmax int8 quantization stays inside its per-component
    /// bound `max|v| / 254` (plus float slack), codes never leave
    /// `[-127, 127]`, and requantizing the reconstruction is a fixed point.
    #[test]
    fn quantization_round_trip_respects_error_bound(
        row in prop::collection::vec(-4.0f32..4.0, 1..80),
    ) {
        let (q, scale) = quantize_row(&row);
        let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        prop_assert!(q.iter().all(|&c| (-127..=127).contains(&c)));
        for (&v, &c) in row.iter().zip(&q) {
            let err = (v - c as f32 * scale).abs();
            prop_assert!(
                err <= max_abs / 254.0 + 1e-5,
                "component {} reconstructs to {} (err {}, bound {})",
                v, c as f32 * scale, err, max_abs / 254.0
            );
        }
        let recon: Vec<f32> = q.iter().map(|&c| c as f32 * scale).collect();
        let (q2, _) = quantize_row(&recon);
        prop_assert_eq!(q, q2, "requantization must be a fixed point");
    }

    /// The int8 kernels are exact integer arithmetic: scalar and
    /// best-detected implementations agree exactly on random vectors of
    /// every length (SIMD blocks plus scalar tails).
    #[test]
    fn int8_kernels_agree_exactly_across_impls(
        a in prop::collection::vec(-127i8..127, 0..100),
    ) {
        let b: Vec<i8> = a.iter().rev().copied().collect();
        let best = kernels::detect_best();
        prop_assert_eq!(
            kernels::dot_i8_with(KernelImpl::Scalar, &a, &b),
            kernels::dot_i8_with(best, &a, &b)
        );
        prop_assert_eq!(
            kernels::dist_sq_i8_with(KernelImpl::Scalar, &a, &b),
            kernels::dist_sq_i8_with(best, &a, &b)
        );
        let c = kernels::cosine_i8_with(KernelImpl::Scalar, &a, &b, 0.013, 0.029);
        let d = kernels::cosine_i8_with(best, &a, &b, 0.013, 0.029);
        prop_assert_eq!(c.to_bits(), d.to_bits(), "fused cosine must match bit-for-bit");
    }
}
